//! Per-peer connection supervision: dialing, accepting, handshakes,
//! reconnect backoff, write queues, and teardown.
//!
//! One [`Supervisor`] owns every TCP concern of a node:
//!
//! - **Dial/accept race**: both sides dial. When two live connections for
//!   the same link collide, the one *initiated by the lower node id*
//!   wins and the other is closed — deterministic, no extra round trip.
//! - **Reconnect**: capped exponential backoff with jitter (so a
//!   restarted pair does not thundering-herd in lockstep).
//! - **Backpressure**: each link has a bounded write queue. When full,
//!   the oldest queued *heartbeat* is shed first (a late heartbeat is
//!   worse than none); only then the oldest data frame. Heartbeats are
//!   never queued across a disconnect at all.
//! - **Epochs**: every connection gets a fresh epoch on each side,
//!   exchanged in the handshake and stamped on every frame. A receiver
//!   drops frames from any epoch but the current one, and teardown
//!   purges the write queue — a reconnect can never resurrect a frame
//!   from a dead connection.
//!
//! The supervisor is runtime-agnostic: it hands decoded envelopes and
//! link events to a [`WireHandler`] and knows nothing about actors.

use std::collections::{HashMap, VecDeque};
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use comsim::buf::Bytes;
use ds_net::endpoint::NodeId;
use ds_net::message::Envelope;
use ds_net::transport::{LinkState, PeerHealth, TransportEvent};
use ds_sim::prelude::{SimDuration, SimRng, TraceCategory};
use serde::{Deserialize, Serialize};

use crate::codec::{FramePayload, WireCodec};
use crate::frame::{
    read_frame, write_frame, FrameClass, ReadError, DEFAULT_MAX_FRAME_BYTES, HEADER_LEN,
};

/// Socket-layer configuration for one node.
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// This node's id.
    pub node: NodeId,
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Peer node ids and their listen addresses.
    pub peers: Vec<(NodeId, String)>,
    /// Receive-side cap on meta + body length.
    pub max_frame: u32,
    /// Write-queue bound per link, in frames.
    pub queue_limit: usize,
    /// First reconnect delay.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// TCP connect timeout per dial attempt.
    pub connect_timeout: Duration,
    /// Read timeout while waiting for the peer's handshake.
    pub handshake_timeout: Duration,
    /// Seed for backoff jitter.
    pub seed: u64,
}

impl WireConfig {
    /// A loopback config for `node` with no peers yet.
    pub fn loopback(node: NodeId) -> Self {
        WireConfig {
            node,
            listen: "127.0.0.1:0".into(),
            peers: Vec::new(),
            max_frame: DEFAULT_MAX_FRAME_BYTES,
            queue_limit: 1024,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(1),
            handshake_timeout: Duration::from_secs(2),
            seed: 1,
        }
    }
}

/// What the supervisor needs from its hosting runtime.
pub trait WireHandler: Send + Sync {
    /// A decoded envelope arrived from a peer.
    fn deliver(&self, envelope: Envelope);
    /// A link changed state.
    fn peer_event(&self, event: TransportEvent);
    /// Trace a transport-level occurrence.
    fn record(&self, category: TraceCategory, message: String);
}

/// Handshake meta block: who is dialing/answering.
#[derive(Debug, Serialize, Deserialize)]
struct Hello {
    node: NodeId,
}

struct QueuedFrame {
    class: FrameClass,
    meta: Vec<u8>,
    head: Vec<u8>,
    shared: Vec<Bytes>,
}

struct Conn {
    /// For shutdown; reader/writer threads hold their own clones.
    stream: TcpStream,
    /// Distinguishes this connection from any other on the link.
    id: u64,
    /// Who initiated it (race-resolution key).
    dialed_by: NodeId,
}

struct LinkInner {
    status: LinkState,
    conn: Option<Conn>,
    conn_seq: u64,
    next_epoch: u32,
    /// Epoch of the current (or most recent) connection, for health rows.
    epoch: u32,
    queue: VecDeque<QueuedFrame>,
}

struct Link {
    peer: NodeId,
    addr: String,
    inner: Mutex<LinkInner>,
    cv: Condvar,
    installs: AtomicU64,
    reconnects: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    dropped_heartbeats: AtomicU64,
    dropped_frames: AtomicU64,
    stale_in: AtomicU64,
}

impl Link {
    fn new(peer: NodeId, addr: String) -> Self {
        Link {
            peer,
            addr,
            inner: Mutex::new(LinkInner {
                status: LinkState::Connecting,
                conn: None,
                conn_seq: 0,
                next_epoch: 1,
                epoch: 0,
                queue: VecDeque::new(),
            }),
            cv: Condvar::new(),
            installs: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            dropped_heartbeats: AtomicU64::new(0),
            dropped_frames: AtomicU64::new(0),
            stale_in: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LinkInner> {
        // A poisoned link mutex means a panic elsewhere; propagating the
        // inner state is still safe (all fields are plain data).
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

struct Shared {
    config: WireConfig,
    codec: Arc<WireCodec>,
    handler: Arc<dyn WireHandler>,
    links: HashMap<NodeId, Arc<Link>>,
    listen_addr: SocketAddr,
    shutdown: AtomicBool,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn spawn(self: &Arc<Self>, f: impl FnOnce() + Send + 'static) {
        let handle = std::thread::spawn(f);
        self.threads.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
    }

    fn trace(&self, message: String) {
        self.handler.record(TraceCategory::Net, message);
    }

    /// Tears the link's current connection down **iff** it is still
    /// `conn_id` (a later connection must not be collateral damage).
    fn teardown(&self, link: &Link, conn_id: u64, why: &str) {
        let (purged_hb, purged_data) = {
            let mut inner = link.lock();
            let Some(conn) = inner.conn.as_ref() else { return };
            if conn.id != conn_id {
                return;
            }
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            inner.conn = None;
            inner.status = LinkState::Backoff;
            // Purge: nothing queued for a dead connection may survive
            // onto the next one.
            let mut hb = 0u64;
            let mut data = 0u64;
            for f in inner.queue.drain(..) {
                match f.class {
                    FrameClass::Heartbeat => hb += 1,
                    _ => data += 1,
                }
            }
            link.cv.notify_all();
            (hb, data)
        };
        link.dropped_heartbeats.fetch_add(purged_hb, Ordering::Relaxed);
        link.dropped_frames.fetch_add(purged_data, Ordering::Relaxed);
        if !self.shutdown.load(Ordering::Relaxed) {
            self.trace(format!(
                "wire link {} -> {}: down ({why}), purged {} queued frames",
                self.config.node,
                link.peer,
                purged_hb + purged_data
            ));
            self.handler.peer_event(TransportEvent::PeerDown { peer: link.peer });
        }
    }

    /// Installs a handshaken connection, resolving dial/accept races:
    /// the connection initiated by the lower node id wins.
    fn install(
        self: &Arc<Self>,
        link: &Arc<Link>,
        stream: TcpStream,
        dialed_by: NodeId,
        my_epoch: u32,
        peer_epoch: u32,
    ) {
        let preferred = self.config.node.min(link.peer);
        let conn_id;
        {
            let mut inner = link.lock();
            if let Some(existing) = inner.conn.as_ref() {
                if existing.dialed_by != dialed_by && dialed_by != preferred {
                    // The established connection is (or will be) the
                    // preferred one; close the loser quietly.
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    self.trace(format!(
                        "wire link {} -> {}: dropped duplicate connection dialed by {dialed_by}",
                        self.config.node, link.peer
                    ));
                    return;
                }
                let _ = existing.stream.shutdown(std::net::Shutdown::Both);
            }
            inner.conn_seq += 1;
            conn_id = inner.conn_seq;
            inner.conn = Some(Conn {
                stream: match stream.try_clone() {
                    Ok(s) => s,
                    Err(e) => {
                        self.trace(format!(
                            "wire link {} -> {}: clone failed at install: {e}",
                            self.config.node, link.peer
                        ));
                        return;
                    }
                },
                id: conn_id,
                dialed_by,
            });
            inner.status = LinkState::Connected;
            inner.epoch = my_epoch;
            link.cv.notify_all();
        }
        let installs = link.installs.fetch_add(1, Ordering::Relaxed) + 1;
        let reconnect = installs > 1;
        if reconnect {
            link.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        self.trace(format!(
            "wire link {} -> {}: connected (epoch={my_epoch}, dialed by {dialed_by})",
            self.config.node, link.peer
        ));
        self.handler.peer_event(TransportEvent::PeerConnected {
            peer: link.peer,
            epoch: my_epoch,
            reconnect,
        });

        // Writer: drains the queue while this connection is current.
        match stream.try_clone() {
            Ok(writer_stream) => {
                let writer_shared = Arc::clone(self);
                let writer_link = Arc::clone(link);
                self.spawn(move || {
                    writer_shared.write_loop(&writer_link, writer_stream, conn_id, my_epoch);
                });
            }
            Err(e) => {
                self.teardown(link, conn_id, &format!("writer clone failed: {e}"));
                return;
            }
        }
        // Reader: owns the stream until it errors.
        let reader_shared = Arc::clone(self);
        let reader_link = Arc::clone(link);
        let mut reader_stream = stream;
        self.spawn(move || {
            reader_shared.read_loop(&reader_link, &mut reader_stream, conn_id, peer_epoch);
        });
    }

    fn read_loop(&self, link: &Link, stream: &mut TcpStream, conn_id: u64, peer_epoch: u32) {
        loop {
            match read_frame(stream, self.config.max_frame) {
                Ok(frame) => {
                    let wire_len = HEADER_LEN as u64
                        + frame.header.meta_len as u64
                        + frame.header.body_len as u64;
                    link.bytes_in.fetch_add(wire_len, Ordering::Relaxed);
                    if frame.header.class == FrameClass::Handshake {
                        // Duplicate handshake mid-stream: harmless, skip.
                        continue;
                    }
                    if frame.header.epoch != peer_epoch {
                        // A frame from a connection the peer has already
                        // abandoned; never deliver it.
                        link.stale_in.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    match self.codec.decode_frame(&frame) {
                        Ok(envelope) => self.handler.deliver(envelope),
                        Err(e) => {
                            // The frame boundary held, so the stream is
                            // still in sync: skip this body only.
                            link.dropped_frames.fetch_add(1, Ordering::Relaxed);
                            self.trace(format!(
                                "wire link {} <- {}: undecodable frame skipped: {e}",
                                self.config.node, link.peer
                            ));
                        }
                    }
                }
                Err(ReadError::Protocol(e)) => {
                    self.teardown(link, conn_id, &format!("framing error: {e}"));
                    return;
                }
                Err(ReadError::Io(e)) => {
                    self.teardown(link, conn_id, &format!("read failed: {e}"));
                    return;
                }
            }
        }
    }

    fn write_loop(&self, link: &Link, mut stream: TcpStream, conn_id: u64, my_epoch: u32) {
        loop {
            let frame = {
                let mut inner = link.lock();
                loop {
                    match inner.conn.as_ref() {
                        Some(conn) if conn.id == conn_id => {}
                        _ => return, // superseded or torn down
                    }
                    if let Some(frame) = inner.queue.pop_front() {
                        break frame;
                    }
                    inner = self.cv_wait(link, inner, Duration::from_millis(100));
                    if self.shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                }
            };
            match write_frame(
                &mut stream,
                frame.class,
                my_epoch,
                &frame.meta,
                &frame.head,
                &frame.shared,
            ) {
                Ok(n) => {
                    link.bytes_out.fetch_add(n, Ordering::Relaxed);
                }
                Err(e) => {
                    match frame.class {
                        FrameClass::Heartbeat => {
                            link.dropped_heartbeats.fetch_add(1, Ordering::Relaxed)
                        }
                        _ => link.dropped_frames.fetch_add(1, Ordering::Relaxed),
                    };
                    self.teardown(link, conn_id, &format!("write failed: {e}"));
                    return;
                }
            }
        }
    }

    fn cv_wait<'a>(
        &self,
        link: &'a Link,
        guard: std::sync::MutexGuard<'a, LinkInner>,
        timeout: Duration,
    ) -> std::sync::MutexGuard<'a, LinkInner> {
        match link.cv.wait_timeout(guard, timeout) {
            Ok((g, _)) => g,
            Err(e) => e.into_inner().0,
        }
    }

    /// Queues an encoded frame for `peer`, applying the backpressure
    /// policy. Returns `false` if the frame was shed immediately.
    fn enqueue(&self, link: &Link, frame: QueuedFrame) -> bool {
        let mut inner = link.lock();
        if frame.class == FrameClass::Heartbeat && inner.status != LinkState::Connected {
            // A heartbeat held back and delivered after a reconnect would
            // assert liveness for the wrong moment in time.
            drop(inner);
            link.dropped_heartbeats.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        inner.queue.push_back(frame);
        let mut shed_hb = 0u64;
        let mut shed_data = 0u64;
        while inner.queue.len() > self.config.queue_limit {
            if let Some(pos) = inner.queue.iter().position(|f| f.class == FrameClass::Heartbeat) {
                inner.queue.remove(pos);
                shed_hb += 1;
            } else {
                inner.queue.pop_front();
                shed_data += 1;
            }
        }
        link.cv.notify_all();
        drop(inner);
        link.dropped_heartbeats.fetch_add(shed_hb, Ordering::Relaxed);
        link.dropped_frames.fetch_add(shed_data, Ordering::Relaxed);
        true
    }

    /// Dialer-side handshake: send our hello, await the peer's.
    fn dial_once(self: &Arc<Self>, link: &Arc<Link>) -> Result<(), String> {
        let addr = link
            .addr
            .to_socket_addrs()
            .map_err(|e| format!("resolve {}: {e}", link.addr))?
            .next()
            .ok_or_else(|| format!("{} resolves to nothing", link.addr))?;
        let mut stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)
            .map_err(|e| format!("connect {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        let my_epoch = {
            let mut inner = link.lock();
            let e = inner.next_epoch;
            inner.next_epoch += 1;
            e
        };
        let hello = comsim::marshal::to_bytes(&Hello { node: self.config.node })
            .map_err(|e| e.to_string())?;
        write_frame(&mut stream, FrameClass::Handshake, my_epoch, &hello, &[], &[])
            .map_err(|e| format!("handshake send: {e}"))?;
        stream.set_read_timeout(Some(self.config.handshake_timeout)).ok();
        let reply = read_frame(&mut stream, self.config.max_frame)
            .map_err(|e| format!("handshake reply: {e}"))?;
        if reply.header.class != FrameClass::Handshake {
            return Err("peer spoke before handshaking".into());
        }
        let peer_hello: Hello =
            comsim::marshal::from_bytes(reply.meta.as_slice()).map_err(|e| e.to_string())?;
        if peer_hello.node != link.peer {
            return Err(format!("dialed {} but {} answered", link.peer, peer_hello.node));
        }
        stream.set_read_timeout(None).ok();
        self.install(link, stream, self.config.node, my_epoch, reply.header.epoch);
        Ok(())
    }

    /// Acceptor-side handshake: read the dialer's hello, answer it.
    fn accept_handshake(self: &Arc<Self>, mut stream: TcpStream) {
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(self.config.handshake_timeout)).ok();
        let frame = match read_frame(&mut stream, self.config.max_frame) {
            Ok(f) => f,
            Err(e) => {
                self.trace(format!("wire accept on {}: bad handshake: {e}", self.config.node));
                return;
            }
        };
        if frame.header.class != FrameClass::Handshake {
            self.trace(format!(
                "wire accept on {}: peer spoke before handshaking",
                self.config.node
            ));
            return;
        }
        let hello: Hello = match comsim::marshal::from_bytes(frame.meta.as_slice()) {
            Ok(h) => h,
            Err(e) => {
                self.trace(format!("wire accept on {}: unreadable hello: {e}", self.config.node));
                return;
            }
        };
        let Some(link) = self.links.get(&hello.node).cloned() else {
            self.trace(format!(
                "wire accept on {}: unknown peer {} rejected",
                self.config.node, hello.node
            ));
            return;
        };
        let my_epoch = {
            let mut inner = link.lock();
            let e = inner.next_epoch;
            inner.next_epoch += 1;
            e
        };
        let reply = match comsim::marshal::to_bytes(&Hello { node: self.config.node }) {
            Ok(r) => r,
            Err(_) => return,
        };
        if let Err(e) = write_frame(&mut stream, FrameClass::Handshake, my_epoch, &reply, &[], &[])
        {
            self.trace(format!("wire accept on {}: handshake reply failed: {e}", self.config.node));
            return;
        }
        stream.set_read_timeout(None).ok();
        self.install(&link, stream, hello.node, my_epoch, frame.header.epoch);
    }

    /// Per-peer dial thread: keep the link connected, backing off with
    /// jitter between failures.
    fn dial_loop(self: Arc<Self>, link: Arc<Link>) {
        let mut rng = SimRng::seed_from(self.config.seed ^ (0x9e37 + u64::from(link.peer.0)));
        let mut failures: u32 = 0;
        while !self.shutdown.load(Ordering::Relaxed) {
            let connected = { link.lock().conn.is_some() };
            if connected {
                failures = 0;
                std::thread::sleep(Duration::from_millis(25));
                continue;
            }
            {
                let mut inner = link.lock();
                if inner.conn.is_none() && inner.status == LinkState::Backoff {
                    inner.status = LinkState::Connecting;
                }
            }
            match self.dial_once(&link) {
                Ok(()) => {
                    failures = 0;
                }
                Err(why) => {
                    if self.shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                    // Another thread (the acceptor) may have installed a
                    // connection while we were failing to dial.
                    if link.lock().conn.is_some() {
                        continue;
                    }
                    {
                        let mut inner = link.lock();
                        if inner.conn.is_none() {
                            inner.status = LinkState::Backoff;
                        }
                    }
                    if failures == 0 {
                        self.trace(format!(
                            "wire link {} -> {}: dial failed ({why}), backing off",
                            self.config.node, link.peer
                        ));
                    }
                    let exp = self
                        .config
                        .backoff_base
                        .saturating_mul(1u32 << failures.min(6))
                        .min(self.config.backoff_cap);
                    failures = failures.saturating_add(1);
                    let base = SimDuration::from_micros(exp.as_micros() as u64);
                    let spread = SimDuration::from_micros((exp.as_micros() / 2) as u64);
                    let wait = Duration::from_micros(rng.jittered(base, spread).as_micros());
                    let mut slept = Duration::ZERO;
                    while slept < wait && !self.shutdown.load(Ordering::Relaxed) {
                        let slice = Duration::from_millis(25).min(wait - slept);
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                }
            }
        }
    }

    /// Accept thread: poll the listener, hand each connection to a
    /// handshake thread.
    fn accept_loop(self: Arc<Self>, listener: TcpListener) {
        while !self.shutdown.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self);
                    self.spawn(move || shared.accept_handshake(stream));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        }
    }
}

/// The per-node connection supervisor.
pub struct Supervisor {
    shared: Arc<Shared>,
}

impl Supervisor {
    /// Binds the listener, spawns accept and per-peer dial threads.
    pub fn start(
        config: WireConfig,
        codec: Arc<WireCodec>,
        handler: Arc<dyn WireHandler>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.listen)?;
        listener.set_nonblocking(true)?;
        let listen_addr = listener.local_addr()?;
        let links: HashMap<NodeId, Arc<Link>> = config
            .peers
            .iter()
            .map(|(peer, addr)| (*peer, Arc::new(Link::new(*peer, addr.clone()))))
            .collect();
        let shared = Arc::new(Shared {
            config,
            codec,
            handler,
            links,
            listen_addr,
            shutdown: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
        });
        let acceptor = Arc::clone(&shared);
        shared.spawn(move || acceptor.accept_loop(listener));
        for link in shared.links.values() {
            let dialer = Arc::clone(&shared);
            let link = Arc::clone(link);
            shared.spawn(move || dialer.dial_loop(link));
        }
        Ok(Supervisor { shared })
    }

    /// The bound listen address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.listen_addr
    }

    /// Encodes and queues an envelope for `peer`. Returns `false` if the
    /// peer is unknown, the body type unregistered, or the frame was
    /// shed immediately.
    pub fn send_envelope(&self, peer: NodeId, envelope: &Envelope) -> bool {
        let Some(link) = self.shared.links.get(&peer) else {
            return false;
        };
        let encoded = match self.shared.codec.encode_envelope(envelope) {
            Some(Ok(encoded)) => encoded,
            Some(Err(e)) => {
                link.dropped_frames.fetch_add(1, Ordering::Relaxed);
                self.shared.trace(format!(
                    "wire link {} -> {peer}: encode failed for {}: {e}",
                    self.shared.config.node, envelope.to
                ));
                return false;
            }
            None => {
                link.dropped_frames.fetch_add(1, Ordering::Relaxed);
                self.shared.trace(format!(
                    "wire link {} -> {peer}: body type of {} -> {} not wire-registered",
                    self.shared.config.node, envelope.from, envelope.to
                ));
                return false;
            }
        };
        let (meta, FramePayload { class, head, shared }) = encoded;
        self.shared.enqueue(link, QueuedFrame { class, meta, head, shared })
    }

    /// `true` if a handshaken connection to `peer` is up.
    pub fn connected(&self, peer: NodeId) -> bool {
        self.shared.links.get(&peer).map(|l| l.lock().conn.is_some()).unwrap_or(false)
    }

    /// Health counters for every configured link.
    pub fn health(&self) -> Vec<PeerHealth> {
        let mut peers: Vec<PeerHealth> = self
            .shared
            .links
            .values()
            .map(|link| {
                let inner = link.lock();
                PeerHealth {
                    peer: link.peer,
                    state: inner.status,
                    epoch: inner.epoch,
                    reconnects: link.reconnects.load(Ordering::Relaxed),
                    bytes_in: link.bytes_in.load(Ordering::Relaxed),
                    bytes_out: link.bytes_out.load(Ordering::Relaxed),
                    queued: inner.queue.len() as u64,
                    dropped_heartbeats: link.dropped_heartbeats.load(Ordering::Relaxed),
                    dropped_frames: link.dropped_frames.load(Ordering::Relaxed),
                }
            })
            .collect();
        peers.sort_by_key(|p| p.peer);
        peers
    }

    /// Frames received from an abandoned connection epoch and dropped.
    pub fn stale_in(&self, peer: NodeId) -> u64 {
        self.shared.links.get(&peer).map(|l| l.stale_in.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Stops all threads and closes all sockets. Idempotent.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for link in self.shared.links.values() {
            let inner = link.lock();
            if let Some(conn) = inner.conn.as_ref() {
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            }
            link.cv.notify_all();
        }
        loop {
            let Some(handle) = ({
                let mut threads = self.shared.threads.lock().unwrap_or_else(|e| e.into_inner());
                threads.pop()
            }) else {
                break;
            };
            let _ = handle.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_net::endpoint::Endpoint;
    use std::sync::Mutex as StdMutex;
    use std::time::Instant;

    struct Sink {
        delivered: StdMutex<Vec<Envelope>>,
        events: StdMutex<Vec<TransportEvent>>,
    }

    impl Sink {
        fn new() -> Arc<Self> {
            Arc::new(Sink {
                delivered: StdMutex::new(Vec::new()),
                events: StdMutex::new(Vec::new()),
            })
        }
    }

    impl WireHandler for Sink {
        fn deliver(&self, envelope: Envelope) {
            self.delivered.lock().unwrap().push(envelope);
        }
        fn peer_event(&self, event: TransportEvent) {
            self.events.lock().unwrap().push(event);
        }
        fn record(&self, _category: TraceCategory, _message: String) {}
    }

    fn wait_for(cond: impl Fn() -> bool, timeout: Duration) -> bool {
        let start = Instant::now();
        while start.elapsed() < timeout {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        cond()
    }

    #[test]
    fn pair_connects_and_delivers_both_ways() {
        let codec = Arc::new(WireCodec::standard());
        let sink_a = Sink::new();
        let sink_b = Sink::new();
        // A lists B at an unconnectable address; the accept path installs
        // the link when B dials in.
        let mut config_a = WireConfig::loopback(NodeId(0));
        config_a.peers = vec![(NodeId(1), "127.0.0.1:1".into())];
        let a = Supervisor::start(config_a, Arc::clone(&codec), sink_a.clone()).unwrap();
        let mut config_b = WireConfig::loopback(NodeId(1));
        config_b.peers = vec![(NodeId(0), a.local_addr().to_string())];
        config_b.seed = 2;
        let b = Supervisor::start(config_b, Arc::clone(&codec), sink_b.clone()).unwrap();
        assert!(wait_for(|| b.connected(NodeId(0)), Duration::from_secs(3)));
        assert!(wait_for(|| a.connected(NodeId(1)), Duration::from_secs(3)));

        let env = Envelope::new(
            Endpoint::new(NodeId(1), "x"),
            Endpoint::new(NodeId(0), "y"),
            "over the wire".to_string(),
        );
        assert!(b.send_envelope(NodeId(0), &env));
        assert!(wait_for(|| !sink_a.delivered.lock().unwrap().is_empty(), Duration::from_secs(3)));
        let got = sink_a.delivered.lock().unwrap().remove(0);
        assert_eq!(got.body.downcast::<String>().unwrap(), "over the wire");
        a.shutdown();
        b.shutdown();
    }
}
