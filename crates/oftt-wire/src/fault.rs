//! A loopback TCP fault proxy: point a node's peer address at the proxy
//! and the proxy forwards bytes to the real target, injecting delay,
//! loss, and partitions per direction.
//!
//! TCP is a reliable stream, so "loss" cannot drop individual frames
//! without desyncing the length-prefixed protocol; instead, a loss event
//! kills the proxied connection — which is exactly how packet loss
//! manifests to an application on real networks once retransmission
//! gives up: resets and stalls. Partitions refuse new connections and
//! sever established ones.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ds_sim::prelude::SimRng;
use parking_lot::Mutex;

/// Impairments for one direction of the proxied link.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultSpec {
    /// Added before forwarding each chunk.
    pub delay: Duration,
    /// Probability (0–1) per forwarded chunk of killing the connection.
    pub drop_pct: f64,
    /// `true` severs the link entirely.
    pub partitioned: bool,
}

struct ProxyShared {
    /// Client → target impairments.
    forward: Mutex<FaultSpec>,
    /// Target → client impairments.
    backward: Mutex<FaultSpec>,
    /// Live proxied sockets, so a partition can sever idle links whose
    /// pumps are parked in blocking reads.
    conns: Mutex<Vec<TcpStream>>,
    shutdown: AtomicBool,
    target: SocketAddr,
    seed: u64,
}

impl ProxyShared {
    /// Severs every tracked connection; their pumps exit via read errors.
    fn sever_all(&self) {
        for conn in self.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

/// The proxy: accepts on its own port, connects to the target per
/// client, pumps bytes both ways through the configured impairments.
pub struct FaultProxy {
    shared: Arc<ProxyShared>,
    addr: SocketAddr,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    spec: &Mutex<FaultSpec>,
    shutdown: &AtomicBool,
    rng: &mut SimRng,
) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let spec = *spec.lock();
        if spec.partitioned || (spec.drop_pct > 0.0 && rng.chance(spec.drop_pct)) {
            break;
        }
        if !spec.delay.is_zero() {
            std::thread::sleep(spec.delay);
        }
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

impl FaultProxy {
    /// Starts a proxy on `listen` (e.g. `127.0.0.1:0`) forwarding to
    /// `target`.
    pub fn start(listen: &str, target: SocketAddr, seed: u64) -> std::io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            forward: Mutex::new(FaultSpec::default()),
            backward: Mutex::new(FaultSpec::default()),
            conns: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            target,
            seed,
        });
        let proxy =
            FaultProxy { shared: Arc::clone(&shared), addr, threads: Mutex::new(Vec::new()) };
        let accept_shared = shared;
        let handle = std::thread::spawn(move || {
            let mut conn_seq = 0u64;
            while !accept_shared.shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((client, _)) => {
                        conn_seq += 1;
                        if accept_shared.forward.lock().partitioned
                            || accept_shared.backward.lock().partitioned
                        {
                            let _ = client.shutdown(Shutdown::Both);
                            continue;
                        }
                        let Ok(upstream) = TcpStream::connect_timeout(
                            &accept_shared.target,
                            Duration::from_secs(1),
                        ) else {
                            let _ = client.shutdown(Shutdown::Both);
                            continue;
                        };
                        let (Ok(c2), Ok(u2)) = (client.try_clone(), upstream.try_clone()) else {
                            continue;
                        };
                        {
                            let mut conns = accept_shared.conns.lock();
                            if let (Ok(c3), Ok(u3)) = (client.try_clone(), upstream.try_clone()) {
                                conns.push(c3);
                                conns.push(u3);
                            }
                        }
                        let fwd = Arc::clone(&accept_shared);
                        let seq = conn_seq;
                        std::thread::spawn(move || {
                            let mut rng = SimRng::seed_from(fwd.seed ^ (seq << 1));
                            pump(client, upstream, &fwd.forward, &fwd.shutdown, &mut rng);
                        });
                        let bwd = Arc::clone(&accept_shared);
                        std::thread::spawn(move || {
                            let mut rng = SimRng::seed_from(bwd.seed ^ ((seq << 1) | 1));
                            pump(u2, c2, &bwd.backward, &bwd.shutdown, &mut rng);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
        });
        proxy.threads.lock().push(handle);
        Ok(proxy)
    }

    /// The proxy's own listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replaces the client→target impairments.
    pub fn set_forward(&self, spec: FaultSpec) {
        *self.shared.forward.lock() = spec;
    }

    /// Replaces the target→client impairments.
    pub fn set_backward(&self, spec: FaultSpec) {
        *self.shared.backward.lock() = spec;
    }

    /// Severs the link in both directions (and refuses new connections)
    /// until [`FaultProxy::heal`].
    pub fn partition(&self) {
        self.shared.forward.lock().partitioned = true;
        self.shared.backward.lock().partitioned = true;
        self.shared.sever_all();
    }

    /// Clears all impairments.
    pub fn heal(&self) {
        *self.shared.forward.lock() = FaultSpec::default();
        *self.shared.backward.lock() = FaultSpec::default();
    }

    /// Stops accepting and severs existing proxied connections.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.sever_all();
        let handles: Vec<JoinHandle<()>> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}
