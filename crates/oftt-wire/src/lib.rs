//! # oftt-wire — the real-socket runtime backend
//!
//! Runs the unchanged OFTT actors (engine, FTIMs, queue managers, System
//! Monitor) across **separate OS processes** joined by TCP, where the
//! simulator's failure model becomes real: a SIGKILLed primary really
//! stops mid-write, a severed connection really loses in-flight frames.
//!
//! The crate implements [`ds_net::process::ProcessEnv`] routing over
//! sockets, so a node hosts its local services exactly like
//! [`ds_net::live::LiveNet`] does (same [`ds_net::transport::run_actor`]
//! loop), and envelopes addressed to another node are encoded onto a
//! supervised per-peer TCP link instead of an in-process channel.
//!
//! Layers, bottom up:
//!
//! - [`frame`]: the length-prefixed binary frame (`OFTW` magic, version,
//!   class, connection epoch, meta + body lengths) and blocking
//!   read/write, with vectored writes so checkpoint payloads go from
//!   [`comsim::buf::Bytes`] to the socket without an intermediate copy.
//! - [`codec`]: maps [`ds_net::message::MsgBody`] (a `dyn Any`) to and
//!   from tagged frames via `comsim::marshal`; checkpoint deltas ship
//!   their variable windows as shared byte slices end-to-end.
//! - [`pool`]: size-classed buffer freelist feeding the encode path so a
//!   saturated sender stops paying per-frame allocations.
//! - [`reactor`]: the readiness-driven I/O core — a fixed, small set of
//!   threads each running an epoll/poll loop over nonblocking sockets,
//!   with incremental frame assembly on read and coalesced vectored
//!   mega-writes on write.
//! - [`supervisor`]: per-peer connection lifecycle — dial/accept race
//!   resolution, capped + jittered reconnect backoff, bounded write
//!   queues with drop-oldest-heartbeat backpressure, and epoch stamping
//!   so a reconnect can never resurrect a stale frame — layered as
//!   per-connection state machines over the reactor.
//! - [`runtime`]: [`runtime::WireNet`], the [`ProcessEnv`]-providing node
//!   runtime the OFTT services run on.
//! - [`fault`]: a loopback TCP proxy that injects delay, loss, and
//!   partitions between real processes for experiments.
//! - [`config`]: the `oftt-node` config-file format.
//! - [`app`]: a synthetic checkpointing application with configurable
//!   state size and write locality, used by the node agent and benches.
//! - [`harness`]: child-process helpers shared by the smoke test and the
//!   failover bench.
//!
//! [`ProcessEnv`]: ds_net::process::ProcessEnv

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod codec;
pub mod config;
pub mod fault;
pub mod frame;
pub mod harness;
pub mod pool;
pub mod reactor;
pub mod runtime;
pub mod supervisor;

/// Convenience re-exports of the items most users need.
pub mod prelude {
    pub use crate::app::{LoadApp, LoadConfig, LoadView};
    pub use crate::codec::WireCodec;
    pub use crate::config::NodeConfig;
    pub use crate::fault::{FaultProxy, FaultSpec};
    pub use crate::frame::{FrameClass, WireError};
    pub use crate::runtime::WireNet;
    pub use crate::supervisor::WireConfig;
}
