//! Child-process plumbing for the smoke test and the failover bench:
//! spawn real `oftt-node` processes, scrape their stdout traces, and
//! kill them the honest way (SIGKILL — no cleanup, no goodbye).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ds_net::endpoint::NodeId;
use parking_lot::Mutex;

/// Binds port 0 on loopback, returns the allocated port, releases it.
/// (Racy by nature; fine for tests that immediately rebind.)
pub fn free_port() -> u16 {
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    listener.local_addr().expect("local addr").port()
}

/// Path to the `oftt-node` binary: a sibling of the currently running
/// test/bench binary in the same cargo target directory.
pub fn oftt_node_bin() -> PathBuf {
    let mut path = std::env::current_exe().expect("current_exe");
    path.pop();
    // Test binaries live in target/<profile>/deps/.
    if path.ends_with("deps") {
        path.pop();
    }
    path.push("oftt-node");
    path
}

/// Renders a node config file for a two-node pair.
#[allow(clippy::too_many_arguments)]
pub fn pair_config(
    node: NodeId,
    listen_port: u16,
    peer: NodeId,
    peer_port: u16,
    monitor_node: NodeId,
    app_vars: usize,
    seed: u64,
) -> String {
    format!(
        "node = {}\n\
         listen = \"127.0.0.1:{listen_port}\"\n\
         peer = \"{}@127.0.0.1:{peer_port}\"\n\
         monitor_node = {}\n\
         heartbeat_ms = 50\n\
         component_timeout_ms = 400\n\
         peer_timeout_ms = 400\n\
         fail_safe_ms = 250\n\
         checkpoint_ms = 100\n\
         startup_ms = 500\n\
         status_ms = 200\n\
         app_vars = {app_vars}\n\
         app_var_bytes = 64\n\
         app_dirty_per_tick = 4\n\
         app_tick_ms = 20\n\
         seed = {seed}\n",
        node.0, peer.0, monitor_node.0
    )
}

/// A spawned `oftt-node` with its stdout scraped into memory.
pub struct ChildNode {
    /// The node's id (for diagnostics).
    pub node: NodeId,
    child: Child,
    lines: Arc<Mutex<Vec<String>>>,
}

impl ChildNode {
    /// Spawns `oftt-node --config <path>` with piped, scraped stdout.
    pub fn spawn(node: NodeId, config_path: &std::path::Path) -> std::io::Result<ChildNode> {
        let mut child = Command::new(oftt_node_bin())
            .arg("--config")
            .arg(config_path)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdout = child.stdout.take().expect("piped stdout");
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&lines);
        std::thread::spawn(move || {
            let reader = BufReader::new(stdout);
            for line in reader.lines() {
                match line {
                    Ok(line) => sink.lock().push(line),
                    Err(_) => break,
                }
            }
        });
        Ok(ChildNode { node, child, lines })
    }

    /// Snapshot of everything the node has printed so far.
    pub fn output(&self) -> Vec<String> {
        self.lines.lock().clone()
    }

    /// Waits until some line satisfies `pred`, returning that line.
    pub fn wait_for_line(&self, pred: impl Fn(&str) -> bool, timeout: Duration) -> Option<String> {
        let start = Instant::now();
        loop {
            if let Some(line) = self.lines.lock().iter().find(|l| pred(l)) {
                return Some(line.clone());
            }
            if start.elapsed() > timeout {
                return None;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// The index of the first line satisfying `pred`, if any (for
    /// ordering assertions).
    pub fn find_line(&self, pred: impl Fn(&str) -> bool) -> Option<String> {
        self.lines.lock().iter().find(|l| pred(l)).cloned()
    }

    /// SIGKILL — the process gets no chance to flush, say goodbye, or
    /// close sockets gracefully. This is the failure model.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// `true` if the process has exited.
    pub fn is_dead(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(Some(_)))
    }
}

impl Drop for ChildNode {
    fn drop(&mut self) {
        self.kill();
    }
}

/// A minimal frame-speaking peer for tests and benches: one blocking
/// socket, a real epoch handshake, and no supervision on top. Lets a
/// test or bench pose as a whole fleet of application nodes without
/// paying for a [`crate::supervisor::Supervisor`] per identity.
pub struct RawPeer {
    stream: std::net::TcpStream,
    /// The node id this peer claimed in its hello.
    pub node: NodeId,
    /// Epoch stamped on our outgoing frames.
    pub epoch: u32,
    /// Epoch the remote end stamped on its handshake reply.
    pub peer_epoch: u32,
    max_frame: u32,
}

impl RawPeer {
    /// Connects, sends a hello as `node`, and blocks for the reply.
    pub fn connect(addr: &str, node: NodeId, epoch: u32) -> Result<RawPeer, String> {
        let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stream.set_nodelay(true).ok();
        RawPeer::handshake(stream, node, epoch)
    }

    /// Runs the hello exchange over an already-connected stream.
    pub fn handshake(
        mut stream: std::net::TcpStream,
        node: NodeId,
        epoch: u32,
    ) -> Result<RawPeer, String> {
        use crate::frame::{read_frame, write_frame, FrameClass, DEFAULT_MAX_FRAME_BYTES};
        let hello = comsim::marshal::to_bytes(&crate::supervisor::Hello { node })
            .map_err(|e| format!("marshal hello: {e}"))?;
        write_frame(&mut stream, FrameClass::Handshake, epoch, &hello, &[], &[])
            .map_err(|e| format!("send hello: {e}"))?;
        stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let reply = read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES)
            .map_err(|e| format!("hello reply: {e}"))?;
        if reply.header.class != FrameClass::Handshake {
            return Err(format!("expected handshake reply, got {:?}", reply.header.class));
        }
        stream.set_read_timeout(None).ok();
        Ok(RawPeer {
            stream,
            node,
            epoch,
            peer_epoch: reply.header.epoch,
            max_frame: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Writes one frame, blocking until it is fully on the wire.
    pub fn send(
        &mut self,
        class: crate::frame::FrameClass,
        meta: &[u8],
        body: &[u8],
    ) -> std::io::Result<u64> {
        crate::frame::write_frame(&mut self.stream, class, self.epoch, meta, body, &[])
    }

    /// Encodes an envelope with `codec` and writes it as one frame,
    /// exactly as the supervisor's send path would.
    ///
    /// The harness is a blocking single-threaded test peer and is never
    /// registered as a reactor callback, so its send path is declared
    /// off the reactor hot path.
    // oftt-lint: cold-path
    pub fn send_envelope(
        &mut self,
        codec: &crate::codec::WireCodec,
        envelope: &ds_net::message::Envelope,
    ) -> Result<u64, String> {
        let (meta, payload) = codec
            .encode_envelope(envelope)
            .ok_or("body type not wire-registered")?
            .map_err(|e| format!("encode: {e}"))?;
        crate::frame::write_frame(
            &mut self.stream,
            payload.class,
            self.epoch,
            &meta,
            &payload.head,
            &payload.shared,
        )
        .map_err(|e| format!("send: {e}"))
    }

    /// Blocking-reads the next frame.
    pub fn recv(&mut self) -> Result<crate::frame::Frame, crate::frame::ReadError> {
        crate::frame::read_frame(&mut self.stream, self.max_frame)
    }

    /// Sets (or clears) the read timeout on the underlying socket.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) {
        self.stream.set_read_timeout(timeout).ok();
    }

    /// The underlying stream, for tests that need to stop reading or
    /// shrink socket buffers to provoke backpressure.
    pub fn stream(&self) -> &std::net::TcpStream {
        &self.stream
    }
}

/// Writes `content` to `dir/name` and returns the path.
pub fn write_config(dir: &std::path::Path, name: &str, content: &str) -> PathBuf {
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create config");
    f.write_all(content.as_bytes()).expect("write config");
    path
}

/// Parses `(term=T seq=S crc=C)` out of a checkpoint trace line.
pub fn parse_ckpt_triple(line: &str) -> Option<(u64, u64, u32)> {
    let term = field(line, "term=")?;
    let seq = field(line, "seq=")?;
    let crc = field(line, "crc=")?;
    Some((term, seq, crc as u32))
}

fn field(line: &str, key: &str) -> Option<u64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ckpt_triples_parse_from_trace_lines() {
        let line = "[12.300000s   ckpt] node1/app: ckpt installed (term=3 seq=17 crc=123456)";
        assert_eq!(parse_ckpt_triple(line), Some((3, 17, 123456)));
        assert_eq!(parse_ckpt_triple("no triple here"), None);
    }
}
