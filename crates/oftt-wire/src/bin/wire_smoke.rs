//! `wire-smoke`: the end-to-end proof for the socket backend.
//!
//! Spawns a real two-process OFTT pair on loopback, waits for the pair
//! to form and checkpoints to flow, then SIGKILLs the primary and
//! asserts:
//!
//! 1. the backup promotes itself within the detection budget;
//! 2. the application resumes (ACTIVE) on the survivor;
//! 3. the restored image's crc equals the crc the backup logged when it
//!    installed that checkpoint **and** the crc the dead primary logged
//!    when it shipped it — restore integrity across a real process
//!    boundary, asserted purely from the trace.
//!
//! Exit 0 with a `PASS` line on success; exit 1 with both nodes' output
//! tails otherwise.

use std::time::{Duration, Instant};

use ds_net::endpoint::NodeId;
use oftt_wire::harness::{free_port, pair_config, parse_ckpt_triple, write_config, ChildNode};

/// Promotion must land within this wall budget after the kill (peer
/// timeout is 400ms; the rest is negotiation and scheduling slack).
const DETECTION_BUDGET: Duration = Duration::from_secs(3);

fn fail(children: &[ChildNode], why: &str) -> ! {
    eprintln!("wire-smoke: FAIL: {why}");
    for child in children {
        let out = child.output();
        let tail = out.iter().rev().take(40).collect::<Vec<_>>();
        eprintln!("--- node{} output tail ---", child.node.0);
        for line in tail.iter().rev() {
            eprintln!("{line}");
        }
    }
    std::process::exit(1);
}

fn count(child: &ChildNode, needle: &str) -> usize {
    child.output().iter().filter(|l| l.contains(needle)).count()
}

fn main() {
    let dir = std::env::temp_dir().join(format!("wire-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let (na, nb) = (NodeId(0), NodeId(1));
    let (port_a, port_b) = (free_port(), free_port());
    let config_a = write_config(&dir, "a.toml", &pair_config(na, port_a, nb, port_b, na, 200, 11));
    let config_b = write_config(&dir, "b.toml", &pair_config(nb, port_b, na, port_a, na, 200, 22));

    let mut children = vec![
        ChildNode::spawn(na, &config_a).expect("spawn node a"),
        ChildNode::spawn(nb, &config_b).expect("spawn node b"),
    ];

    for idx in 0..2 {
        if children[idx]
            .wait_for_line(|l| l.starts_with("READY"), Duration::from_secs(10))
            .is_none()
        {
            let node = children[idx].node.0;
            fail(&children, &format!("node{node} never reported READY"));
        }
    }

    // The pair forms: one primary, one backup.
    let deadline = Duration::from_secs(15);
    let primary_idx =
        if children[0].wait_for_line(|l| l.contains("role=primary"), deadline).is_some() {
            0
        } else if children[1].find_line(|l| l.contains("role=primary")).is_some() {
            1
        } else {
            fail(&children, "no node ever became primary");
        };
    let backup_idx = 1 - primary_idx;
    if children[backup_idx].wait_for_line(|l| l.contains("role=backup"), deadline).is_none() {
        fail(&children, "the other node never became backup");
    }
    println!(
        "wire-smoke: pair formed (primary=node{}, backup=node{})",
        children[primary_idx].node.0, children[backup_idx].node.0
    );

    // Checkpoints flow over TCP: shipped, installed, acked.
    let flow = Duration::from_secs(10);
    let start = Instant::now();
    while start.elapsed() < flow {
        if count(&children[primary_idx], "ckpt shipped") >= 3
            && count(&children[primary_idx], "ckpt acked") >= 1
            && count(&children[backup_idx], "ckpt installed") >= 3
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    if count(&children[backup_idx], "ckpt installed") < 3
        || count(&children[primary_idx], "ckpt acked") < 1
    {
        fail(&children, "checkpoint flow never established");
    }

    // SIGKILL the primary mid-flight.
    let primary_lines_before = children[primary_idx].output();
    let killed_at = Instant::now();
    children[primary_idx].kill();

    let promoted =
        children[backup_idx].wait_for_line(|l| l.contains("role=primary"), DETECTION_BUDGET * 2);
    let detection = killed_at.elapsed();
    if promoted.is_none() {
        fail(&children, "backup never promoted after the primary was SIGKILLed");
    }
    if detection > DETECTION_BUDGET {
        fail(
            &children,
            &format!("promotion took {detection:?}, over the {DETECTION_BUDGET:?} budget"),
        );
    }
    if children[backup_idx]
        .wait_for_line(|l| l.contains("application ACTIVE"), Duration::from_secs(5))
        .is_none()
    {
        fail(&children, "application never went ACTIVE on the survivor");
    }

    // Restore integrity: the takeover's restored image crc must match
    // both the backup's install log and the dead primary's ship log for
    // the same (term, seq).
    let restore_line = children[backup_idx]
        .wait_for_line(|l| l.contains("ckpt restore position"), Duration::from_secs(5));
    let Some(restore_line) = restore_line else {
        fail(&children, "no 'ckpt restore position' line on the survivor");
    };
    let Some((term, seq, restored_crc)) = parse_ckpt_triple(&restore_line) else {
        fail(&children, &format!("unparsable restore line: {restore_line}"));
    };
    let needle = format!("ckpt installed (term={term} seq={seq}");
    let Some(installed) = children[backup_idx].find_line(|l| l.contains(&needle)) else {
        fail(&children, &format!("no install log for restored position t{term}.s{seq}"));
    };
    let installed_crc = parse_ckpt_triple(&installed).map(|(_, _, c)| c);
    if installed_crc != Some(restored_crc) {
        fail(
            &children,
            &format!(
                "restore-integrity violation: restored crc {restored_crc} vs installed {installed_crc:?}"
            ),
        );
    }
    let ship_needle = format!("ckpt shipped (term={term} seq={seq}");
    let shipped_crc = primary_lines_before
        .iter()
        .find(|l| l.contains(&ship_needle))
        .and_then(|l| parse_ckpt_triple(l))
        .map(|(_, _, c)| c);
    if let Some(shipped) = shipped_crc {
        if shipped != restored_crc {
            fail(
                &children,
                &format!(
                    "restore-integrity violation: restored crc {restored_crc} vs shipped {shipped}"
                ),
            );
        }
    }

    println!(
        "wire-smoke: PASS detection_ms={} restored=t{term}.s{seq} crc={restored_crc} shipped_crc_checked={}",
        detection.as_millis(),
        shipped_crc.is_some(),
    );
    let _ = std::fs::remove_dir_all(&dir);
}
