//! `oftt-node`: hosts one node of an OFTT pair as a real OS process.
//!
//! ```text
//! oftt-node --config a.toml
//! ```
//!
//! Services hosted: the OFTT engine, one checkpointing FTIM wrapping the
//! synthetic [`LoadApp`], a store-and-forward queue manager (subscribed
//! to transport events for reconnect retries), and — on the node named
//! by `monitor_node` — the System Monitor. The node's trace streams to
//! stdout, one line per entry, which is what the smoke test and the
//! failover bench scrape.

use std::sync::Arc;
use std::time::Duration;

use ds_net::endpoint::Endpoint;
use msgq::manager::{manager_endpoint, QueueConfig, QueueManager, QueueStats};
use oftt::config::{engine_endpoint, RecoveryRule};
use oftt::engine::{Engine, EngineProbe};
use oftt::ftim::{FtProcess, FtimProbe};
use oftt::monitor::{MonitorTable, SystemMonitor};
use oftt_wire::app::{LoadApp, LoadView};
use oftt_wire::codec::WireCodec;
use oftt_wire::config::{NodeConfig, APP_SERVICE, MONITOR_SERVICE};
use oftt_wire::runtime::WireNet;
use parking_lot::Mutex;

fn usage() -> ! {
    eprintln!("usage: oftt-node --config <path>");
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut config_path = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => config_path = args.next(),
            _ => usage(),
        }
    }
    let Some(config_path) = config_path else { usage() };
    let config = match NodeConfig::load(&config_path) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("oftt-node: {e}");
            std::process::exit(2);
        }
    };
    let oftt_config = match config.to_oftt_config() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("oftt-node: {e}");
            std::process::exit(2);
        }
    };

    let codec = Arc::new(WireCodec::standard());
    let mut net = match WireNet::new(config.seed, config.to_wire_config(), codec) {
        Ok(net) => net,
        Err(e) => {
            eprintln!("oftt-node: socket layer failed to start: {e}");
            std::process::exit(1);
        }
    };
    let node = config.node;

    // Engine.
    let engine_probe = Arc::new(Mutex::new(EngineProbe::default()));
    {
        let engine_config = oftt_config.clone();
        let probe = Arc::clone(&engine_probe);
        net.register(
            engine_endpoint(node),
            Box::new(move || Box::new(Engine::new(engine_config.clone(), probe.clone()))),
        );
    }

    // Synthetic application under a checkpointing FTIM.
    let view = Arc::new(Mutex::new(LoadView::default()));
    let load_config = config.to_load_config();
    {
        let app_config = oftt_config.clone();
        let view = Arc::clone(&view);
        let ftim = Arc::new(Mutex::new(FtimProbe::default()));
        net.register(
            Endpoint::new(node, APP_SERVICE),
            Box::new(move || {
                Box::new(FtProcess::new(
                    app_config.clone(),
                    RecoveryRule::LocalRestart { max_attempts: 1 },
                    LoadApp::new(load_config, view.clone()),
                    ftim.clone(),
                ))
            }),
        );
    }

    // Store-and-forward queue manager, retrying on reconnect.
    {
        let stats = Arc::new(Mutex::new(QueueStats::default()));
        net.register(
            manager_endpoint(node),
            Box::new(move || Box::new(QueueManager::new(QueueConfig::default(), stats.clone()))),
        );
        net.subscribe_transport_events(manager_endpoint(node));
    }

    // System Monitor, if this node hosts it.
    let monitor_table = Arc::new(Mutex::new(MonitorTable::default()));
    if config.monitor_node == Some(node) {
        let table = Arc::clone(&monitor_table);
        let stale_after = oftt_config.peer_timeout;
        net.register(
            Endpoint::new(node, MONITOR_SERVICE),
            Box::new(move || Box::new(SystemMonitor::new(stale_after, table.clone()))),
        );
    }

    net.start(&engine_endpoint(node));
    net.start(&Endpoint::new(node, APP_SERVICE));
    net.start(&manager_endpoint(node));
    if config.monitor_node == Some(node) {
        net.start(&Endpoint::new(node, MONITOR_SERVICE));
    }
    if let Some(monitor) = oftt_config.monitor.clone() {
        net.start_transport_reporter(monitor, Duration::from_millis(config.status_ms));
    }

    let listen = net.listen_addr().map(|a| a.to_string()).unwrap_or_else(|| "?".into());
    println!("READY node={} listen={listen}", node.0);

    // Stream the trace to stdout; the harness scrapes these lines.
    use std::io::Write;
    let deadline =
        config.run_for_ms.map(|ms| std::time::Instant::now() + Duration::from_millis(ms));
    let mut printed = 0usize;
    loop {
        let trace = net.trace_snapshot();
        let entries = trace.entries();
        if printed < entries.len() {
            let mut stdout = std::io::stdout().lock();
            for entry in &entries[printed..] {
                let _ = writeln!(stdout, "{entry}");
            }
            drop(stdout);
            // Flush on a fresh handle: same underlying buffer, but no
            // guard pinned across the (blocking) flush syscall.
            let _ = std::io::stdout().flush();
            printed = entries.len();
        }
        if let Some(deadline) = deadline {
            if std::time::Instant::now() >= deadline {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    net.shutdown();
}
