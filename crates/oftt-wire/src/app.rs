//! A synthetic checkpointing application for the node agent, the smoke
//! test, and the benches: `vars` named buffers of `var_bytes` each,
//! mutating `dirty_per_tick` of them per tick in a rotating window — a
//! knob-for-knob match of the checkpoint bench's locality model, but
//! running as a real [`FtApplication`] under a real FTIM.

use std::sync::Arc;
use std::time::Duration;

use comsim::buf::Bytes;
use ds_sim::prelude::SimDuration;
use oftt::checkpoint::{VarSet, VarStore};
use oftt::ftim::{FtApplication, FtCtx};
use parking_lot::Mutex;

/// Shape of the synthetic state.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Number of designated variables.
    pub vars: usize,
    /// Bytes per variable.
    pub var_bytes: usize,
    /// Variables mutated per tick.
    pub dirty_per_tick: usize,
    /// Tick period.
    pub tick_period: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            vars: 64,
            var_bytes: 64,
            dirty_per_tick: 4,
            tick_period: Duration::from_millis(20),
        }
    }
}

/// What the outside world can observe about a [`LoadApp`].
#[derive(Debug, Default, Clone, Copy)]
pub struct LoadView {
    /// Ticks executed while active (survives failover via checkpoint).
    pub ticks: u64,
    /// Whether the app is currently the active copy.
    pub active: bool,
    /// Restores performed.
    pub restores: u64,
}

const TICK: u64 = 1;

fn var_name(i: usize) -> String {
    format!("v{i:05}")
}

/// The synthetic application.
pub struct LoadApp {
    config: LoadConfig,
    /// Per-variable version counters; the buffer for var `i` carries its
    /// version in the first 8 bytes (LE), rest constant filler.
    versions: Vec<u64>,
    ticks: u64,
    cursor: usize,
    /// Indices touched since the last `snapshot_dirty`.
    pending: Vec<usize>,
    view: Arc<Mutex<LoadView>>,
}

impl LoadApp {
    /// Creates the app; `view` is shared with the host for assertions.
    pub fn new(config: LoadConfig, view: Arc<Mutex<LoadView>>) -> Self {
        LoadApp {
            versions: vec![0; config.vars.max(1)],
            config,
            ticks: 0,
            cursor: 0,
            pending: Vec::new(),
            view,
        }
    }

    fn var_bytes(&self, i: usize) -> Bytes {
        let mut buf = vec![(i & 0xFF) as u8; self.config.var_bytes.max(8)];
        buf[..8].copy_from_slice(&self.versions[i].to_le_bytes());
        Bytes::from(buf)
    }
}

impl FtApplication for LoadApp {
    fn snapshot(&self) -> VarSet {
        let mut image: VarSet =
            (0..self.versions.len()).map(|i| (var_name(i), self.var_bytes(i))).collect();
        image.insert("ticks".into(), Bytes::from(self.ticks.to_le_bytes().to_vec()));
        image
    }

    fn snapshot_dirty(&mut self, store: &mut VarStore) {
        // Only the touched window plus the tick counter — the O(write
        // set) walkthrough the delta path exists for.
        for i in std::mem::take(&mut self.pending) {
            store.set(var_name(i), self.var_bytes(i));
        }
        store.set("ticks", Bytes::from(self.ticks.to_le_bytes().to_vec()));
    }

    fn restore(&mut self, image: &VarSet) {
        if let Some(bytes) = image.get("ticks") {
            if let Ok(raw) = <[u8; 8]>::try_from(bytes.as_slice()) {
                self.ticks = u64::from_le_bytes(raw);
            }
        }
        for (i, version) in self.versions.iter_mut().enumerate() {
            if let Some(bytes) = image.get(&var_name(i)) {
                if bytes.len() >= 8 {
                    if let Ok(raw) = <[u8; 8]>::try_from(&bytes.as_slice()[..8]) {
                        *version = u64::from_le_bytes(raw);
                    }
                }
            }
        }
        let mut view = self.view.lock();
        view.ticks = self.ticks;
        view.restores += 1;
    }

    fn on_activate(&mut self, ctx: &mut FtCtx<'_>) {
        {
            let mut view = self.view.lock();
            view.ticks = self.ticks;
            view.active = true;
        }
        let period = SimDuration::from_micros(self.config.tick_period.as_micros() as u64);
        ctx.env().set_timer(period, TICK);
    }

    fn on_deactivate(&mut self, _ctx: &mut FtCtx<'_>) {
        self.view.lock().active = false;
    }

    fn on_app_timer(&mut self, token: u64, ctx: &mut FtCtx<'_>) {
        if token != TICK {
            return;
        }
        self.ticks += 1;
        for _ in 0..self.config.dirty_per_tick.min(self.versions.len()) {
            let i = self.cursor % self.versions.len();
            self.versions[i] += 1;
            self.pending.push(i);
            self.cursor += 1;
        }
        {
            let mut view = self.view.lock();
            view.ticks = self.ticks;
            view.active = true;
        }
        let period = SimDuration::from_micros(self.config.tick_period.as_micros() as u64);
        ctx.env().set_timer(period, TICK);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_restore_round_trip_the_counters() {
        let view = Arc::new(Mutex::new(LoadView::default()));
        let config = LoadConfig { vars: 8, var_bytes: 16, ..Default::default() };
        let mut app = LoadApp::new(config, view.clone());
        app.ticks = 42;
        app.versions[3] = 9;
        let image = app.snapshot();
        assert_eq!(image.len(), 9, "8 vars + ticks");

        let mut other = LoadApp::new(config, Arc::new(Mutex::new(LoadView::default())));
        other.restore(&image);
        assert_eq!(other.ticks, 42);
        assert_eq!(other.versions[3], 9);
    }

    #[test]
    fn dirty_walkthrough_covers_only_the_touched_window() {
        let view = Arc::new(Mutex::new(LoadView::default()));
        let config =
            LoadConfig { vars: 100, var_bytes: 16, dirty_per_tick: 5, ..Default::default() };
        let mut app = LoadApp::new(config, view);
        // Simulate two ticks' worth of mutation without a runtime.
        for _ in 0..2 {
            app.ticks += 1;
            for _ in 0..5 {
                let i = app.cursor % app.versions.len();
                app.versions[i] += 1;
                app.pending.push(i);
                app.cursor += 1;
            }
        }
        let mut store = VarStore::new();
        app.snapshot_dirty(&mut store);
        let dirty = store.take_dirty(None);
        assert_eq!(dirty.len(), 11, "10 touched vars + ticks, not all 100");
        assert!(app.pending.is_empty(), "pending set drains per walkthrough");
    }
}
