//! [`WireNet`]: the node runtime that hosts OFTT actors over TCP.
//!
//! One `WireNet` per OS process hosts the services of **one node**.
//! Local routing works exactly like [`ds_net::live::LiveNet`] (same
//! [`run_actor`] loop, same mailbox semantics, same drop accounting);
//! envelopes addressed to another node are encoded by the [`WireCodec`]
//! and queued on the [`Supervisor`]'s link to that peer. The actors
//! cannot tell which backend they are on — that is the point.
//!
//! [`run_actor`]: ds_net::transport::run_actor

use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender};
use ds_net::endpoint::{Endpoint, NodeId};
use ds_net::message::Envelope;
use ds_net::process::ProcessFactory;
use ds_net::transport::{
    run_actor, Control, NodeRouter, PeerHealth, TransportEvent, TransportReport,
};
use ds_sim::prelude::{SimTime, Trace, TraceCategory, WallClock};
use parking_lot::{Mutex, RwLock};

use crate::codec::WireCodec;
use crate::supervisor::{Supervisor, WireConfig, WireHandler};

struct WireShared {
    node: NodeId,
    peers: HashSet<NodeId>,
    /// Live mailboxes, each tagged with the generation of the spawn that
    /// registered it (a killed actor exiting late must not retire a
    /// successor's registration).
    mailboxes: RwLock<HashMap<Endpoint, (Sender<Control>, u64)>>,
    specs: Mutex<HashMap<Endpoint, ProcessFactory>>,
    trace: Mutex<Trace>,
    clock: WallClock,
    seed: u64,
    counter: Mutex<u64>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    dropped: AtomicU64,
    unroutable: AtomicU64,
    event_subs: Mutex<Vec<Endpoint>>,
    supervisor: RwLock<Option<Supervisor>>,
    shutting_down: AtomicBool,
}

impl WireShared {
    fn note_drop(&self, envelope: &Envelope) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
        let now = self.clock.now();
        self.trace.lock().record(
            now,
            TraceCategory::Net,
            format!("wire drop {} -> {}: no local mailbox", envelope.from, envelope.to),
        );
    }

    fn deliver_local(&self, envelope: Envelope) {
        let target = self.mailboxes.read().get(&envelope.to).map(|(tx, _)| tx.clone());
        match target {
            Some(tx) => {
                if let Err(err) = tx.send(Control::Deliver(envelope)) {
                    let crossbeam::channel::SendError(control) = err;
                    if let Control::Deliver(envelope) = control {
                        self.note_drop(&envelope);
                    }
                }
            }
            None => self.note_drop(&envelope),
        }
    }

    fn spawn(self: &Arc<Self>, endpoint: Endpoint) {
        let actor = {
            let specs = self.specs.lock();
            let Some(factory) = specs.get(&endpoint) else { return };
            factory()
        };
        let (tx, rx) = unbounded();
        let generation = {
            let mut c = self.counter.lock();
            *c += 1;
            *c
        };
        self.mailboxes.write().insert(endpoint.clone(), (tx, generation));
        let router: Arc<dyn NodeRouter> = Arc::new(ArcRouter(Arc::clone(self)));
        let seed = self.seed.wrapping_add(generation);
        let handle =
            std::thread::spawn(move || run_actor(actor, endpoint, router, seed, generation, rx));
        self.handles.lock().push(handle);
    }

    fn kill(&self, endpoint: &Endpoint) {
        if let Some((tx, _)) = self.mailboxes.write().remove(endpoint) {
            let _ = tx.send(Control::Kill);
        }
    }

    fn now(&self) -> SimTime {
        self.clock.now()
    }

    fn route(&self, envelope: Envelope) {
        if envelope.to.node == self.node {
            self.deliver_local(envelope);
            return;
        }
        if !self.peers.contains(&envelope.to.node) {
            self.unroutable.fetch_add(1, Ordering::Relaxed);
            let now = self.clock.now();
            self.trace.lock().record(
                now,
                TraceCategory::Net,
                format!(
                    "wire drop {} -> {}: node {} has no configured link",
                    envelope.from, envelope.to, envelope.to.node
                ),
            );
            return;
        }
        let supervisor = self.supervisor.read();
        if let Some(sup) = supervisor.as_ref() {
            sup.send_envelope(envelope.to.node, &envelope);
        }
    }

    fn record_trace(&self, category: TraceCategory, message: String) {
        let now = self.clock.now();
        self.trace.lock().record(now, category, message);
    }

    fn kill_local(&self, target: &Endpoint) {
        if target.node == self.node {
            self.kill(target);
        } else {
            self.record_trace(
                TraceCategory::Net,
                format!("wire: cannot kill {target}: not on node {}", self.node),
            );
        }
    }
}

impl WireHandler for WireShared {
    fn deliver(&self, envelope: Envelope) {
        self.deliver_local(envelope);
    }

    fn peer_event(&self, event: TransportEvent) {
        let subs = self.event_subs.lock().clone();
        let from = Endpoint::new(self.node, "__wire");
        for to in subs {
            self.deliver_local(Envelope::new(from.clone(), to, event));
        }
    }

    fn record(&self, category: TraceCategory, message: String) {
        self.record_trace(category, message);
    }
}

/// Router handed to actors: wraps the `Arc` so `restart_service` can
/// spawn (spawning needs the `Arc`, which a bare `&self` method on
/// `WireShared` cannot recover).
struct ArcRouter(Arc<WireShared>);

impl NodeRouter for ArcRouter {
    fn now(&self) -> SimTime {
        self.0.now()
    }
    fn route(&self, envelope: Envelope) {
        self.0.route(envelope);
    }
    fn record(&self, category: TraceCategory, message: String) {
        self.0.record_trace(category, message);
    }
    fn kill_service(&self, target: &Endpoint) {
        self.0.kill_local(target);
    }
    fn restart_service(&self, target: &Endpoint) {
        if target.node != self.0.node {
            self.0.record_trace(
                TraceCategory::Net,
                format!("wire: cannot restart {target}: not on node {}", self.0.node),
            );
            return;
        }
        if self.0.mailboxes.read().contains_key(target) {
            return;
        }
        self.0.spawn(target.clone());
    }
    fn actor_exited(&self, endpoint: &Endpoint, generation: u64) {
        let mut mailboxes = self.0.mailboxes.write();
        if mailboxes.get(endpoint).is_some_and(|(_, g)| *g == generation) {
            mailboxes.remove(endpoint);
        }
    }
}

/// A TCP-backed node runtime hosting [`Process`] actors.
///
/// [`Process`]: ds_net::process::Process
pub struct WireNet {
    shared: Arc<WireShared>,
}

impl WireNet {
    /// Starts the socket layer (binds the listener, begins dialing
    /// peers) and returns the runtime. Actors are registered and started
    /// afterwards, like on the other backends.
    pub fn new(seed: u64, config: WireConfig, codec: Arc<WireCodec>) -> std::io::Result<Self> {
        let shared = Arc::new(WireShared {
            node: config.node,
            peers: config.peers.iter().map(|(peer, _)| *peer).collect(),
            mailboxes: RwLock::new(HashMap::new()),
            specs: Mutex::new(HashMap::new()),
            trace: Mutex::new(Trace::new()),
            clock: WallClock::new(),
            seed,
            counter: Mutex::new(0),
            handles: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            unroutable: AtomicU64::new(0),
            event_subs: Mutex::new(Vec::new()),
            supervisor: RwLock::new(None),
            shutting_down: AtomicBool::new(false),
        });
        let handler: Arc<dyn WireHandler> = Arc::clone(&shared) as Arc<dyn WireHandler>;
        let supervisor = Supervisor::start(config, codec, handler)?;
        *shared.supervisor.write() = Some(supervisor);
        Ok(WireNet { shared })
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.shared.node
    }

    /// The bound listen address (resolves port 0).
    pub fn listen_addr(&self) -> Option<SocketAddr> {
        self.shared.supervisor.read().as_ref().map(|s| s.local_addr())
    }

    /// Registers a service spec (not started yet).
    pub fn register(&mut self, endpoint: Endpoint, factory: ProcessFactory) {
        self.shared.specs.lock().insert(endpoint, factory);
    }

    /// Starts a registered service on its own thread.
    pub fn start(&mut self, endpoint: &Endpoint) {
        self.shared.spawn(endpoint.clone());
    }

    /// Kills a running local service (no notification to the victim).
    pub fn kill(&mut self, endpoint: &Endpoint) {
        self.shared.kill(endpoint);
    }

    /// `true` if the local service currently has a live mailbox.
    pub fn is_running(&self, endpoint: &Endpoint) -> bool {
        self.shared.mailboxes.read().contains_key(endpoint)
    }

    /// Injects a message from an external driver (local or remote
    /// destination; remote bodies must be codec-registered).
    pub fn post<T: std::any::Any + Send>(&self, to: Endpoint, body: T) {
        let from = Endpoint::new(self.shared.node, "__external");
        self.shared.route(Envelope::new(from, to, body));
    }

    /// Copies out the trace recorded so far.
    pub fn trace_snapshot(&self) -> Trace {
        self.shared.trace.lock().clone()
    }

    /// Envelopes dropped locally because no mailbox could accept them.
    pub fn dropped_count(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Envelopes dropped because their destination node has no link.
    pub fn unroutable_count(&self) -> u64 {
        self.shared.unroutable.load(Ordering::Relaxed)
    }

    /// Milliseconds since the runtime started (live wall time).
    pub fn now(&self) -> SimTime {
        self.shared.clock.now()
    }

    /// Per-peer link health from the supervisor.
    pub fn health(&self) -> Vec<PeerHealth> {
        self.shared.supervisor.read().as_ref().map(|s| s.health()).unwrap_or_default()
    }

    /// `true` if a handshaken connection to `peer` is currently up.
    pub fn connected(&self, peer: NodeId) -> bool {
        self.shared.supervisor.read().as_ref().map(|s| s.connected(peer)).unwrap_or(false)
    }

    /// Frames received from an abandoned connection epoch and dropped.
    pub fn stale_in(&self, peer: NodeId) -> u64 {
        self.shared.supervisor.read().as_ref().map(|s| s.stale_in(peer)).unwrap_or(0)
    }

    /// The fixed reactor thread count serving every connection (O(1) in
    /// the number of peers).
    pub fn io_threads(&self) -> usize {
        self.shared.supervisor.read().as_ref().map_or(0, |s| s.io_threads())
    }

    /// Encode-path buffer pool counters from the supervisor.
    pub fn pool_stats(&self) -> Option<crate::pool::PoolStats> {
        self.shared.supervisor.read().as_ref().map(|s| s.pool_stats())
    }

    /// Subscribes a **local** service to [`TransportEvent`]s (delivered
    /// as ordinary envelopes from `<node>/__wire`).
    pub fn subscribe_transport_events(&mut self, endpoint: Endpoint) {
        self.shared.event_subs.lock().push(endpoint);
    }

    /// Spawns a thread that periodically routes a [`TransportReport`] to
    /// `monitor` (which may live on a peer node).
    pub fn start_transport_reporter(&mut self, monitor: Endpoint, period: Duration) {
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::spawn(move || loop {
            let mut slept = Duration::ZERO;
            while slept < period {
                if shared.shutting_down.load(Ordering::Relaxed) {
                    return;
                }
                let slice = Duration::from_millis(50).min(period - slept);
                std::thread::sleep(slice);
                slept += slice;
            }
            let peers = {
                let sup = shared.supervisor.read();
                match sup.as_ref() {
                    Some(s) => s.health(),
                    None => return,
                }
            };
            let report = TransportReport { node: shared.node, peers, at: shared.clock.now() };
            let from = Endpoint::new(shared.node, "__wire");
            shared.route(Envelope::new(from, monitor.clone(), report));
        });
        self.shared.handles.lock().push(handle);
    }

    /// Stops every service, the reporter, and the socket layer.
    pub fn shutdown(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        let endpoints: Vec<Endpoint> = self.shared.mailboxes.read().keys().cloned().collect();
        for ep in endpoints {
            self.shared.kill(&ep);
        }
        let handles: Vec<JoinHandle<()>> = self.shared.handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        // Taking the supervisor out breaks the WireShared <-> Supervisor
        // Arc cycle and joins the socket threads.
        let supervisor = self.shared.supervisor.write().take();
        if let Some(sup) = supervisor {
            sup.shutdown();
        }
    }
}

impl Drop for WireNet {
    fn drop(&mut self) {
        self.shutdown();
    }
}
