//! The `oftt-node` config-file format: flat `key = value` lines.
//!
//! ```text
//! # one node of the pair
//! node = 0
//! listen = "127.0.0.1:7101"
//! peer = "1@127.0.0.1:7102"
//! monitor_node = 0
//! heartbeat_ms = 50
//! peer_timeout_ms = 400
//! checkpoint_ms = 100
//! app_vars = 200
//! ```
//!
//! Quotes are optional, `#` starts a comment, unknown keys are errors
//! (config typos must not silently fall back to defaults on a system
//! whose purpose is failure detection).

use std::time::Duration;

use ds_net::endpoint::{Endpoint, NodeId};
use ds_sim::prelude::SimDuration;
use oftt::config::{OfttConfig, Pair};

use crate::app::LoadConfig;
use crate::supervisor::WireConfig;

/// Conventional service name for the System Monitor.
pub const MONITOR_SERVICE: &str = "oftt-monitor";
/// Conventional service name for the node's hosted application FTIM.
pub const APP_SERVICE: &str = "app";

/// Everything one `oftt-node` process needs.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's id.
    pub node: NodeId,
    /// TCP listen address.
    pub listen: String,
    /// Peer node ids and addresses.
    pub peers: Vec<(NodeId, String)>,
    /// Engine heartbeat period (ms).
    pub heartbeat_ms: u64,
    /// Component (FTIM) failure-detection timeout (ms).
    pub component_timeout_ms: u64,
    /// Peer engine failure-detection timeout (ms).
    pub peer_timeout_ms: u64,
    /// Fail-safe self-demotion timeout (ms).
    pub fail_safe_ms: u64,
    /// Checkpoint period (ms).
    pub checkpoint_ms: u64,
    /// Startup negotiation timeout (ms).
    pub startup_ms: u64,
    /// Status-report / transport-report period (ms).
    pub status_ms: u64,
    /// Which node hosts the System Monitor, if any.
    pub monitor_node: Option<NodeId>,
    /// Synthetic application: variable count.
    pub app_vars: usize,
    /// Synthetic application: bytes per variable.
    pub app_var_bytes: usize,
    /// Synthetic application: variables mutated per tick.
    pub app_dirty_per_tick: usize,
    /// Synthetic application: tick period (ms).
    pub app_tick_ms: u64,
    /// RNG seed for the node.
    pub seed: u64,
    /// Exit after this long, if set (ms).
    pub run_for_ms: Option<u64>,
    /// Reactor I/O threads serving all connections.
    pub io_threads: usize,
}

impl NodeConfig {
    /// Defaults matching the live-runtime test timings.
    pub fn template(node: NodeId) -> Self {
        NodeConfig {
            node,
            listen: "127.0.0.1:0".into(),
            peers: Vec::new(),
            heartbeat_ms: 50,
            component_timeout_ms: 400,
            peer_timeout_ms: 400,
            fail_safe_ms: 250,
            checkpoint_ms: 100,
            startup_ms: 500,
            status_ms: 200,
            monitor_node: None,
            app_vars: 64,
            app_var_bytes: 64,
            app_dirty_per_tick: 4,
            app_tick_ms: 20,
            seed: 1,
            run_for_ms: None,
            io_threads: 2,
        }
    }

    /// Parses the flat `key = value` format.
    pub fn parse(text: &str) -> Result<NodeConfig, String> {
        let mut config = NodeConfig::template(NodeId(0));
        let mut node_seen = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected key = value", lineno + 1));
            };
            let key = key.trim();
            let value = value.trim().trim_matches('"').trim();
            let bad = |what: &str| format!("line {}: {key}: {what}", lineno + 1);
            let num = || value.parse::<u64>().map_err(|_| bad("not a number"));
            match key {
                "node" => {
                    config.node = NodeId(num()? as u16);
                    node_seen = true;
                }
                "listen" => config.listen = value.to_string(),
                "peer" => {
                    let Some((id, addr)) = value.split_once('@') else {
                        return Err(bad("expected id@host:port"));
                    };
                    let id =
                        id.trim().parse::<u16>().map_err(|_| bad("peer id is not a number"))?;
                    config.peers.push((NodeId(id), addr.trim().to_string()));
                }
                "heartbeat_ms" => config.heartbeat_ms = num()?,
                "component_timeout_ms" => config.component_timeout_ms = num()?,
                "peer_timeout_ms" => config.peer_timeout_ms = num()?,
                "fail_safe_ms" => config.fail_safe_ms = num()?,
                "checkpoint_ms" => config.checkpoint_ms = num()?,
                "startup_ms" => config.startup_ms = num()?,
                "status_ms" => config.status_ms = num()?,
                "monitor_node" => config.monitor_node = Some(NodeId(num()? as u16)),
                "app_vars" => config.app_vars = num()? as usize,
                "app_var_bytes" => config.app_var_bytes = num()? as usize,
                "app_dirty_per_tick" => config.app_dirty_per_tick = num()? as usize,
                "app_tick_ms" => config.app_tick_ms = num()?,
                "seed" => config.seed = num()?,
                "run_for_ms" => config.run_for_ms = Some(num()?),
                "io_threads" => config.io_threads = (num()? as usize).max(1),
                other => return Err(format!("line {}: unknown key {other:?}", lineno + 1)),
            }
        }
        if !node_seen {
            return Err("missing required key: node".into());
        }
        if config.peers.is_empty() {
            return Err("at least one peer = id@host:port is required".into());
        }
        Ok(config)
    }

    /// Reads and parses a config file.
    pub fn load(path: &str) -> Result<NodeConfig, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        NodeConfig::parse(&text)
    }

    /// The toolkit configuration for the hosted OFTT services.
    ///
    /// The pair is this node plus its first peer; `validate()` inside
    /// the toolkit still applies its own timeout consistency checks.
    pub fn to_oftt_config(&self) -> Result<OfttConfig, String> {
        let (peer, _) = *self.peers.first().ok_or("no peer configured")?;
        if peer == self.node {
            return Err("peer id equals this node's id".into());
        }
        let mut config = OfttConfig::new(Pair::new(self.node.min(peer), self.node.max(peer)));
        config.heartbeat_period = SimDuration::from_millis(self.heartbeat_ms);
        config.component_timeout = SimDuration::from_millis(self.component_timeout_ms);
        config.peer_timeout = SimDuration::from_millis(self.peer_timeout_ms);
        config.fail_safe_timeout = SimDuration::from_millis(self.fail_safe_ms);
        config.checkpoint_period = SimDuration::from_millis(self.checkpoint_ms);
        config.startup_timeout = SimDuration::from_millis(self.startup_ms);
        config.status_period = SimDuration::from_millis(self.status_ms);
        config.monitor = self.monitor_node.map(|node| Endpoint::new(node, MONITOR_SERVICE));
        Ok(config)
    }

    /// The socket-layer configuration.
    pub fn to_wire_config(&self) -> WireConfig {
        let mut wire = WireConfig::loopback(self.node);
        wire.listen = self.listen.clone();
        wire.peers = self.peers.clone();
        wire.seed = self.seed;
        wire.io_threads = self.io_threads;
        wire
    }

    /// The synthetic application's shape.
    pub fn to_load_config(&self) -> LoadConfig {
        LoadConfig {
            vars: self.app_vars,
            var_bytes: self.app_var_bytes,
            dirty_per_tick: self.app_dirty_per_tick,
            tick_period: Duration::from_millis(self.app_tick_ms),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_config() {
        let text = r#"
            # node A
            node = 0
            listen = "127.0.0.1:7101"
            peer = "1@127.0.0.1:7102"
            monitor_node = 0
            heartbeat_ms = 50
            checkpoint_ms = 100
            app_vars = 128
            seed = 7
            io_threads = 3
        "#;
        let config = NodeConfig::parse(text).unwrap();
        assert_eq!(config.node, NodeId(0));
        assert_eq!(config.listen, "127.0.0.1:7101");
        assert_eq!(config.peers, vec![(NodeId(1), "127.0.0.1:7102".to_string())]);
        assert_eq!(config.monitor_node, Some(NodeId(0)));
        assert_eq!(config.app_vars, 128);
        assert_eq!(config.seed, 7);
        assert_eq!(config.io_threads, 3);
        assert_eq!(config.to_wire_config().io_threads, 3);
        let oftt = config.to_oftt_config().unwrap();
        assert_eq!(oftt.pair, Pair::new(NodeId(0), NodeId(1)));
        assert_eq!(oftt.monitor, Some(Endpoint::new(NodeId(0), MONITOR_SERVICE)));
    }

    #[test]
    fn rejects_typos_and_incomplete_configs() {
        assert!(NodeConfig::parse("node = 0\npeer = 1@x\nhartbeat_ms = 50")
            .unwrap_err()
            .contains("unknown key"));
        assert!(NodeConfig::parse("listen = x").unwrap_err().contains("node"));
        assert!(NodeConfig::parse("node = 0").unwrap_err().contains("peer"));
        assert!(NodeConfig::parse("node = 0\npeer = oops").unwrap_err().contains("id@host"));
    }
}
