//! The wire frame: an 18-byte header followed by a marshaled envelope
//! meta block and an opaque message body.
//!
//! ```text
//! +------+---------+-------+-----------+----------+----------+
//! | OFTW | version | class | epoch u32 | meta u32 | body u32 |  header
//! +------+---------+-------+-----------+----------+----------+
//! | meta bytes (marshal(FrameMeta))                          |
//! | body bytes (codec-tagged payload)                        |
//! +----------------------------------------------------------+
//! ```
//!
//! All integers are little-endian, matching `comsim::marshal`. The body
//! is written with a vectored loop over borrowed slices, so a checkpoint
//! delta held in [`Bytes`] windows reaches the socket without being
//! copied into a contiguous staging buffer first.

// oftt-lint: no-panic

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::sync::Arc;

use comsim::buf::Bytes;
use comsim::marshal::MarshalError;

use crate::pool::BufPool;

/// Frame magic: `OFTW`.
pub const MAGIC: [u8; 4] = *b"OFTW";
/// Current protocol version.
pub const VERSION: u8 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 18;
/// Hard cap on the marshaled meta block.
pub const MAX_META_BYTES: u32 = 64 * 1024;
/// Default cap on `meta_len + body_len` (checkpoint images dominate).
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Scheduling class of a frame, carried in the header so backpressure can
/// shed the right traffic without decoding bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameClass {
    /// Application/protocol data; queued and retried while connected.
    Data = 0,
    /// Periodic liveness traffic; first to be shed under backpressure and
    /// never queued across a disconnect (a late heartbeat is a lie).
    Heartbeat = 1,
    /// Connection-establishment exchange; never queued.
    Handshake = 2,
}

impl FrameClass {
    fn from_byte(b: u8) -> Option<FrameClass> {
        match b {
            0 => Some(FrameClass::Data),
            1 => Some(FrameClass::Heartbeat),
            2 => Some(FrameClass::Handshake),
            _ => None,
        }
    }
}

/// Protocol-level (non-IO) wire failures.
#[derive(Debug)]
pub enum WireError {
    /// The stream did not start with [`MAGIC`] — peer desync or garbage.
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown frame class byte.
    BadClass(u8),
    /// Header advertises a frame larger than the configured cap.
    FrameTooLarge {
        /// Advertised meta + body length.
        len: u64,
        /// The receiver's cap.
        max: u32,
    },
    /// Header advertises a meta block over [`MAX_META_BYTES`].
    MetaTooLarge(u32),
    /// Meta or body failed to unmarshal.
    Marshal(MarshalError),
    /// The body's codec tag is not registered.
    UnknownTag(u32),
    /// A checkpoint body's declared variable windows do not tile its
    /// payload bytes.
    BodyMismatch {
        /// Bytes the skeleton claims.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The connection handshake was malformed.
    Handshake(String),
}

impl From<MarshalError> for WireError {
    fn from(e: MarshalError) -> Self {
        WireError::Marshal(e)
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadClass(c) => write!(f, "unknown frame class {c}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds cap {max}")
            }
            WireError::MetaTooLarge(len) => write!(f, "meta block of {len} bytes exceeds cap"),
            WireError::Marshal(e) => write!(f, "unmarshal failed: {e}"),
            WireError::UnknownTag(t) => write!(f, "unregistered body tag {t}"),
            WireError::BodyMismatch { expected, actual } => {
                write!(f, "checkpoint body claims {expected} bytes, carries {actual}")
            }
            WireError::Handshake(why) => write!(f, "handshake rejected: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A frame-read failure: either the socket broke or the peer sent
/// something unframeable. The supervisor treats both as fatal for the
/// connection (a desynced length-prefixed stream cannot be resynced), but
/// the distinction drives what gets traced.
#[derive(Debug)]
pub enum ReadError {
    /// Socket-level failure (closed, reset, timeout).
    Io(io::Error),
    /// Framing-level failure.
    Protocol(WireError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "io: {e}"),
            ReadError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

/// Decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Scheduling class.
    pub class: FrameClass,
    /// Sender's connection epoch at write time.
    pub epoch: u32,
    /// Marshaled meta length.
    pub meta_len: u32,
    /// Body length.
    pub body_len: u32,
}

/// Reads the byte at `at`, or 0 past the end. The header layout only
/// ever asks for offsets below [`HEADER_LEN`], so the fallback is dead
/// code — it exists so the accessor cannot panic.
fn byte_at(raw: &[u8; HEADER_LEN], at: usize) -> u8 {
    raw.get(at).copied().unwrap_or(0)
}

/// Reads the little-endian u32 at `at` without indexing into `raw`.
fn word_at(raw: &[u8; HEADER_LEN], at: usize) -> u32 {
    let mut word = [0u8; 4];
    for (i, slot) in word.iter_mut().enumerate() {
        *slot = byte_at(raw, at + i);
    }
    u32::from_le_bytes(word)
}

impl FrameHeader {
    /// Encodes the header into its fixed wire form.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        let bytes = MAGIC
            .into_iter()
            .chain([VERSION, self.class as u8])
            .chain(self.epoch.to_le_bytes())
            .chain(self.meta_len.to_le_bytes())
            .chain(self.body_len.to_le_bytes());
        for (slot, byte) in out.iter_mut().zip(bytes) {
            *slot = byte;
        }
        out
    }

    /// Decodes and validates a header against `max_frame`.
    pub fn decode(raw: &[u8; HEADER_LEN], max_frame: u32) -> Result<FrameHeader, WireError> {
        let mut magic = [0u8; 4];
        for (slot, byte) in magic.iter_mut().zip(raw.iter()) {
            *slot = *byte;
        }
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = byte_at(raw, 4);
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let class_byte = byte_at(raw, 5);
        let class = FrameClass::from_byte(class_byte).ok_or(WireError::BadClass(class_byte))?;
        let epoch = word_at(raw, 6);
        let meta_len = word_at(raw, 10);
        let body_len = word_at(raw, 14);
        if meta_len > MAX_META_BYTES {
            return Err(WireError::MetaTooLarge(meta_len));
        }
        let total = meta_len as u64 + body_len as u64;
        if total > max_frame as u64 {
            return Err(WireError::FrameTooLarge { len: total, max: max_frame });
        }
        Ok(FrameHeader { class, epoch, meta_len, body_len })
    }
}

/// A received frame. `meta` and `body` are zero-copy windows of one
/// receive allocation.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The validated header.
    pub header: FrameHeader,
    /// Marshaled [`crate::codec::FrameMeta`].
    pub meta: Bytes,
    /// Codec-tagged payload.
    pub body: Bytes,
}

/// Blocking-reads one frame. Any failure poisons the stream: a
/// length-prefixed protocol has no resync point, so the caller must drop
/// the connection on `Err` (it never panics — malformed input is an
/// ordinary error here).
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Frame, ReadError> {
    let mut raw = [0u8; HEADER_LEN];
    r.read_exact(&mut raw).map_err(ReadError::Io)?;
    let header = FrameHeader::decode(&raw, max_frame).map_err(ReadError::Protocol)?;
    let mut payload = vec![0u8; header.meta_len as usize + header.body_len as usize];
    r.read_exact(&mut payload).map_err(ReadError::Io)?;
    let payload = Bytes::from(payload);
    let (meta, body) = split_payload(&payload, header.meta_len)?;
    Ok(Frame { header, meta, body })
}

/// Splits a frame payload into its meta and body windows without any
/// panic path: the windows are in bounds by construction (the payload
/// buffer is allocated from the same header fields), but this module's
/// `no-panic` contract must not rest on that invariant holding in a
/// different crate.
fn split_payload(payload: &Bytes, meta_len: u32) -> Result<(Bytes, Bytes), ReadError> {
    let meta_len = meta_len as usize;
    payload.try_slice(..meta_len).zip(payload.try_slice(meta_len..)).ok_or(ReadError::Protocol(
        WireError::BodyMismatch { expected: meta_len as u64, actual: payload.len() as u64 },
    ))
}

/// Writes one frame with a manual vectored loop (std's
/// `write_all_vectored` is unstable): header, meta, `head`, then each
/// shared [`Bytes`] window in order. Shared windows are borrowed, not
/// copied — this is the zero-copy half of the checkpoint data path.
/// Returns the total bytes written.
pub fn write_frame(
    w: &mut impl Write,
    class: FrameClass,
    epoch: u32,
    meta: &[u8],
    head: &[u8],
    shared: &[Bytes],
) -> io::Result<u64> {
    let body_len = head.len() as u64 + shared.iter().map(|b| b.len() as u64).sum::<u64>();
    let header = FrameHeader {
        class,
        epoch,
        meta_len: meta.len() as u32,
        body_len: u32::try_from(body_len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame body over 4GiB"))?,
    }
    .encode();

    let mut slices: Vec<&[u8]> = Vec::with_capacity(3 + shared.len());
    slices.push(&header);
    slices.push(meta);
    slices.push(head);
    for b in shared {
        slices.push(b.as_slice());
    }
    slices.retain(|s| !s.is_empty());

    let total: u64 = slices.iter().map(|s| s.len() as u64).sum();
    let mut written = 0u64;
    while written < total {
        // Re-window the slice list past what's already on the wire.
        let mut skip = written;
        let mut iov = Vec::with_capacity(slices.len());
        for s in &slices {
            let len = s.len() as u64;
            if skip >= len {
                skip -= len;
                continue;
            }
            // `skip < len` here, so the window is always `Some`; `get`
            // keeps the hot path free of indexing that could panic.
            iov.push(IoSlice::new(s.get(skip as usize..).unwrap_or(&[])));
            skip = 0;
        }
        let n = w.write_vectored(&iov)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::WriteZero, "socket accepted 0 bytes"));
        }
        written += n as u64;
    }
    Ok(total)
}

/// One read-step outcome from a [`FrameAssembler`].
#[derive(Debug)]
pub enum ReadStep {
    /// A complete frame was assembled.
    Frame(Frame),
    /// The socket has no more bytes right now (`WouldBlock`); poll again
    /// on readability.
    NeedMore,
    /// The peer closed the stream cleanly on a frame boundary.
    Closed,
}

enum AsmState {
    Header { raw: [u8; HEADER_LEN], have: usize },
    Payload { header: FrameHeader, buf: Vec<u8>, have: usize },
}

/// Incremental frame parser for nonblocking sockets.
///
/// [`read_frame`] assumes a blocking stream and two `read_exact`s; a
/// reactor cannot block, and a readiness notification may deliver half a
/// header or a megabyte mid-body. The assembler carries the partial
/// state across calls: feed it the socket whenever it is readable and it
/// emits complete frames, [`ReadStep::NeedMore`] on `WouldBlock`, or
/// [`ReadStep::Closed`] on a clean EOF. Mid-frame EOF and framing errors
/// are real errors — a desynced length-prefixed stream has no resync
/// point, exactly as in the blocking path.
///
/// The payload staging buffer is drawn from the shared [`BufPool`] when
/// a header completes and returned when the frame is emitted, so the
/// steady-state read path performs no heap allocation beyond the single
/// shared-`Bytes` copy that makes every later hop zero-copy.
pub struct FrameAssembler {
    max_frame: u32,
    pool: Arc<BufPool>,
    state: AsmState,
}

impl FrameAssembler {
    /// An assembler enforcing `max_frame` as the meta+body cap, staging
    /// payload bytes through `pool`.
    pub fn new(max_frame: u32, pool: Arc<BufPool>) -> Self {
        FrameAssembler {
            max_frame,
            pool,
            state: AsmState::Header { raw: [0; HEADER_LEN], have: 0 },
        }
    }

    /// Advances the state machine with at most a few `read` calls,
    /// returning as soon as one frame is complete (call again — more may
    /// be buffered), the socket runs dry, or the stream ends.
    pub fn read_step(&mut self, r: &mut impl Read) -> Result<ReadStep, ReadError> {
        loop {
            match &mut self.state {
                AsmState::Header { raw, have } => {
                    if *have < HEADER_LEN {
                        let at_boundary = *have == 0;
                        let Some(dst) = raw.get_mut(*have..) else {
                            return Ok(ReadStep::NeedMore); // unreachable: have < HEADER_LEN
                        };
                        match r.read(dst) {
                            Ok(0) => {
                                return if at_boundary {
                                    Ok(ReadStep::Closed)
                                } else {
                                    Err(ReadError::Io(io::Error::new(
                                        io::ErrorKind::UnexpectedEof,
                                        "eof inside a frame header",
                                    )))
                                };
                            }
                            Ok(n) => {
                                *have += n;
                                continue;
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                return Ok(ReadStep::NeedMore);
                            }
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(e) => return Err(ReadError::Io(e)),
                        }
                    }
                    let header =
                        FrameHeader::decode(raw, self.max_frame).map_err(ReadError::Protocol)?;
                    let total = header.meta_len as usize + header.body_len as usize;
                    let mut buf = self.pool.take(total);
                    buf.resize(total, 0);
                    self.state = AsmState::Payload { header, buf, have: 0 };
                }
                AsmState::Payload { header, buf, have } => {
                    if *have < buf.len() {
                        let Some(dst) = buf.get_mut(*have..) else {
                            return Ok(ReadStep::NeedMore); // unreachable: have < len
                        };
                        match r.read(dst) {
                            Ok(0) => {
                                return Err(ReadError::Io(io::Error::new(
                                    io::ErrorKind::UnexpectedEof,
                                    "eof inside a frame body",
                                )));
                            }
                            Ok(n) => {
                                *have += n;
                                continue;
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                return Ok(ReadStep::NeedMore);
                            }
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(e) => return Err(ReadError::Io(e)),
                        }
                    }
                    let header = *header;
                    let staging = std::mem::take(buf);
                    self.state = AsmState::Header { raw: [0; HEADER_LEN], have: 0 };
                    // The one accepted copy per frame: wire bytes move
                    // into a shared `Bytes` so every later hop is
                    // zero-copy, and the staging buffer goes back to
                    // the pool instead of the allocator.
                    let payload = Bytes::copy_from_slice(&staging);
                    self.pool.give(staging);
                    let (meta, body) = split_payload(&payload, header.meta_len)?;
                    return Ok(ReadStep::Frame(Frame { header, meta, body }));
                }
            }
        }
    }
}

/// An encoded frame queued for a coalesced write: everything except the
/// header, which is stamped with the connection's epoch when the frame
/// joins a [`FrameBatch`] (frames queued across a reconnect must carry
/// the *new* connection's epoch).
#[derive(Debug)]
pub struct OutFrame {
    /// Scheduling class.
    pub class: FrameClass,
    /// Marshaled meta block.
    pub meta: Vec<u8>,
    /// Contiguous body prefix.
    pub head: Vec<u8>,
    /// Zero-copy body suffix windows.
    pub shared: Vec<Bytes>,
}

impl OutFrame {
    /// Total bytes this frame occupies on the wire, header included.
    pub fn wire_len(&self) -> u64 {
        HEADER_LEN as u64
            + self.meta.len() as u64
            + self.head.len() as u64
            + self.shared.iter().map(|b| b.len() as u64).sum::<u64>()
    }
}

struct BatchEntry {
    header: [u8; HEADER_LEN],
    frame: OutFrame,
    len: u64,
}

/// Hard cap on iovec segments per `write_vectored` call (Linux allows
/// 1024; staying far below keeps the per-call stack cost small).
const MAX_IOV: usize = 64;

/// Coalesces queued frames into vectored mega-writes with partial-write
/// resumption.
///
/// The reactor pushes any number of encoded frames, then calls
/// [`FrameBatch::write_once`] whenever the socket is writable: one
/// `write_vectored` spans as many queued frames as fit in [`MAX_IOV`]
/// segments, and a short write — even one that splits a header — is
/// resumed exactly where it stopped on the next call. Fully written
/// frames are handed back through [`FrameBatch::pop_written`] so their
/// buffers can return to the pool.
#[derive(Default)]
pub struct FrameBatch {
    entries: VecDeque<BatchEntry>,
    /// Bytes of the front entry already written.
    offset: u64,
}

impl FrameBatch {
    /// An empty batch.
    pub fn new() -> Self {
        FrameBatch::default()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Frames currently queued (including the partially written front).
    pub fn frames(&self) -> usize {
        self.entries.len()
    }

    /// Bytes not yet on the wire.
    pub fn pending_bytes(&self) -> u64 {
        let total: u64 = self.entries.iter().map(|e| e.len).sum();
        total.saturating_sub(self.offset)
    }

    /// Stamps `frame` with `epoch` and queues it.
    ///
    /// # Errors
    ///
    /// Rejects bodies over 4 GiB (the header's length field is `u32`).
    pub fn push(&mut self, frame: OutFrame, epoch: u32) -> Result<(), WireError> {
        let body_len =
            frame.head.len() as u64 + frame.shared.iter().map(|b| b.len() as u64).sum::<u64>();
        let body_len = u32::try_from(body_len)
            .map_err(|_| WireError::FrameTooLarge { len: body_len, max: u32::MAX })?;
        let header =
            FrameHeader { class: frame.class, epoch, meta_len: frame.meta.len() as u32, body_len };
        let len = HEADER_LEN as u64 + header.meta_len as u64 + body_len as u64;
        self.entries.push_back(BatchEntry { header: header.encode(), frame, len });
        Ok(())
    }

    /// Issues one `write_vectored` spanning the unwritten tail, starting
    /// mid-frame if the previous call stopped there. Returns the bytes
    /// accepted (0 only for an empty batch). `WouldBlock` propagates as
    /// an error for the caller to interpret; a 0-byte write on a
    /// non-empty batch is reported as `WriteZero`.
    pub fn write_once(&mut self, w: &mut impl Write) -> io::Result<u64> {
        // The scratch is a fixed stack array — MAX_IOV is small enough
        // that this costs ~1 KiB of stack and keeps the write path off
        // the allocator entirely.
        let mut iov = [IoSlice::new(&[]); MAX_IOV];
        let mut used = 0usize;
        let mut skip = self.offset;
        'fill: for entry in &self.entries {
            let segments =
                [entry.header.as_slice(), entry.frame.meta.as_slice(), entry.frame.head.as_slice()];
            let shared = entry.frame.shared.iter().map(|b| b.as_slice());
            for seg in segments.into_iter().chain(shared) {
                let len = seg.len() as u64;
                if skip >= len {
                    skip -= len;
                    continue;
                }
                let Some(slot) = iov.get_mut(used) else {
                    break 'fill; // used == MAX_IOV
                };
                // `skip < len`, so the window is nonempty; `get` keeps
                // the path panic-free.
                *slot = IoSlice::new(seg.get(skip as usize..).unwrap_or(&[]));
                used += 1;
                skip = 0;
            }
        }
        if used == 0 {
            return Ok(0);
        }
        let n = w.write_vectored(iov.get(..used).unwrap_or(&[]))?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::WriteZero, "socket accepted 0 bytes"));
        }
        self.offset += n as u64;
        Ok(n as u64)
    }

    /// Pops the next fully written frame, if any, so its buffers can be
    /// recycled. Call repeatedly after [`FrameBatch::write_once`].
    pub fn pop_written(&mut self) -> Option<OutFrame> {
        let front_len = self.entries.front().map(|e| e.len)?;
        if self.offset < front_len {
            return None;
        }
        self.offset -= front_len;
        self.entries.pop_front().map(|e| e.frame)
    }

    /// Drains every queued frame (written or not) — used on teardown so
    /// the caller can count and recycle them.
    pub fn purge(&mut self) -> Vec<OutFrame> {
        self.offset = 0;
        self.entries.drain(..).map(|e| e.frame).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let h = FrameHeader { class: FrameClass::Data, epoch: 7, meta_len: 40, body_len: 1000 };
        let back = FrameHeader::decode(&h.encode(), DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn frame_round_trips_through_a_pipe() {
        let meta = vec![1u8, 2, 3];
        let head = vec![9u8];
        let shared = vec![Bytes::from(vec![4u8; 10]), Bytes::from(vec![5u8; 5])];
        let mut wire = Vec::new();
        let n = write_frame(&mut wire, FrameClass::Heartbeat, 3, &meta, &head, &shared).unwrap();
        assert_eq!(n, wire.len() as u64);
        let frame = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(frame.header.class, FrameClass::Heartbeat);
        assert_eq!(frame.header.epoch, 3);
        assert_eq!(frame.meta.as_slice(), &meta[..]);
        let mut body = head.clone();
        body.extend_from_slice(&[4u8; 10]);
        body.extend_from_slice(&[5u8; 5]);
        assert_eq!(frame.body.as_slice(), &body[..]);
    }

    #[test]
    fn oversized_and_garbage_headers_are_rejected_not_panicked() {
        let mut h =
            FrameHeader { class: FrameClass::Data, epoch: 0, meta_len: 0, body_len: u32::MAX }
                .encode();
        assert!(matches!(FrameHeader::decode(&h, 1024), Err(WireError::FrameTooLarge { .. })));
        h[0] = b'X';
        assert!(matches!(FrameHeader::decode(&h, 1024), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameClass::Data, 0, &[1, 2], &[3, 4, 5], &[]).unwrap();
        wire.truncate(wire.len() - 2);
        let err = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME_BYTES).unwrap_err();
        assert!(matches!(err, ReadError::Io(_)));
    }

    /// Yields at most `chunk` bytes per read and interleaves WouldBlock
    /// between reads, like a socket drip-feeding under load.
    struct DribbleReader {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        starve_next: bool,
    }

    impl Read for DribbleReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.starve_next {
                self.starve_next = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "dry"));
            }
            self.starve_next = true;
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn sample_wire(frames: &[(FrameClass, u32, Vec<u8>, Vec<u8>)]) -> Vec<u8> {
        let mut wire = Vec::new();
        for (class, epoch, meta, body) in frames {
            write_frame(&mut wire, *class, *epoch, meta, body, &[]).unwrap();
        }
        wire
    }

    #[test]
    fn assembler_reassembles_dribbled_bytes() {
        let spec = vec![
            (FrameClass::Handshake, 1, vec![7u8; 30], vec![]),
            (FrameClass::Data, 2, vec![1u8, 2], vec![9u8; 300]),
            (FrameClass::Heartbeat, 2, vec![], vec![5u8]),
        ];
        for chunk in [1usize, 3, 17, 4096] {
            let mut r =
                DribbleReader { data: sample_wire(&spec), pos: 0, chunk, starve_next: false };
            let mut asm = FrameAssembler::new(DEFAULT_MAX_FRAME_BYTES, Arc::new(BufPool::new()));
            let mut got = Vec::new();
            loop {
                match asm.read_step(&mut r).unwrap() {
                    ReadStep::Frame(f) => got.push(f),
                    ReadStep::NeedMore => continue,
                    ReadStep::Closed => break,
                }
            }
            assert_eq!(got.len(), spec.len(), "chunk={chunk}");
            for (frame, (class, epoch, meta, body)) in got.iter().zip(&spec) {
                assert_eq!(frame.header.class, *class);
                assert_eq!(frame.header.epoch, *epoch);
                assert_eq!(frame.meta.as_slice(), &meta[..]);
                assert_eq!(frame.body.as_slice(), &body[..]);
            }
        }
    }

    #[test]
    fn assembler_recycles_staging_buffers_through_the_pool() {
        let spec = vec![
            (FrameClass::Data, 1, vec![1u8, 2], vec![9u8; 300]),
            (FrameClass::Data, 2, vec![3u8], vec![8u8; 280]),
            (FrameClass::Data, 3, vec![4u8], vec![7u8; 310]),
        ];
        let pool = Arc::new(BufPool::new());
        let mut r = io::Cursor::new(sample_wire(&spec));
        let mut asm = FrameAssembler::new(DEFAULT_MAX_FRAME_BYTES, Arc::clone(&pool));
        let mut frames = 0;
        loop {
            match asm.read_step(&mut r).unwrap() {
                ReadStep::Frame(_) => frames += 1,
                ReadStep::NeedMore => continue,
                ReadStep::Closed => break,
            }
        }
        assert_eq!(frames, spec.len());
        let stats = pool.stats();
        // One take+give per frame; every take after the first is served
        // from the shelf the previous frame's buffer went back to.
        assert_eq!(stats.takes, spec.len() as u64);
        assert_eq!(stats.gives, spec.len() as u64);
        assert_eq!(stats.hits, spec.len() as u64 - 1);
    }

    #[test]
    fn assembler_mid_frame_eof_is_an_error_and_boundary_eof_is_closed() {
        let wire = sample_wire(&[(FrameClass::Data, 1, vec![1], vec![2, 3])]);
        // Boundary EOF after a complete frame → Closed.
        let mut r = io::Cursor::new(wire.clone());
        let mut asm = FrameAssembler::new(DEFAULT_MAX_FRAME_BYTES, Arc::new(BufPool::new()));
        assert!(matches!(asm.read_step(&mut r).unwrap(), ReadStep::Frame(_)));
        assert!(matches!(asm.read_step(&mut r).unwrap(), ReadStep::Closed));
        // EOF mid-header and mid-body → UnexpectedEof.
        for cut in [5usize, wire.len() - 1] {
            let mut r = io::Cursor::new(wire[..cut].to_vec());
            let mut asm = FrameAssembler::new(DEFAULT_MAX_FRAME_BYTES, Arc::new(BufPool::new()));
            let err = asm.read_step(&mut r).unwrap_err();
            assert!(
                matches!(err, ReadError::Io(ref e) if e.kind() == io::ErrorKind::UnexpectedEof)
            );
        }
    }

    fn out_frame(class: FrameClass, meta: Vec<u8>, head: Vec<u8>, shared: Vec<Bytes>) -> OutFrame {
        OutFrame { class, meta, head, shared }
    }

    /// Accepts at most `per_call` bytes per write, so every frame (and
    /// most headers) is split across many calls.
    struct ThrottledWriter {
        out: Vec<u8>,
        per_call: usize,
    }

    impl Write for ThrottledWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = self.per_call.min(buf.len());
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn batch_resumes_partial_writes_split_mid_frame() {
        for per_call in [1usize, 3, 7] {
            let mut batch = FrameBatch::new();
            batch
                .push(
                    out_frame(
                        FrameClass::Data,
                        vec![1, 2, 3],
                        vec![4; 40],
                        vec![Bytes::from(vec![5u8; 100]), Bytes::from(vec![6u8; 9])],
                    ),
                    11,
                )
                .unwrap();
            batch.push(out_frame(FrameClass::Heartbeat, vec![7], vec![], vec![]), 11).unwrap();
            batch
                .push(
                    out_frame(
                        FrameClass::Data,
                        vec![],
                        vec![8; 5],
                        vec![Bytes::from(vec![9u8; 64])],
                    ),
                    12,
                )
                .unwrap();
            let expect_bytes = batch.pending_bytes();
            let mut w = ThrottledWriter { out: Vec::new(), per_call };
            let mut recycled = 0usize;
            while !batch.is_empty() {
                let n = batch.write_once(&mut w).unwrap();
                assert!(n > 0 && n <= per_call as u64);
                while batch.pop_written().is_some() {
                    recycled += 1;
                }
            }
            assert_eq!(recycled, 3);
            assert_eq!(w.out.len() as u64, expect_bytes, "per_call={per_call}");
            // The byte stream re-parses into exactly the pushed frames.
            let mut r = w.out.as_slice();
            let f1 = read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES).unwrap();
            assert_eq!(f1.header.epoch, 11);
            assert_eq!(f1.meta.as_slice(), &[1, 2, 3]);
            assert_eq!(f1.body.len(), 40 + 100 + 9);
            let f2 = read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES).unwrap();
            assert_eq!(f2.header.class, FrameClass::Heartbeat);
            let f3 = read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES).unwrap();
            assert_eq!(f3.header.epoch, 12);
            assert_eq!(f3.body.len(), 5 + 64);
            assert!(r.is_empty());
        }
    }

    /// Counts write calls while accepting everything offered.
    struct CountingWriter {
        out: Vec<u8>,
        calls: usize,
    }

    impl Write for CountingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.calls += 1;
            self.out.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            self.calls += 1;
            let mut n = 0;
            for b in bufs {
                self.out.extend_from_slice(b);
                n += b.len();
            }
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn batch_coalesces_many_frames_into_one_vectored_write() {
        let mut batch = FrameBatch::new();
        for i in 0..10u8 {
            batch.push(out_frame(FrameClass::Data, vec![i], vec![i; 8], vec![]), 1).unwrap();
        }
        let mut w = CountingWriter { out: Vec::new(), calls: 0 };
        while !batch.is_empty() {
            batch.write_once(&mut w).unwrap();
            while batch.pop_written().is_some() {}
        }
        assert_eq!(w.calls, 1, "10 frames should leave in one mega-write");
        let mut r = w.out.as_slice();
        for i in 0..10u8 {
            let f = read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES).unwrap();
            assert_eq!(f.meta.as_slice(), &[i]);
        }
    }

    #[test]
    fn batch_purge_returns_everything_and_resets() {
        let mut batch = FrameBatch::new();
        batch.push(out_frame(FrameClass::Data, vec![1], vec![2], vec![]), 1).unwrap();
        batch.push(out_frame(FrameClass::Heartbeat, vec![], vec![], vec![]), 1).unwrap();
        let mut w = ThrottledWriter { out: Vec::new(), per_call: 4 };
        batch.write_once(&mut w).unwrap();
        let purged = batch.purge();
        assert_eq!(purged.len(), 2);
        assert!(batch.is_empty());
        assert_eq!(batch.pending_bytes(), 0);
    }
}
