//! The wire frame: an 18-byte header followed by a marshaled envelope
//! meta block and an opaque message body.
//!
//! ```text
//! +------+---------+-------+-----------+----------+----------+
//! | OFTW | version | class | epoch u32 | meta u32 | body u32 |  header
//! +------+---------+-------+-----------+----------+----------+
//! | meta bytes (marshal(FrameMeta))                          |
//! | body bytes (codec-tagged payload)                        |
//! +----------------------------------------------------------+
//! ```
//!
//! All integers are little-endian, matching `comsim::marshal`. The body
//! is written with a vectored loop over borrowed slices, so a checkpoint
//! delta held in [`Bytes`] windows reaches the socket without being
//! copied into a contiguous staging buffer first.

// oftt-lint: no-panic

use std::io::{self, IoSlice, Read, Write};

use comsim::buf::Bytes;
use comsim::marshal::MarshalError;

/// Frame magic: `OFTW`.
pub const MAGIC: [u8; 4] = *b"OFTW";
/// Current protocol version.
pub const VERSION: u8 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 18;
/// Hard cap on the marshaled meta block.
pub const MAX_META_BYTES: u32 = 64 * 1024;
/// Default cap on `meta_len + body_len` (checkpoint images dominate).
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Scheduling class of a frame, carried in the header so backpressure can
/// shed the right traffic without decoding bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameClass {
    /// Application/protocol data; queued and retried while connected.
    Data = 0,
    /// Periodic liveness traffic; first to be shed under backpressure and
    /// never queued across a disconnect (a late heartbeat is a lie).
    Heartbeat = 1,
    /// Connection-establishment exchange; never queued.
    Handshake = 2,
}

impl FrameClass {
    fn from_byte(b: u8) -> Option<FrameClass> {
        match b {
            0 => Some(FrameClass::Data),
            1 => Some(FrameClass::Heartbeat),
            2 => Some(FrameClass::Handshake),
            _ => None,
        }
    }
}

/// Protocol-level (non-IO) wire failures.
#[derive(Debug)]
pub enum WireError {
    /// The stream did not start with [`MAGIC`] — peer desync or garbage.
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown frame class byte.
    BadClass(u8),
    /// Header advertises a frame larger than the configured cap.
    FrameTooLarge {
        /// Advertised meta + body length.
        len: u64,
        /// The receiver's cap.
        max: u32,
    },
    /// Header advertises a meta block over [`MAX_META_BYTES`].
    MetaTooLarge(u32),
    /// Meta or body failed to unmarshal.
    Marshal(MarshalError),
    /// The body's codec tag is not registered.
    UnknownTag(u32),
    /// A checkpoint body's declared variable windows do not tile its
    /// payload bytes.
    BodyMismatch {
        /// Bytes the skeleton claims.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The connection handshake was malformed.
    Handshake(String),
}

impl From<MarshalError> for WireError {
    fn from(e: MarshalError) -> Self {
        WireError::Marshal(e)
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadClass(c) => write!(f, "unknown frame class {c}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds cap {max}")
            }
            WireError::MetaTooLarge(len) => write!(f, "meta block of {len} bytes exceeds cap"),
            WireError::Marshal(e) => write!(f, "unmarshal failed: {e}"),
            WireError::UnknownTag(t) => write!(f, "unregistered body tag {t}"),
            WireError::BodyMismatch { expected, actual } => {
                write!(f, "checkpoint body claims {expected} bytes, carries {actual}")
            }
            WireError::Handshake(why) => write!(f, "handshake rejected: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A frame-read failure: either the socket broke or the peer sent
/// something unframeable. The supervisor treats both as fatal for the
/// connection (a desynced length-prefixed stream cannot be resynced), but
/// the distinction drives what gets traced.
#[derive(Debug)]
pub enum ReadError {
    /// Socket-level failure (closed, reset, timeout).
    Io(io::Error),
    /// Framing-level failure.
    Protocol(WireError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "io: {e}"),
            ReadError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

/// Decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Scheduling class.
    pub class: FrameClass,
    /// Sender's connection epoch at write time.
    pub epoch: u32,
    /// Marshaled meta length.
    pub meta_len: u32,
    /// Body length.
    pub body_len: u32,
}

/// Reads the byte at `at`, or 0 past the end. The header layout only
/// ever asks for offsets below [`HEADER_LEN`], so the fallback is dead
/// code — it exists so the accessor cannot panic.
fn byte_at(raw: &[u8; HEADER_LEN], at: usize) -> u8 {
    raw.get(at).copied().unwrap_or(0)
}

/// Reads the little-endian u32 at `at` without indexing into `raw`.
fn word_at(raw: &[u8; HEADER_LEN], at: usize) -> u32 {
    let mut word = [0u8; 4];
    for (i, slot) in word.iter_mut().enumerate() {
        *slot = byte_at(raw, at + i);
    }
    u32::from_le_bytes(word)
}

impl FrameHeader {
    /// Encodes the header into its fixed wire form.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        let bytes = MAGIC
            .into_iter()
            .chain([VERSION, self.class as u8])
            .chain(self.epoch.to_le_bytes())
            .chain(self.meta_len.to_le_bytes())
            .chain(self.body_len.to_le_bytes());
        for (slot, byte) in out.iter_mut().zip(bytes) {
            *slot = byte;
        }
        out
    }

    /// Decodes and validates a header against `max_frame`.
    pub fn decode(raw: &[u8; HEADER_LEN], max_frame: u32) -> Result<FrameHeader, WireError> {
        let mut magic = [0u8; 4];
        for (slot, byte) in magic.iter_mut().zip(raw.iter()) {
            *slot = *byte;
        }
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = byte_at(raw, 4);
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let class_byte = byte_at(raw, 5);
        let class = FrameClass::from_byte(class_byte).ok_or(WireError::BadClass(class_byte))?;
        let epoch = word_at(raw, 6);
        let meta_len = word_at(raw, 10);
        let body_len = word_at(raw, 14);
        if meta_len > MAX_META_BYTES {
            return Err(WireError::MetaTooLarge(meta_len));
        }
        let total = meta_len as u64 + body_len as u64;
        if total > max_frame as u64 {
            return Err(WireError::FrameTooLarge { len: total, max: max_frame });
        }
        Ok(FrameHeader { class, epoch, meta_len, body_len })
    }
}

/// A received frame. `meta` and `body` are zero-copy windows of one
/// receive allocation.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The validated header.
    pub header: FrameHeader,
    /// Marshaled [`crate::codec::FrameMeta`].
    pub meta: Bytes,
    /// Codec-tagged payload.
    pub body: Bytes,
}

/// Blocking-reads one frame. Any failure poisons the stream: a
/// length-prefixed protocol has no resync point, so the caller must drop
/// the connection on `Err` (it never panics — malformed input is an
/// ordinary error here).
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Frame, ReadError> {
    let mut raw = [0u8; HEADER_LEN];
    r.read_exact(&mut raw).map_err(ReadError::Io)?;
    let header = FrameHeader::decode(&raw, max_frame).map_err(ReadError::Protocol)?;
    let mut payload = vec![0u8; header.meta_len as usize + header.body_len as usize];
    r.read_exact(&mut payload).map_err(ReadError::Io)?;
    let payload = Bytes::from(payload);
    let meta = payload.slice(..header.meta_len as usize);
    let body = payload.slice(header.meta_len as usize..);
    Ok(Frame { header, meta, body })
}

/// Writes one frame with a manual vectored loop (std's
/// `write_all_vectored` is unstable): header, meta, `head`, then each
/// shared [`Bytes`] window in order. Shared windows are borrowed, not
/// copied — this is the zero-copy half of the checkpoint data path.
/// Returns the total bytes written.
pub fn write_frame(
    w: &mut impl Write,
    class: FrameClass,
    epoch: u32,
    meta: &[u8],
    head: &[u8],
    shared: &[Bytes],
) -> io::Result<u64> {
    let body_len = head.len() as u64 + shared.iter().map(|b| b.len() as u64).sum::<u64>();
    let header = FrameHeader {
        class,
        epoch,
        meta_len: meta.len() as u32,
        body_len: u32::try_from(body_len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame body over 4GiB"))?,
    }
    .encode();

    let mut slices: Vec<&[u8]> = Vec::with_capacity(3 + shared.len());
    slices.push(&header);
    slices.push(meta);
    slices.push(head);
    for b in shared {
        slices.push(b.as_slice());
    }
    slices.retain(|s| !s.is_empty());

    let total: u64 = slices.iter().map(|s| s.len() as u64).sum();
    let mut written = 0u64;
    while written < total {
        // Re-window the slice list past what's already on the wire.
        let mut skip = written;
        let mut iov = Vec::with_capacity(slices.len());
        for s in &slices {
            let len = s.len() as u64;
            if skip >= len {
                skip -= len;
                continue;
            }
            // `skip < len` here, so the window is always `Some`; `get`
            // keeps the hot path free of indexing that could panic.
            iov.push(IoSlice::new(s.get(skip as usize..).unwrap_or(&[])));
            skip = 0;
        }
        let n = w.write_vectored(&iov)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::WriteZero, "socket accepted 0 bytes"));
        }
        written += n as u64;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let h = FrameHeader { class: FrameClass::Data, epoch: 7, meta_len: 40, body_len: 1000 };
        let back = FrameHeader::decode(&h.encode(), DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn frame_round_trips_through_a_pipe() {
        let meta = vec![1u8, 2, 3];
        let head = vec![9u8];
        let shared = vec![Bytes::from(vec![4u8; 10]), Bytes::from(vec![5u8; 5])];
        let mut wire = Vec::new();
        let n = write_frame(&mut wire, FrameClass::Heartbeat, 3, &meta, &head, &shared).unwrap();
        assert_eq!(n, wire.len() as u64);
        let frame = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(frame.header.class, FrameClass::Heartbeat);
        assert_eq!(frame.header.epoch, 3);
        assert_eq!(frame.meta.as_slice(), &meta[..]);
        let mut body = head.clone();
        body.extend_from_slice(&[4u8; 10]);
        body.extend_from_slice(&[5u8; 5]);
        assert_eq!(frame.body.as_slice(), &body[..]);
    }

    #[test]
    fn oversized_and_garbage_headers_are_rejected_not_panicked() {
        let mut h =
            FrameHeader { class: FrameClass::Data, epoch: 0, meta_len: 0, body_len: u32::MAX }
                .encode();
        assert!(matches!(FrameHeader::decode(&h, 1024), Err(WireError::FrameTooLarge { .. })));
        h[0] = b'X';
        assert!(matches!(FrameHeader::decode(&h, 1024), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameClass::Data, 0, &[1, 2], &[3, 4, 5], &[]).unwrap();
        wire.truncate(wire.len() - 2);
        let err = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME_BYTES).unwrap_err();
        assert!(matches!(err, ReadError::Io(_)));
    }
}
