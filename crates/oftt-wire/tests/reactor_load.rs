//! Reactor load behavior: backpressure shedding policy under a stalled
//! reader, and the O(1)-thread guarantee under a thousand connections.
//! (Partial-write resumption is covered by unit tests in `frame.rs` and
//! `reactor.rs`, where the write path can be driven byte-by-byte.)

use std::sync::Arc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use comsim::buf::Bytes;
use ds_net::endpoint::{Endpoint, NodeId};
use ds_net::message::Envelope;
use ds_net::transport::TransportEvent;
use ds_sim::trace::TraceCategory;
use oftt_wire::codec::{WireCodec, WirePing};
use oftt_wire::frame::FrameClass;
use oftt_wire::harness::RawPeer;
use oftt_wire::supervisor::{Supervisor, WireConfig, WireHandler};

struct Sink {
    delivered: Mutex<Vec<Envelope>>,
}

impl Sink {
    fn new() -> Arc<Self> {
        Arc::new(Sink { delivered: Mutex::new(Vec::new()) })
    }
}

impl WireHandler for Sink {
    fn deliver(&self, envelope: Envelope) {
        self.delivered.lock().unwrap().push(envelope);
    }
    fn peer_event(&self, _event: TransportEvent) {}
    fn record(&self, _category: TraceCategory, _message: String) {}
}

fn wait_for(cond: impl Fn() -> bool, timeout: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

fn data_envelope(to: NodeId, seq: u64, pad_bytes: usize) -> Envelope {
    Envelope::new(
        Endpoint::new(NodeId(0), "src"),
        Endpoint::new(to, "dst"),
        WirePing { seq, pad: Bytes::from(vec![0xAB; pad_bytes]) },
    )
}

fn heartbeat_envelope(to: NodeId) -> Envelope {
    Envelope::new(
        Endpoint::new(NodeId(0), "src"),
        Endpoint::new(to, "dst"),
        oftt::messages::PeerMsg::Heartbeat {
            node: NodeId(0),
            role: oftt::role::Role::Primary,
            term: 1,
        },
    )
}

/// A peer that handshakes and then stops reading jams the socket; the
/// bounded queue must shed heartbeats (oldest first) and only
/// heartbeats — every data frame still arrives once the peer resumes.
#[test]
fn backpressure_sheds_heartbeats_never_data() {
    const DATA_FRAMES: u64 = 40;
    const PAD: usize = 512 * 1024; // 40 x 512 KiB overflows loopback buffers
    const HEARTBEATS: usize = 400;

    let peer_id = NodeId(9);
    let mut config = WireConfig::loopback(NodeId(0));
    config.accept_unknown = true;
    config.queue_limit = 64;
    let sup = Supervisor::start(config, Arc::new(WireCodec::standard()), Sink::new()).unwrap();

    let mut peer = RawPeer::connect(&sup.local_addr().to_string(), peer_id, 1).unwrap();
    assert!(wait_for(|| sup.connected(peer_id), Duration::from_secs(3)));

    // The peer is not reading: data fills the kernel buffers and the
    // in-flight batch, heartbeats pile into the bounded queue behind it.
    for seq in 0..DATA_FRAMES {
        assert!(sup.send_envelope(peer_id, &data_envelope(peer_id, seq, PAD)));
    }
    for _ in 0..HEARTBEATS {
        sup.send_envelope(peer_id, &heartbeat_envelope(peer_id));
    }

    let health = &sup.health()[0];
    assert!(health.dropped_heartbeats > 0, "a stalled reader must shed heartbeats: {health:?}");
    assert_eq!(health.dropped_frames, 0, "data must never be shed: {health:?}");

    // Resume reading: every data frame arrives intact and in order.
    peer.set_read_timeout(Some(Duration::from_millis(800)));
    let (mut data_seen, mut hb_seen) = (0u64, 0u64);
    while let Ok(frame) = peer.recv() {
        match frame.header.class {
            FrameClass::Data => {
                data_seen += 1;
                if data_seen == DATA_FRAMES && hb_seen > 0 {
                    break;
                }
            }
            FrameClass::Heartbeat => hb_seen += 1,
            FrameClass::Handshake => {}
        }
        if data_seen == DATA_FRAMES && hb_seen > 0 {
            break;
        }
    }
    assert_eq!(data_seen, DATA_FRAMES, "all data frames must survive backpressure");
    assert!(hb_seen > 0, "the retained heartbeats still flow after the stall clears");
    assert_eq!(sup.health()[0].dropped_frames, 0, "still zero data sheds after drain");

    sup.shutdown();
}

/// One thousand handshaken connections are served by the same fixed
/// reactor thread count — the process grows zero threads per connection.
#[test]
fn thousand_connections_same_thread_count() {
    const CONNS: u16 = 1000;

    let mut config = WireConfig::loopback(NodeId(0));
    config.accept_unknown = true;
    config.io_threads = 2;
    let sup = Supervisor::start(config, Arc::new(WireCodec::standard()), Sink::new()).unwrap();
    let addr = sup.local_addr().to_string();
    assert_eq!(sup.io_threads(), 2);

    let threads_before = os_thread_count();
    let mut peers = Vec::with_capacity(CONNS as usize);
    for id in 1..=CONNS {
        let peer =
            RawPeer::connect(&addr, NodeId(id), 1).unwrap_or_else(|e| panic!("conn {id}: {e}"));
        assert!(peer.peer_epoch > 0, "handshake reply must carry a live epoch");
        peers.push(peer);
    }

    assert!(
        wait_for(|| sup.health().len() == CONNS as usize, Duration::from_secs(5)),
        "every handshake must install a link (got {})",
        sup.health().len()
    );
    assert_eq!(sup.io_threads(), 2, "reactor thread count is fixed");
    let threads_after = os_thread_count();
    assert!(
        threads_after <= threads_before + 1,
        "thread count must not scale with connections: {threads_before} -> {threads_after}"
    );

    drop(peers);
    sup.shutdown();
}

/// Thread count of this process, from /proc (Linux) or a safe fallback
/// that keeps the assertion trivially true elsewhere.
fn os_thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").map(|d| d.count()).unwrap_or(0)
}
