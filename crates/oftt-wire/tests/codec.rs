//! Property-based tests for the wire frame codec: anything the sender
//! can encode must survive the socket byte-for-byte, and *no* sequence
//! of received bytes — truncated, oversized, or garbage — may panic the
//! receiver. A length-prefixed protocol lives or dies on this.

use std::io::Cursor;

use comsim::buf::Bytes;
use ds_net::endpoint::{Endpoint, NodeId};
use ds_net::message::Envelope;
use oftt_wire::codec::{WireCodec, WirePing};
use oftt_wire::frame::{
    read_frame, write_frame, FrameClass, FrameHeader, ReadError, HEADER_LEN, MAX_META_BYTES,
};
use proptest::prelude::*;

const MAX_FRAME: u32 = 64 * 1024 * 1024;

fn class_strategy() -> impl Strategy<Value = FrameClass> {
    prop_oneof![Just(FrameClass::Data), Just(FrameClass::Heartbeat), Just(FrameClass::Handshake),]
}

proptest! {
    #[test]
    fn frames_round_trip_byte_exact(
        class in class_strategy(),
        epoch in any::<u32>(),
        meta in prop::collection::vec(any::<u8>(), 0..256),
        head in prop::collection::vec(any::<u8>(), 0..512),
        windows in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..2048), 0..5),
    ) {
        let shared: Vec<Bytes> = windows.iter().cloned().map(Bytes::from).collect();
        let mut wire = Vec::new();
        let written =
            write_frame(&mut wire, class, epoch, &meta, &head, &shared).unwrap();
        prop_assert_eq!(written as usize, wire.len());

        let frame = read_frame(&mut Cursor::new(&wire), MAX_FRAME).unwrap();
        prop_assert_eq!(frame.header.class, class);
        prop_assert_eq!(frame.header.epoch, epoch);
        prop_assert_eq!(frame.meta.as_slice(), &meta[..]);
        let mut body = head.clone();
        for w in &windows {
            body.extend_from_slice(w);
        }
        prop_assert_eq!(frame.body.as_slice(), &body[..]);
    }

    #[test]
    fn truncated_frames_error_and_never_panic(
        meta in prop::collection::vec(any::<u8>(), 0..64),
        head in prop::collection::vec(any::<u8>(), 1..128),
        cut_seed in any::<u64>(),
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameClass::Data, 7, &meta, &head, &[]).unwrap();
        // Cut strictly inside the frame: every prefix must fail cleanly.
        let cut = (cut_seed as usize) % (wire.len() - 1).max(1);
        let result = read_frame(&mut Cursor::new(&wire[..cut]), MAX_FRAME);
        prop_assert!(matches!(result, Err(ReadError::Io(_))));
    }

    #[test]
    fn garbage_headers_error_and_never_panic(raw in prop::collection::vec(any::<u8>(), 0..64)) {
        // Arbitrary bytes: must come back as Err, never panic. (A lucky
        // prefix that happens to spell a valid empty frame is fine.)
        let _ = read_frame(&mut Cursor::new(&raw), MAX_FRAME);
    }

    #[test]
    fn oversized_length_prefixes_are_rejected(
        meta_len in any::<u32>(),
        body_len in any::<u32>(),
    ) {
        let header = FrameHeader {
            class: FrameClass::Data,
            epoch: 0,
            meta_len,
            body_len,
        };
        let small_max = 4096u32;
        let decoded = FrameHeader::decode(&header.encode(), small_max);
        let total = meta_len as u64 + body_len as u64;
        if meta_len > MAX_META_BYTES || total > small_max as u64 {
            prop_assert!(decoded.is_err());
        } else {
            prop_assert_eq!(decoded.unwrap(), header);
        }
    }

    #[test]
    fn ping_envelopes_survive_the_codec(
        seq in any::<u64>(),
        pad in prop::collection::vec(any::<u8>(), 0..4096),
        from_node in 0u16..8,
        to_node in 0u16..8,
    ) {
        let codec = WireCodec::standard();
        let envelope = Envelope::new(
            Endpoint::new(NodeId(from_node), "ping"),
            Endpoint::new(NodeId(to_node), "pong"),
            WirePing { seq, pad: Bytes::from(pad.clone()) },
        );
        let (meta, payload) = codec.encode_envelope(&envelope).unwrap().unwrap();
        let mut wire = Vec::new();
        write_frame(&mut wire, payload.class, 3, &meta, &payload.head, &payload.shared)
            .unwrap();
        let frame = read_frame(&mut Cursor::new(&wire), MAX_FRAME).unwrap();
        let back = codec.decode_frame(&frame).unwrap();
        prop_assert_eq!(back.from, envelope.from);
        prop_assert_eq!(back.to, envelope.to);
        let ping = back.body.downcast_ref::<WirePing>().unwrap();
        prop_assert_eq!(ping.seq, seq);
        prop_assert_eq!(ping.pad.as_slice(), &pad[..]);
    }
}

/// A multi-megabyte shared window crosses the frame layer without a
/// byte out of place — the zero-copy path at checkpoint-image scale.
#[test]
fn multi_megabyte_windows_round_trip() {
    let big: Vec<u8> = (0..3 * 1024 * 1024u32).map(|i| i.wrapping_mul(2654435761) as u8).collect();
    let shared = vec![Bytes::from(big.clone()), Bytes::from(vec![0xAB; 1024 * 1024])];
    let mut wire = Vec::new();
    write_frame(&mut wire, FrameClass::Data, 1, b"meta", b"head", &shared).unwrap();
    assert_eq!(wire.len(), HEADER_LEN + 4 + 4 + big.len() + 1024 * 1024);

    let frame = read_frame(&mut Cursor::new(&wire), MAX_FRAME).unwrap();
    assert_eq!(frame.meta.as_slice(), b"meta");
    assert_eq!(&frame.body.as_slice()[..4], b"head");
    assert_eq!(&frame.body.as_slice()[4..4 + big.len()], &big[..]);
    assert!(frame.body.as_slice()[4 + big.len()..].iter().all(|&b| b == 0xAB));
}

/// A multi-megabyte checkpoint through the *full* codec: envelope in,
/// bytes on the wire, envelope out, checksum intact.
#[test]
fn multi_megabyte_checkpoint_survives_the_codec() {
    use oftt::checkpoint::{fold_digests, var_digest, Checkpoint, CheckpointPayload, VarSet};
    use oftt::messages::FtimPeerMsg;

    let mut vars = VarSet::new();
    for i in 0..64 {
        let len = 64 * 1024 + i;
        vars.insert(format!("blk{i:03}"), Bytes::from(vec![(i & 0xFF) as u8; len]));
    }
    let crc = fold_digests(vars.iter().map(|(n, b)| var_digest(n, b.as_slice())));
    let total: usize = vars.values().map(|b| b.len()).sum();
    assert!(total > 4 * 1024 * 1024, "test must exercise multi-MB bodies");

    let codec = WireCodec::standard();
    let envelope = Envelope::new(
        Endpoint::new(NodeId(0), "oftt-engine"),
        Endpoint::new(NodeId(1), "oftt-engine"),
        FtimPeerMsg::Ckpt(Checkpoint {
            term: 5,
            seq: 40,
            taken_at: ds_sim::prelude::SimTime::ZERO,
            payload: CheckpointPayload::Full(vars.clone()),
            crc,
        }),
    );
    let (meta, payload) = codec.encode_envelope(&envelope).unwrap().unwrap();
    let mut wire = Vec::new();
    write_frame(&mut wire, payload.class, 9, &meta, &payload.head, &payload.shared).unwrap();
    let frame = read_frame(&mut Cursor::new(&wire), MAX_FRAME).unwrap();
    let back = codec.decode_frame(&frame).unwrap();
    let FtimPeerMsg::Ckpt(ckpt) = back.body.downcast_ref::<FtimPeerMsg>().unwrap() else {
        panic!("wrong variant");
    };
    assert_eq!(ckpt.term, 5);
    assert_eq!(ckpt.seq, 40);
    assert_eq!(ckpt.crc, crc);
    assert_eq!(ckpt.payload.vars().len(), vars.len());
    for (name, bytes) in ckpt.payload.vars() {
        assert_eq!(bytes.as_slice(), vars[name].as_slice(), "var {name}");
    }
}
