//! The socket runtime, exercised in-process: two [`WireNet`]s on
//! loopback are two genuinely separate runtimes — separate mailboxes,
//! separate clocks, separate trace — connected only by TCP. The same
//! engine/FTIM/application code that runs on the simulator and the
//! thread runtime runs here unchanged.

use std::sync::Arc;
use std::time::{Duration, Instant};

use comsim::buf::Bytes;
use ds_net::endpoint::{Endpoint, NodeId};
use ds_net::message::Envelope;
use ds_net::process::{Process, ProcessEnv, ProcessEnvExt};
use oftt::config::{engine_endpoint, OfttConfig, Pair, RecoveryRule};
use oftt::engine::{Engine, EngineProbe};
use oftt::ftim::{FtProcess, FtimProbe};
use oftt::role::Role;
use oftt_wire::app::{LoadApp, LoadConfig, LoadView};
use oftt_wire::codec::{WireCodec, WirePing};
use oftt_wire::fault::FaultProxy;
use oftt_wire::harness::free_port;
use oftt_wire::runtime::WireNet;
use oftt_wire::supervisor::WireConfig;
use parking_lot::Mutex;

fn wait_for(cond: impl Fn() -> bool, timeout: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

fn wire_config(node: NodeId, listen_port: u16, peer: NodeId, peer_addr: &str) -> WireConfig {
    let mut config = WireConfig::loopback(node);
    config.listen = format!("127.0.0.1:{listen_port}");
    config.peers = vec![(peer, peer_addr.to_string())];
    config.seed = 100 + u64::from(node.0);
    config
}

/// Sends `WirePing` volleys and records every echo it gets back.
struct Pinger {
    target: Endpoint,
    limit: u64,
    seen: Arc<Mutex<Vec<u64>>>,
}

impl Process for Pinger {
    fn on_start(&mut self, env: &mut dyn ProcessEnv) {
        env.send_msg(self.target.clone(), WirePing { seq: 0, pad: Bytes::from(vec![0xCD; 256]) });
    }
    fn on_message(&mut self, envelope: Envelope, env: &mut dyn ProcessEnv) {
        if let Some(ping) = envelope.body.downcast_ref::<WirePing>() {
            self.seen.lock().push(ping.seq);
            if ping.seq + 1 < self.limit {
                env.send_msg(
                    self.target.clone(),
                    WirePing { seq: ping.seq + 1, pad: Bytes::from(vec![0xCD; 256]) },
                );
            }
        }
    }
}

/// Echoes every ping straight back to its sender.
struct Echo;

impl Process for Echo {
    fn on_message(&mut self, envelope: Envelope, env: &mut dyn ProcessEnv) {
        if let Some(ping) = envelope.body.downcast_ref::<WirePing>() {
            env.send_msg(envelope.from.clone(), ping.clone());
        }
    }
}

#[test]
fn ping_pong_crosses_real_sockets_both_ways() {
    let (na, nb) = (NodeId(0), NodeId(1));
    let (port_a, port_b) = (free_port(), free_port());
    let codec = Arc::new(WireCodec::standard());
    let mut a = WireNet::new(
        1,
        wire_config(na, port_a, nb, &format!("127.0.0.1:{port_b}")),
        Arc::clone(&codec),
    )
    .expect("net a");
    let mut b = WireNet::new(2, wire_config(nb, port_b, na, &format!("127.0.0.1:{port_a}")), codec)
        .expect("net b");

    let seen = Arc::new(Mutex::new(Vec::new()));
    {
        let seen = Arc::clone(&seen);
        let target = Endpoint::new(nb, "echo");
        a.register(
            Endpoint::new(na, "pinger"),
            Box::new(move || {
                Box::new(Pinger { target: target.clone(), limit: 50, seen: seen.clone() })
            }),
        );
    }
    b.register(Endpoint::new(nb, "echo"), Box::new(|| Box::new(Echo)));

    assert!(
        wait_for(|| a.connected(nb) && b.connected(na), Duration::from_secs(5)),
        "link must come up both ways"
    );
    b.start(&Endpoint::new(nb, "echo"));
    a.start(&Endpoint::new(na, "pinger"));

    assert!(
        wait_for(|| seen.lock().len() >= 50, Duration::from_secs(10)),
        "50 round trips must complete, saw {}",
        seen.lock().len()
    );
    let seen = seen.lock().clone();
    assert_eq!(&seen[..50], &(0..50).collect::<Vec<u64>>()[..], "echoes arrive in order");

    // The counters saw real traffic in both directions.
    let health_a = a.health();
    assert_eq!(health_a.len(), 1);
    assert!(health_a[0].bytes_out > 0 && health_a[0].bytes_in > 0);
    assert_eq!(a.dropped_count(), 0, "nothing silently dropped on a");
    assert_eq!(b.dropped_count(), 0, "nothing silently dropped on b");

    a.shutdown();
    b.shutdown();
}

struct OfttNode {
    net: WireNet,
    probe: Arc<Mutex<EngineProbe>>,
    view: Arc<Mutex<LoadView>>,
}

fn oftt_node(node: NodeId, listen_port: u16, peer: NodeId, peer_port: u16) -> OfttNode {
    let mut config = OfttConfig::new(Pair::new(node.min(peer), node.max(peer)));
    config.heartbeat_period = ds_sim::prelude::SimDuration::from_millis(50);
    config.component_timeout = ds_sim::prelude::SimDuration::from_millis(400);
    config.peer_timeout = ds_sim::prelude::SimDuration::from_millis(400);
    config.fail_safe_timeout = ds_sim::prelude::SimDuration::from_millis(250);
    config.checkpoint_period = ds_sim::prelude::SimDuration::from_millis(100);
    config.startup_timeout = ds_sim::prelude::SimDuration::from_millis(500);

    let mut net = WireNet::new(
        u64::from(node.0) + 10,
        wire_config(node, listen_port, peer, &format!("127.0.0.1:{peer_port}")),
        Arc::new(WireCodec::standard()),
    )
    .expect("wire net");

    let probe = Arc::new(Mutex::new(EngineProbe::default()));
    {
        let engine_config = config.clone();
        let probe = Arc::clone(&probe);
        net.register(
            engine_endpoint(node),
            Box::new(move || Box::new(Engine::new(engine_config.clone(), probe.clone()))),
        );
    }
    let view = Arc::new(Mutex::new(LoadView::default()));
    {
        let view = Arc::clone(&view);
        let ftim = Arc::new(Mutex::new(FtimProbe::default()));
        let load = LoadConfig {
            vars: 32,
            var_bytes: 32,
            dirty_per_tick: 2,
            tick_period: Duration::from_millis(10),
        };
        net.register(
            Endpoint::new(node, "app"),
            Box::new(move || {
                Box::new(FtProcess::new(
                    config.clone(),
                    RecoveryRule::LocalRestart { max_attempts: 1 },
                    LoadApp::new(load, view.clone()),
                    ftim.clone(),
                ))
            }),
        );
    }
    net.start(&engine_endpoint(node));
    net.start(&Endpoint::new(node, "app"));
    OfttNode { net, probe, view }
}

/// The headline property: the unchanged OFTT pair forms over TCP, the
/// active application advances, and killing the whole primary runtime
/// (sockets and all) moves the application to the backup with its
/// checkpointed state intact.
#[test]
fn oftt_pair_forms_and_fails_over_across_sockets() {
    let (na, nb) = (NodeId(0), NodeId(1));
    let (port_a, port_b) = (free_port(), free_port());
    let mut nodes = [oftt_node(na, port_a, nb, port_b), oftt_node(nb, port_b, na, port_a)];

    assert!(
        wait_for(
            || {
                let roles: Vec<_> = nodes.iter().map(|n| n.probe.lock().current_role()).collect();
                matches!(
                    (roles[0], roles[1]),
                    (Some(Role::Primary), Some(Role::Backup))
                        | (Some(Role::Backup), Some(Role::Primary))
                )
            },
            Duration::from_secs(10)
        ),
        "pair must form one primary + one backup over TCP"
    );
    let primary_idx = usize::from(nodes[0].probe.lock().current_role() != Some(Role::Primary));
    let backup_idx = 1 - primary_idx;

    // The active copy ticks; checkpoints accumulate real state.
    assert!(
        wait_for(|| nodes[primary_idx].view.lock().ticks > 20, Duration::from_secs(10)),
        "active application must advance"
    );
    let ticks_before = nodes[primary_idx].view.lock().ticks;

    // Node death: tear the whole primary runtime down, sockets included.
    nodes[primary_idx].net.shutdown();

    assert!(
        wait_for(
            || nodes[backup_idx].probe.lock().current_role() == Some(Role::Primary),
            Duration::from_secs(5)
        ),
        "backup must promote itself after the primary dies"
    );
    assert!(
        wait_for(
            || {
                let view = nodes[backup_idx].view.lock();
                view.active && view.ticks >= ticks_before.saturating_sub(15)
            },
            Duration::from_secs(10)
        ),
        "application must resume near the pre-crash state (got {:?}, wanted ~{ticks_before})",
        *nodes[backup_idx].view.lock()
    );
    assert!(
        nodes[backup_idx].view.lock().restores >= 1,
        "takeover must restore from a shipped checkpoint"
    );
    nodes[backup_idx].net.shutdown();
}

/// A partition injected by the fault proxy tears the link down; healing
/// brings it back on a *new* epoch, and traffic resumes. Reconnects are
/// visible in the health counters.
#[test]
fn partition_and_heal_reconnects_with_a_fresh_epoch() {
    let (na, nb) = (NodeId(0), NodeId(1));
    let (port_a, port_b) = (free_port(), free_port());
    let codec = Arc::new(WireCodec::standard());

    // B is reachable for A only through the proxy; B itself dials a dead
    // address so the proxied connection is the only possible path.
    let mut b = WireNet::new(2, wire_config(nb, port_b, na, "127.0.0.1:1"), Arc::clone(&codec))
        .expect("net b");
    let proxy =
        FaultProxy::start("127.0.0.1:0", format!("127.0.0.1:{port_b}").parse().unwrap(), 77)
            .expect("proxy");
    let mut a = WireNet::new(1, wire_config(na, port_a, nb, &proxy.addr().to_string()), codec)
        .expect("net a");

    let got = Arc::new(Mutex::new(Vec::<String>::new()));
    {
        let got = Arc::clone(&got);
        struct Sink(Arc<Mutex<Vec<String>>>);
        impl Process for Sink {
            fn on_message(&mut self, envelope: Envelope, _env: &mut dyn ProcessEnv) {
                if let Some(s) = envelope.body.downcast_ref::<String>() {
                    self.0.lock().push(s.clone());
                }
            }
        }
        b.register(Endpoint::new(nb, "sink"), Box::new(move || Box::new(Sink(got.clone()))));
    }
    b.start(&Endpoint::new(nb, "sink"));

    assert!(
        wait_for(|| a.connected(nb), Duration::from_secs(5)),
        "link must form through the proxy"
    );
    let epoch_before = a.health()[0].epoch;
    a.post(Endpoint::new(nb, "sink"), "before".to_string());
    assert!(wait_for(|| !got.lock().is_empty(), Duration::from_secs(5)));

    proxy.partition();
    assert!(
        wait_for(|| !a.connected(nb), Duration::from_secs(10)),
        "partition must tear the link down"
    );

    proxy.heal();
    assert!(wait_for(|| a.connected(nb), Duration::from_secs(15)), "healed link must reconnect");
    let health = a.health();
    assert!(health[0].reconnects >= 1, "reconnect must be counted: {health:?}");
    assert!(health[0].epoch > epoch_before, "a reconnect runs on a fresh epoch");

    a.post(Endpoint::new(nb, "sink"), "after".to_string());
    assert!(
        wait_for(|| got.lock().iter().any(|s| s == "after"), Duration::from_secs(5)),
        "traffic must flow again after heal"
    );

    a.shutdown();
    b.shutdown();
    proxy.shutdown();
}
