//! Seeded defect for the transitive lock-order rule: each half of the
//! inversion spans a call boundary — the caller holds one lock while a
//! callee acquires the other — so no single function ever nests the
//! pair and the cycle exists only in the call-derived acquisition
//! graph. Not compiled — scanned by `tests/fixtures.rs`.

fn forward(s: &Shared) {
    // oftt-lint: lock(outer)
    let a = s.outer.lock();
    take_inner(s);
    drop(a);
}

fn take_inner(s: &Shared) {
    // oftt-lint: lock(inner)
    let b = s.inner.lock();
    drop(b);
}

fn backward(s: &Shared) {
    // oftt-lint: lock(inner)
    let b = s.inner.lock();
    take_outer(s);
    drop(b);
}

fn take_outer(s: &Shared) {
    // oftt-lint: lock(outer)
    let a = s.outer.lock();
    drop(a);
}
