//! Seeded defect for the pool-typestate rule: a pooled buffer is read
//! after it already went back to the pool — a concurrent `take` may
//! hand the same allocation to another connection while we still hold
//! a view into it.

struct Tx {
    pool: BufPool,
}

impl Tx {
    fn send(&self, out: &mut Vec<u8>) {
        let mut buf = self.pool.take(64);
        buf.extend_from_slice(b"header");
        self.pool.give(buf);
        out.extend_from_slice(&buf);
    }
}
