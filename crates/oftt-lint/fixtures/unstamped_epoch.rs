//! Seeded defect for the epoch-stamping rule: frames drained from the
//! sharded queues reach the write path without being wrapped in
//! `StampedFrame` — after any reconnect the receiver silently drops
//! them as stale.

struct Pump {
    queues: ShardedQueues,
    dest: QueueId,
}

impl Pump {
    fn next_frames(&self, out: &mut Vec<StampedFrame>) {
        let mut pulled = Vec::new();
        self.queues.drain_into(self.dest, 32, &mut pulled);
        out.extend(pulled);
    }
}
