//! Seeded defect for the lock-order rule: two functions acquire the
//! same pair of locks in opposite orders, so the static acquisition
//! graph has the cycle `alpha -> beta -> alpha`. Not compiled — scanned
//! by `tests/fixtures.rs`.

fn forward(s: &Shared) {
    // oftt-lint: lock(alpha)
    let a = s.alpha.lock();
    // oftt-lint: lock(beta)
    let b = s.beta.lock();
    drop(b);
    drop(a);
}

fn backward(s: &Shared) {
    // oftt-lint: lock(beta)
    let b = s.beta.lock();
    // oftt-lint: lock(alpha)
    let a = s.alpha.lock();
    drop(a);
    drop(b);
}
