//! Seeded defect for the lock-across-blocking rule: the guard is held
//! across a call into a function that only *transitively* blocks — the
//! sleep is two calls away, so the rule needs the inferred `blocks`
//! effect of the callee, not a syntactic match. Not compiled — scanned
//! by `tests/fixtures.rs`.

fn pump(s: &Shared) {
    let g = s.state.lock();
    persist();
    drop(g);
}

fn persist() {
    sync_disk();
}

fn sync_disk() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
