//! Seeded defect for the reactor-hot-path rule: a blocking primitive
//! two calls below a reactor root, so only the interprocedural walk can
//! see it — and the finding must spell the full witness chain. Not
//! compiled — scanned by `tests/fixtures.rs`.

// oftt-lint: reactor-root
fn on_frame() {
    step();
}

fn step() {
    nap();
}

fn nap() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
