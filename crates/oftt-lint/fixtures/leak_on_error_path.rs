//! Seeded defect for the pool-typestate rule: the happy path ships the
//! buffer, but the `?` on the encode call returns early with the taken
//! buffer still live — every encode failure drains the pool by one.

struct Enc {
    pool: BufPool,
    codec: Codec,
}

impl Enc {
    fn encode(&self, env: &Envelope) -> Result<(), Error> {
        let mut buf = self.pool.take(64);
        self.codec.write_into(env, &mut buf)?;
        self.ship(buf);
        Ok(())
    }

    fn ship(&self, buf: Vec<u8>) {
        drop(buf);
    }
}
