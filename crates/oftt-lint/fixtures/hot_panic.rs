//! Seeded defect for the reactor-hot-path rule: a panic path (raw
//! indexing) inside a helper the root reaches through a call, so the
//! single-function scan sees nothing and the effect fixpoint must carry
//! `may_panic` up the chain. Not compiled — scanned by
//! `tests/fixtures.rs`.

// oftt-lint: reactor-root
fn on_frame(raw: &[u8]) {
    decode(raw);
}

fn decode(raw: &[u8]) -> u8 {
    raw[0]
}
