//! Seeded defect for the pool-typestate rule: one path gives the
//! buffer back and then the fall-through gives it again — the freelist
//! would hold the same allocation twice and hand it to two takers.

struct Flush {
    frame_pool: BufPool,
    failed: bool,
}

impl Flush {
    fn flush(&self) {
        let buf = self.frame_pool.take(128);
        if self.failed {
            self.frame_pool.give(buf);
        }
        self.frame_pool.give(buf);
    }
}
