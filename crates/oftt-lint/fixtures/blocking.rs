//! Seeded defect for the nonblocking rule: a module that declares the
//! bounded-latency contract and then sleeps on it. Not compiled —
//! scanned by `tests/fixtures.rs`.

// oftt-lint: nonblocking

fn poll_badly(rx: &Receiver<Sample>) -> Sample {
    std::thread::sleep(std::time::Duration::from_millis(10));
    rx.recv()
}
