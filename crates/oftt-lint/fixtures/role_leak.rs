//! Seeded defect for the role-confinement rule: a `.role`/`.term` store
//! in a function carrying no `role-choke-point` / `role-mirror`
//! annotation. Not compiled — scanned by `tests/fixtures.rs`.

struct Core {
    role: u8,
    term: u64,
}

struct Node {
    core: Core,
}

impl Node {
    /// Promotes itself without going through the transition table —
    /// exactly the write the confinement rule exists to catch.
    fn sneak_promote(&mut self) {
        self.core.role = 1;
        self.core.term += 1;
    }
}
