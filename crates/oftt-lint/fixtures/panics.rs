//! Seeded defects for the no-panic rule: an unwrap, a panic macro, and
//! an index expression on an annotated hot path. Not compiled — scanned
//! by `tests/fixtures.rs`.

// oftt-lint: no-panic

fn hot(frames: &[u8], first: Option<u8>) -> u8 {
    let lead = frames[0];
    if lead == 0 {
        panic!("empty lead byte");
    }
    lead + first.unwrap()
}
