//! Seeded defect for the conn-dfa rule: a connection is constructed
//! directly in `Established`, skipping the declared
//! `new => AwaitHello => Established` handshake path — it would carry
//! no negotiated epoch.

// oftt-lint: dfa(ConnState, new => AwaitHello, AwaitHello => Established)
enum ConnState {
    AwaitHello { deadline: u64 },
    Established { epoch: u32 },
}

fn accept(m: &mut Conns) {
    m.insert(1, ConnState::AwaitHello { deadline: 10 });
}

fn hijack(m: &mut Conns) {
    m.insert(2, ConnState::Established { epoch: 0 });
}
