//! Seeded defects for the api-lifecycle rule: a watchdog used after
//! `watchdog_delete`, and a checkpoint taken before `initialize` in the
//! same function. Not compiled — scanned by `tests/fixtures.rs`.

fn watchdog_misuse(ctx: &mut FtCtx) {
    ctx.watchdog_create("pump", 100);
    ctx.watchdog_delete("pump");
    ctx.watchdog_reset("pump");
}

fn early_checkpoint(ctx: &mut FtCtx) {
    ctx.save_now();
    ctx.initialize(conf);
}
