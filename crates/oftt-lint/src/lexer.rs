//! A hand-rolled Rust lexer for source-level analysis.
//!
//! The workspace deliberately carries no rustc plugin or external parser;
//! this lexer covers exactly the token surface the rule families need:
//! identifiers, lifetimes, every literal form (including raw/byte strings
//! and nested block comments), and single-character punctuation. It is
//! *total*: any input — truncated, adversarial, or not Rust at all —
//! produces a token stream plus diagnostics, never a panic. All position
//! arithmetic goes through checked `get`s for that reason.
//!
//! Line comments of the form `// oftt-lint: <directive>` are surfaced as
//! [`Directive`]s; they are how source opts into (or out of) rule
//! families — see [`crate::scanner`] for attachment semantics.

/// What a token is. Multi-character operators (`==`, `+=`, `::`) appear
/// as consecutive [`TokenKind::Punct`] tokens; rules match the sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw `r#ident` forms, with the
    /// `r#` stripped).
    Ident(String),
    /// A lifetime such as `'a` (the label is irrelevant to every rule).
    Lifetime,
    /// A numeric literal.
    Number,
    /// A string, raw-string, byte-string, or character literal. The
    /// *content* (without quotes or escapes processed) is kept because
    /// the lifecycle rule keys watchdog names on literal arguments.
    Str(String),
    /// One punctuation character.
    Punct(char),
}

/// One token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: u32,
}

/// A `// oftt-lint: ...` comment, with the text after the marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based line the comment appears on.
    pub line: u32,
    /// The directive text, trimmed (e.g. `nonblocking`, `lock(probe)`).
    pub text: String,
}

/// A lexing problem. Diagnostics are findings in their own right: a file
/// the lexer cannot tokenize is a file the analyzer cannot vouch for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// 1-based line of the problem.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// The complete result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace stripped.
    pub tokens: Vec<Token>,
    /// Every `// oftt-lint:` directive comment, in order.
    pub directives: Vec<Directive>,
    /// Problems encountered; lexing continues past each.
    pub diagnostics: Vec<Diagnostic>,
}

/// The marker introducing a directive comment.
const DIRECTIVE_MARKER: &str = "oftt-lint:";

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

/// Tokenizes `source`. Total: never panics, whatever the input.
pub fn lex(source: &str) -> Lexed {
    let mut lx = Lexer { bytes: source.as_bytes(), pos: 0, line: 1, out: Lexed::default() };
    lx.run();
    lx.out
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl Lexer<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.bytes.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn diag(&mut self, line: u32, message: impl Into<String>) {
        self.out.diagnostics.push(Diagnostic { line, message: message.into() });
    }

    fn push(&mut self, line: u32, kind: TokenKind) {
        self.out.tokens.push(Token { kind, line });
    }

    fn run(&mut self) {
        while let Some(b) = self.peek() {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek_at(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek_at(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string_literal(line, "string"),
                b'\'' => self.char_or_lifetime(line),
                b'r' | b'b' => {
                    if !self.raw_or_byte_prefix(line) {
                        self.ident(line);
                    }
                }
                _ if is_ident_start(b) => self.ident(line),
                _ if b.is_ascii_digit() => self.number(line),
                _ if b.is_ascii_punctuation() => {
                    self.bump();
                    self.push(line, TokenKind::Punct(b as char));
                }
                other => {
                    self.bump();
                    self.diag(line, format!("unexpected byte 0x{other:02x}"));
                }
            }
        }
    }

    /// Consumes `//...` to end of line; surfaces `oftt-lint:` directives.
    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        let body = text.trim_start_matches('/').trim_start_matches('!').trim();
        if let Some(rest) = body.strip_prefix(DIRECTIVE_MARKER) {
            self.out.directives.push(Directive { line, text: rest.trim().to_string() });
        }
    }

    /// Consumes a (nested) `/* ... */` comment.
    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'/'), Some(b'*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some(b'*'), Some(b'/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => {
                    self.diag(line, "unterminated block comment");
                    return;
                }
            }
        }
    }

    /// Consumes a `"..."` literal starting at the opening quote.
    fn string_literal(&mut self, line: u32, what: &str) {
        self.bump(); // opening quote
        let start = self.pos;
        loop {
            match self.peek() {
                Some(b'"') => {
                    let content =
                        std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("").to_string();
                    self.bump();
                    self.push(line, TokenKind::Str(content));
                    return;
                }
                Some(b'\\') => {
                    self.bump();
                    self.bump(); // the escaped character, whatever it is
                }
                Some(_) => {
                    self.bump();
                }
                None => {
                    self.diag(line, format!("unterminated {what} literal"));
                    return;
                }
            }
        }
    }

    /// Handles `r"..."`, `r#"..."#`, `br#"..."#`, `b"..."`, `b'x'`, and
    /// `r#ident`. Returns false if the prefix is just an ordinary
    /// identifier starting with `r`/`b`.
    fn raw_or_byte_prefix(&mut self, line: u32) -> bool {
        let first = self.peek().unwrap_or(0);
        let mut offset = 1;
        if first == b'b' && self.peek_at(1) == Some(b'r') {
            offset = 2;
        }
        // Count `#`s after the prefix.
        let mut hashes = 0;
        while self.peek_at(offset + hashes) == Some(b'#') {
            hashes += 1;
        }
        match self.peek_at(offset + hashes) {
            Some(b'"') if first == b'b' || hashes > 0 || first == b'r' => {
                if first == b'b' && offset == 1 && hashes == 0 {
                    // b"...": an ordinary (byte) string after the prefix.
                    self.bump();
                    self.string_literal(line, "byte-string");
                    return true;
                }
                // Raw string: consume prefix, hashes, and opening quote.
                for _ in 0..offset + hashes + 1 {
                    self.bump();
                }
                let start = self.pos;
                loop {
                    match self.peek() {
                        Some(b'"') => {
                            let mut closing = 0;
                            while closing < hashes && self.peek_at(1 + closing) == Some(b'#') {
                                closing += 1;
                            }
                            if closing == hashes {
                                let content = std::str::from_utf8(&self.bytes[start..self.pos])
                                    .unwrap_or("")
                                    .to_string();
                                for _ in 0..hashes + 1 {
                                    self.bump();
                                }
                                self.push(line, TokenKind::Str(content));
                                return true;
                            }
                            self.bump();
                        }
                        Some(_) => {
                            self.bump();
                        }
                        None => {
                            self.diag(line, "unterminated raw string literal");
                            return true;
                        }
                    }
                }
            }
            Some(b'\'') if first == b'b' && offset == 1 && hashes == 0 => {
                // b'x': a byte literal.
                self.bump();
                self.char_or_lifetime(line);
                true
            }
            Some(next) if first == b'r' && hashes == 1 && is_ident_start(next) => {
                // r#ident: a raw identifier; strip the prefix.
                self.bump();
                self.bump();
                self.ident(line);
                true
            }
            _ => false,
        }
    }

    /// At a `'`: a lifetime (`'a`) or a char literal (`'x'`, `'\n'`).
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // the quote
        match self.peek() {
            Some(b'\\') => {
                // Escaped char literal: consume escape then closing quote.
                self.bump();
                self.bump();
                // \u{...} escapes carry extra characters before the quote.
                let mut closed = false;
                while let Some(b) = self.peek() {
                    if b == b'\'' {
                        self.bump();
                        closed = true;
                        break;
                    }
                    if b == b'\n' {
                        break;
                    }
                    self.bump();
                }
                if !closed {
                    // Newline or end of input before the closing quote.
                    self.diag(line, "unterminated character literal");
                }
                self.push(line, TokenKind::Str(String::new()));
            }
            Some(b) if is_ident_start(b) => {
                // 'a' is a char; 'a (no closing quote) is a lifetime.
                let mut end = 1;
                while self.peek_at(end).map(is_ident_continue).unwrap_or(false) {
                    end += 1;
                }
                // One *character*, not one byte: 'λ' is a char literal.
                let char_len = match b {
                    _ if b < 0x80 => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                if self.peek_at(end) == Some(b'\'') && end == char_len {
                    let content = (b as char).to_string();
                    for _ in 0..end + 1 {
                        self.bump();
                    }
                    self.push(line, TokenKind::Str(content));
                } else {
                    for _ in 0..end {
                        self.bump();
                    }
                    self.push(line, TokenKind::Lifetime);
                }
            }
            Some(b'\'') => {
                // '' — empty char literal: malformed.
                self.bump();
                self.diag(line, "empty character literal");
            }
            Some(other) => {
                // A non-identifier char such as '+' — char literal.
                self.bump();
                if other >= 0x80 {
                    // Finish the UTF-8 scalar.
                    while self.peek().map(|b| (0x80..0xC0).contains(&b)).unwrap_or(false) {
                        self.bump();
                    }
                }
                if self.peek() == Some(b'\'') {
                    self.bump();
                    self.push(line, TokenKind::Str(String::new()));
                } else {
                    self.diag(line, "unterminated character literal");
                }
            }
            None => self.diag(line, "unterminated character literal"),
        }
    }

    fn ident(&mut self, line: u32) {
        let start = self.pos;
        while self.peek().map(is_ident_continue).unwrap_or(false) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("").to_string();
        self.push(line, TokenKind::Ident(text));
    }

    /// Numbers, loosely: digits/underscores/hex letters and suffixes, a
    /// fractional part when a digit follows the dot (so `0..10` stays a
    /// range), and signed exponents.
    fn number(&mut self, line: u32) {
        while self.peek().map(|b| b.is_ascii_alphanumeric() || b == b'_').unwrap_or(false) {
            let b = self.bump().unwrap_or(0);
            // Signed exponent: 1e-3, 2.5E+7.
            if (b == b'e' || b == b'E')
                && matches!(self.peek(), Some(b'+') | Some(b'-'))
                && self.peek_at(1).map(|d| d.is_ascii_digit()).unwrap_or(false)
            {
                self.bump();
            }
        }
        if self.peek() == Some(b'.') && self.peek_at(1).map(|b| b.is_ascii_digit()).unwrap_or(false)
        {
            self.bump();
            while self.peek().map(|b| b.is_ascii_alphanumeric() || b == b'_').unwrap_or(false) {
                let b = self.bump().unwrap_or(0);
                if (b == b'e' || b == b'E')
                    && matches!(self.peek(), Some(b'+') | Some(b'-'))
                    && self.peek_at(1).map(|d| d.is_ascii_digit()).unwrap_or(false)
                {
                    self.bump();
                }
            }
        }
        self.push(line, TokenKind::Number);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(lexed: &Lexed) -> Vec<&str> {
        lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn lexes_a_plain_function() {
        let lexed = lex("fn main() { let x = 1 + 2; }");
        assert!(lexed.diagnostics.is_empty());
        assert_eq!(idents(&lexed), vec!["fn", "main", "let", "x"]);
    }

    #[test]
    fn directives_are_surfaced() {
        let lexed = lex("// oftt-lint: nonblocking\nfn f() {}\n// oftt-lint: lock(probe)\n");
        assert_eq!(lexed.directives.len(), 2);
        assert_eq!(lexed.directives[0].text, "nonblocking");
        assert_eq!(lexed.directives[0].line, 1);
        assert_eq!(lexed.directives[1].text, "lock(probe)");
        assert_eq!(lexed.directives[1].line, 3);
    }

    #[test]
    fn strings_keep_their_content() {
        let lexed = lex(r##"f("watchdog", r"raw", r#"hashed"#, b"bytes")"##);
        let strs: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["watchdog", "raw", "hashed", "bytes"]);
    }

    #[test]
    fn lifetimes_and_chars_are_distinguished() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'y' }");
        assert!(lexed.diagnostics.is_empty());
        let lifetimes = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).count();
        assert_eq!(lifetimes, 2);
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::Str("y".into())));
    }

    #[test]
    fn unicode_char_literal_is_not_a_lifetime() {
        let lexed = lex("round_trip('λ'); round_trip('\\u{1F980}');");
        assert!(lexed.diagnostics.is_empty(), "{:?}", lexed.diagnostics);
        assert!(!lexed.tokens.iter().any(|t| t.kind == TokenKind::Lifetime));
    }

    #[test]
    fn nested_block_comments_lex_cleanly() {
        let lexed = lex("/* outer /* inner */ still outer */ fn f() {}");
        assert!(lexed.diagnostics.is_empty());
        assert_eq!(idents(&lexed), vec!["fn", "f"]);
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let lexed = lex("for i in 0..10 { a[i] = i; }");
        assert!(lexed.diagnostics.is_empty());
        let dots = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn unterminated_string_is_a_diagnostic_not_a_panic() {
        let lexed = lex("let s = \"never closed");
        assert_eq!(lexed.diagnostics.len(), 1);
        assert!(lexed.diagnostics[0].message.contains("unterminated string"));
    }

    #[test]
    fn unterminated_block_comment_is_a_diagnostic() {
        let lexed = lex("fn f() {} /* drifting off...");
        assert_eq!(lexed.diagnostics.len(), 1);
        assert!(lexed.diagnostics[0].message.contains("block comment"));
    }

    #[test]
    fn unterminated_raw_string_is_a_diagnostic() {
        let lexed = lex("let s = r#\"no close");
        assert_eq!(lexed.diagnostics.len(), 1);
        assert!(lexed.diagnostics[0].message.contains("raw string"));
    }

    #[test]
    fn raw_identifiers_are_stripped() {
        let lexed = lex("let r#fn = 1;");
        assert!(lexed.diagnostics.is_empty());
        assert!(idents(&lexed).contains(&"fn"));
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        // A deliberately hostile soup of prefixes and broken literals.
        for source in [
            "r#",
            "b'",
            "b'x",
            "'",
            "''",
            "'\\",
            "\"\\",
            "r#\"",
            "br##\"x\"#",
            "0x",
            "1e",
            "1e+",
            "#![",
            "macro_rules! m { ($($x:tt)*) => {} }",
            "\u{7f}\u{1}",
            "🦀🦀'a",
        ] {
            let _ = lex(source);
        }
    }
}
