//! The interprocedural effect analysis: a bottom-up fixpoint over the
//! workspace call graph ([`crate::callgraph`]) inferring four effects
//! per function —
//!
//! * **blocks** — the function can transitively reach a blocking
//!   primitive (sleep, channel/condvar wait, park/join, synchronous
//!   socket/file I/O, stdio macros). Taking a `parking_lot`-style mutex
//!   is deliberately *not* `blocks`: short lock sections are legitimate
//!   on the hot path and tracked separately as `acquires`.
//! * **may_panic** — a panic macro (`panic!`, `unreachable!`, `todo!`,
//!   `unimplemented!`, `assert*!`), `.unwrap()`/`.expect()`, or an
//!   index expression (`buf[i]`, `raw[1..3]`) is transitively
//!   reachable.
//! * **allocates** — fresh heap memory is transitively requested
//!   (`with_capacity`, `to_vec`/`to_owned`/`to_string`, `collect`,
//!   `format!`/`vec!`, `Box/Arc/Rc/String/Vec::from|new`). Amortized
//!   container growth (`push`, `insert`, `extend`, `reserve`) is *not*
//!   counted — the policy targets per-event fresh allocation, the kind
//!   the `BufPool` arena exists to absorb. Functions annotated
//!   `// oftt-lint: arena` are the sanctioned allocators: their own
//!   allocation is exempt and not propagated to callers.
//! * **acquires** — the set of lock names the function (transitively)
//!   acquires, seeded from the same guard interpreter the lock-order
//!   rule uses.
//!
//! A fifth pseudo-effect, **havoc**, marks functions that call
//! something name resolution cannot see (an unknown name, a
//! call-through-value). Havoc is a *proof obligation*, not a verdict:
//! only the reactor-hot-path rule treats it as a violation (the proof
//! cannot close there); the lock-across-blocking and annotation-drift
//! rules use only *definite* effects — chains that end in a known
//! primitive — so an unresolved call never manufactures a false
//! positive in them.
//!
//! Every effect carries a [`Source`] so findings can print a witness
//! chain from the function to the primitive that grounds the effect.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use crate::callgraph::{self, Call, FnId, FnIndex};
use crate::rules::locks::{self, LockScan};
use crate::rules::panics::{indexes_value, PANIC_MACROS};
use crate::rules::{blocking, punct};
use crate::scanner::FileModel;

/// Blocking call names for the *effect*, derived from the syntactic
/// deny-list minus `lock` (tracked as `acquires` instead) plus DNS
/// resolution, which the syntactic rule predates.
fn is_blocking_effect(name: &str) -> bool {
    (name != "lock" && blocking::BLOCKING_CALLS.contains(&name)) || name == "to_socket_addrs"
}

/// Macros that lock and write stdio — blocking on the hot path.
const BLOCKING_MACROS: &[&str] = &["print", "println", "eprint", "eprintln", "dbg"];

/// Calls that request fresh heap memory.
const ALLOC_CALLS: &[&str] = &[
    "with_capacity",
    "to_vec",
    "to_owned",
    "to_string",
    "to_uppercase",
    "to_lowercase",
    "collect",
    "concat",
    "join",
    "repeat",
    "split_off",
    "into_owned",
];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// `Type::new` qualifiers that mean a heap allocation. Container `new`
/// (`Vec::new`, `String::new`, `BTreeMap::new`, …) starts at capacity
/// zero and touches the allocator only on first growth (policy-exempt
/// amortized growth, same as `push`), so only the boxing constructors
/// count.
const ALLOC_NEW_OWNERS: &[&str] = &["Box", "Arc", "Rc", "CString"];

/// `Type::from` qualifiers that mean a heap allocation — the conversion
/// copies or moves into a fresh heap block.
const ALLOC_FROM_OWNERS: &[&str] = &[
    "Box", "Arc", "Rc", "String", "Vec", "VecDeque", "HashMap", "BTreeMap", "HashSet", "BTreeSet",
    "CString",
];

/// Macros that expand to non-effectful code (formatter `write!` goes to
/// an in-memory buffer everywhere this workspace uses it; socket writes
/// flow through the named blocking calls instead).
const BENIGN_MACROS: &[&str] = &[
    "write",
    "writeln",
    "matches",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "cfg",
    "env",
    "option_env",
    "concat",
    "stringify",
    "include_str",
    "include_bytes",
    "line",
    "file",
    "column",
    "module_path",
];

/// Known-effect-free call names: accessors, iterator adapters, checked
/// arithmetic, atomics, time math, in-place container ops (amortized
/// growth is policy-exempt, see the module docs). Anything *not* here,
/// not an intrinsic above, and not resolvable to a workspace function
/// is havoc'd.
const BENIGN_CALLS: &[&str] = &[
    // accessors / predicates
    "len",
    "is_empty",
    "capacity",
    "get",
    "get_mut",
    "first",
    "last",
    "contains",
    "contains_key",
    "starts_with",
    "ends_with",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "is_finite",
    "is_nan",
    "is_alphanumeric",
    "is_ascii_digit",
    "is_char_boundary",
    "kind",
    "raw_os_error",
    "last_os_error",
    "local_addr",
    "peer_addr",
    "as_raw_fd",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "as_mut_slice",
    "as_bytes",
    "as_deref",
    "as_ptr",
    "as_mut_ptr",
    "borrow",
    "borrow_mut",
    "deref",
    "id",
    "name",
    // iterator construction / adapters (lazy, no effect of their own)
    "iter",
    "iter_mut",
    "into_iter",
    "chars",
    "bytes",
    "lines",
    "split",
    "splitn",
    "split_whitespace",
    "split_terminator",
    "windows",
    "chunks",
    "chunks_exact",
    "next",
    "peek",
    "peekable",
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "fold",
    "try_fold",
    "sum",
    "product",
    "count",
    "rev",
    "enumerate",
    "zip",
    "chain",
    "take_while",
    "skip",
    "skip_while",
    "step_by",
    "all",
    "any",
    "find",
    "find_map",
    "position",
    "rposition",
    "max_by_key",
    "min_by_key",
    "max_by",
    "min_by",
    "copied",
    "cloned",
    "by_ref",
    "empty",
    "once",
    "from_fn",
    "successors",
    // Option/Result plumbing
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "map_err",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "and_then",
    "or_else",
    "ok_or_default",
    "take",
    "replace",
    "insert_with",
    "get_or_insert_with",
    "as_opt",
    // comparison / arithmetic / bits
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "min",
    "max",
    "clamp",
    "abs",
    "pow",
    "signum",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "checked_div",
    "checked_rem",
    "overflowing_add",
    "rotate_left",
    "rotate_right",
    "count_ones",
    "leading_zeros",
    "trailing_zeros",
    "next_power_of_two",
    "is_power_of_two",
    "checked_next_power_of_two",
    "rem_euclid",
    "div_euclid",
    "floor",
    "ceil",
    "round",
    "sqrt",
    "trunc",
    "to_le_bytes",
    "to_be_bytes",
    "to_ne_bytes",
    "from_le_bytes",
    "from_be_bytes",
    "swap_bytes",
    "parse",
    "trim",
    "trim_start",
    "trim_end",
    "strip_prefix",
    "strip_suffix",
    "find_char",
    // in-place container ops (amortized growth policy-exempt)
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_back",
    "pop_front",
    "insert",
    "remove",
    "append",
    "extend",
    "extend_from_slice",
    "drain",
    "clear",
    "truncate",
    "retain",
    "swap",
    "swap_remove",
    "entry",
    "or_default",
    "or_insert",
    "or_insert_with",
    "keys",
    "values",
    "values_mut",
    "range",
    "front",
    "back",
    "front_mut",
    "back_mut",
    "reserve",
    "resize",
    "shrink_to_fit",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "binary_search",
    "binary_search_by",
    "binary_search_by_key",
    "fill",
    "copy_from_slice",
    "clone_from_slice",
    "rotate_left_slice",
    "split_at",
    "split_at_mut",
    "split_first",
    "split_last",
    "dedup",
    "concat_idents",
    "get_unchecked",
    "make_ascii_lowercase",
    // moves / clones (Arc/handle clones dominate this workspace)
    "clone",
    "drop",
    "into",
    "from",
    "try_from",
    "try_into",
    "to_bits",
    "from_bits",
    "into_inner",
    "unzip",
    "leak",
    "forget",
    // atomics
    "load",
    "store",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
    // time (clock reads are vDSO calls, not syscal-blocking)
    "now",
    "elapsed",
    "duration_since",
    "checked_duration_since",
    "saturating_duration_since",
    "as_secs",
    "as_millis",
    "as_micros",
    "as_nanos",
    "as_secs_f64",
    "subsec_millis",
    "subsec_micros",
    "subsec_nanos",
    "from_secs",
    "from_millis",
    "from_micros",
    "from_nanos",
    "checked_sub_duration",
    "mul_f64",
    "checked_mul_duration",
    // serde-shaped decoding: the workspace's only `deserialize` is
    // `comsim::marshal`'s visitor entry point, dispatched through the
    // `Deserialize` trait so name resolution cannot see through it.
    // The marshal `Deserializer` is total over arbitrary bytes (typed
    // errors, no panic), bounded (no I/O), and allocates only into the
    // caller-supplied value — a table fact standing in for the trait
    // dispatch the resolver declines.
    "deserialize",
    // sync constructs that never wait (`spawn` creates a thread and
    // returns; what the thread *does* is its own effect, see
    // `spawn_arg_spans`)
    "try_lock",
    "try_recv",
    "try_send",
    "notify_one",
    "notify_all",
    "unpark",
    "spawn",
    // non-blocking socket/fd plumbing (readiness-driven I/O: `read`
    // and `write` on a nonblocking fd return WouldBlock, they do not
    // block; the blocking loops are the *_all/_exact/_to_end forms)
    "read",
    "write",
    "write_vectored",
    "read_vectored",
    "set_nonblocking",
    "set_nodelay",
    "set_read_timeout",
    "set_write_timeout",
    "shutdown",
    "take_error",
    "try_clone",
    // readiness-registry ops: `epoll_ctl`-class syscalls and the
    // eventfd poke behind `wake` return immediately
    "register",
    "reregister",
    "deregister",
    "wake",
    // range-bound accessors
    "start_bound",
    "end_bound",
    // std free functions
    "min_by_key_free",
    "size_of",
    "align_of",
    "available_parallelism",
    "current",
    "spawn_local",
    "from_utf8",
];

/// One effect dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectKind {
    /// Can reach a blocking primitive.
    Blocks,
    /// Can reach a panic primitive.
    Panics,
    /// Can reach a fresh-heap allocation outside the arena.
    Allocs,
    /// Calls something resolution cannot see — the proof obligation.
    Havoc,
}

impl EffectKind {
    /// Human label used in findings.
    pub fn label(self) -> &'static str {
        match self {
            EffectKind::Blocks => "blocking call",
            EffectKind::Panics => "panic path",
            EffectKind::Allocs => "allocation",
            EffectKind::Havoc => "unresolvable call",
        }
    }
}

/// Why a function has an effect: its own primitive, or a call to a
/// function that has it.
#[derive(Debug, Clone)]
pub enum Source {
    /// A primitive inside this very function.
    Prim {
        /// What the primitive is (`sleep`, `unwrap`, `index`, …).
        what: String,
        /// Its 1-based line.
        line: u32,
    },
    /// Propagated through a call.
    Call {
        /// The call site's line in the *caller*.
        line: u32,
        /// The callee carrying the effect.
        callee: FnId,
    },
}

/// A direct effect primitive found in a function body.
#[derive(Debug, Clone)]
pub struct Prim {
    /// Which effect it grounds.
    pub kind: EffectKind,
    /// What it is (`sleep`, `unwrap`, `index`, a havoc'd name, …).
    pub what: String,
    /// Its 1-based line.
    pub line: u32,
}

/// One call site after resolution.
#[derive(Debug)]
pub struct ResolvedCall {
    /// The callee name as written.
    pub name: String,
    /// Index of the callee-name token in the file's filtered stream —
    /// the flow-sensitive rules use it to place calls inside CFG units.
    pub tok: usize,
    /// 1-based line of the call.
    pub line: u32,
    /// Workspace functions this may dispatch to (empty for intrinsics
    /// and havoc'd calls).
    pub targets: Vec<FnId>,
    /// Lock guards held when the call executes.
    pub held: Vec<String>,
    /// The intrinsic effect of the call itself, if it is a primitive.
    pub prim: Option<EffectKind>,
    /// The receiver's base identifier for method calls (see
    /// [`Call::receiver`]) — pool-site naming keys off it.
    pub receiver: Option<String>,
    /// Zero-based argument positions holding closure literals (see
    /// [`Call::closure_args`]).
    pub closure_args: Vec<usize>,
    /// Per argument, the ident when the argument is exactly one bare
    /// identifier (a by-value move of a local) — the buffer-lifecycle
    /// rules track pooled buffers across these.
    pub bare_args: Vec<Option<String>>,
}

/// One function in the analysis universe.
pub struct FnInfo {
    /// Workspace-relative file the function lives in.
    pub file: String,
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Index of the file's model in the scanned set.
    pub model: usize,
    /// Index of the item within the model.
    pub item: usize,
    /// Annotated `// oftt-lint: reactor-root`.
    pub root: bool,
    /// Annotated `// oftt-lint: arena` (sanctioned allocator).
    pub arena: bool,
    /// Annotated `// oftt-lint: cold-path` (declared off the reactor
    /// hot path — handshake, teardown, harness-only code).
    pub cold: bool,
    /// Direct effect primitives, in source order.
    pub prims: Vec<Prim>,
    /// Resolved call sites, in source order.
    pub calls: Vec<ResolvedCall>,
    /// Locks this function acquires directly.
    pub acquisitions: Vec<(String, u32)>,
    /// Parameter indices this function *invokes* as closures (`f(…)`
    /// where `f` is an `Fn*`-bound parameter). Callers must bind these
    /// positions to closure literals — their scan then owns the body's
    /// effects — or the call havocs at the caller.
    pub invoked_closure_params: Vec<usize>,
}

/// The inferred effect vector of one function.
#[derive(Debug, Default, Clone)]
pub struct Effects {
    /// Transitively reaches a blocking primitive.
    pub blocks: Option<Source>,
    /// Transitively reaches a panic primitive.
    pub panics: Option<Source>,
    /// Transitively reaches a fresh allocation outside the arena.
    pub allocs: Option<Source>,
    /// Transitively reaches an unresolvable call.
    pub havoc: Option<Source>,
    /// Lock names transitively acquired, each with its ground.
    pub acquires: BTreeMap<String, Source>,
}

impl Effects {
    /// The source grounding `kind`, if the effect is present.
    pub fn get(&self, kind: EffectKind) -> Option<&Source> {
        match kind {
            EffectKind::Blocks => self.blocks.as_ref(),
            EffectKind::Panics => self.panics.as_ref(),
            EffectKind::Allocs => self.allocs.as_ref(),
            EffectKind::Havoc => self.havoc.as_ref(),
        }
    }
}

/// The whole interprocedural analysis result.
pub struct Analysis {
    /// Every runtime function, indexed by [`FnId`].
    pub fns: Vec<FnInfo>,
    /// The fixpoint's effect vector per function.
    pub effects: Vec<Effects>,
    /// Merged lock graph: intra-procedural edges plus call-derived
    /// (transitive) edges. Cycle findings are computed over this.
    pub lock: LockScan,
    /// Number of resolved call edges.
    pub edge_count: usize,
    /// Fixpoint passes until stabilization.
    pub iterations: usize,
    /// Reactor roots (functions annotated `reactor-root`).
    pub roots: Vec<FnId>,
    /// Per function: the returned `Vec<u8>` is a pooled buffer — seeded
    /// by `arena`-annotated takes, propagated through `-> Vec<u8>`
    /// functions that call one. A binding initialized from such a call
    /// enters the pool-buffer typestate.
    pub returns_buffer: Vec<bool>,
    /// Per function: the set of owned-`Vec<u8>` parameter indices the
    /// body disposes of (moves onward) — passing a pooled buffer into
    /// one of these positions is a sanctioned handoff, not a leak.
    pub consumes: Vec<std::collections::BTreeSet<usize>>,
}

impl Analysis {
    /// Runs extraction, resolution, the guard interpreter, and the
    /// effect fixpoint over every `Runtime` model in `models`.
    pub fn analyze(models: &[(String, FileModel)]) -> Analysis {
        let index = FnIndex::build(models);
        let mut lock = LockScan::default();
        let mut fns: Vec<FnInfo> = Vec::new();
        let mut edge_count = 0usize;
        for &(mi, fi) in &index.fns {
            let (file, model) = &models[mi];
            let item = &model.fns[fi];
            let mut calls = callgraph::extract_calls(model, item);
            let spawn_spans = spawn_arg_spans(model, &calls);
            calls.retain(|c| !spawn_spans.iter().any(|s| s.contains(&c.tok)));
            let mut call_toks: Vec<usize> = calls.iter().map(|c| c.tok).collect();
            call_toks.sort_unstable();
            let facts = locks::interpret_fn(file, model, item, &call_toks, &mut lock);
            let arena = item.has_directive("arena");
            let mut info = FnInfo {
                file: file.clone(),
                name: item.name.clone(),
                line: item.line,
                model: mi,
                item: fi,
                root: item.has_directive("reactor-root"),
                arena,
                cold: item.has_directive("cold-path"),
                prims: Vec::new(),
                calls: Vec::new(),
                acquisitions: facts.acquisitions,
                invoked_closure_params: Vec::new(),
            };
            // Locks taken inside a spawned closure are the new thread's
            // acquisitions, not an ordering under the spawner's guards.
            if !spawn_spans.is_empty() {
                let spawned_lines: std::collections::BTreeSet<u32> = spawn_spans
                    .iter()
                    .flat_map(|s| {
                        let lo = model.tokens[s.start].line;
                        let hi = model.tokens[s.end.saturating_sub(1).max(s.start)].line;
                        lo..=hi
                    })
                    .collect();
                info.acquisitions.retain(|(_, line)| !spawned_lines.contains(line));
            }
            index_prims(model, item, &spawn_spans, &mut info);
            for call in &calls {
                let resolved = classify(&index, models, mi, item, call, &mut info);
                edge_count += resolved.targets.len();
                let mut resolved = resolved;
                resolved.held = facts.held_at.get(&call.tok).cloned().unwrap_or_default();
                info.calls.push(resolved);
            }
            if arena {
                info.prims.retain(|p| p.kind != EffectKind::Allocs);
            }
            fns.push(info);
        }
        // Closure-argument check: a callee that invokes its `Fn*`-bound
        // parameter is only transparent when the caller binds that
        // position to a closure *literal* — the caller's own scan then
        // walked the body. Any other shape (a forwarded function value,
        // a field-stored callback) re-havocs at the caller, restoring
        // the conservative policy exactly where the evidence ends.
        let mut opaque: Vec<(FnId, Prim)> = Vec::new();
        for (f, info) in fns.iter().enumerate() {
            for call in &info.calls {
                for &g in &call.targets {
                    for &p in &fns[g].invoked_closure_params {
                        if !call.closure_args.contains(&p) {
                            opaque.push((
                                f,
                                Prim {
                                    kind: EffectKind::Havoc,
                                    what: format!(
                                        "{} (callable argument {} is not a closure literal)",
                                        call.name,
                                        p + 1
                                    ),
                                    line: call.line,
                                },
                            ));
                        }
                    }
                }
            }
        }
        for (f, prim) in opaque {
            fns[f].prims.push(prim);
        }
        let (returns_buffer, consumes) = buffer_summaries(models, &fns);
        let (effects, iterations) = fixpoint(&fns);
        // Call-derived lock edges: a guard held at a call site orders
        // before everything the callee transitively acquires.
        for info in &fns {
            for call in &info.calls {
                if call.held.is_empty() {
                    continue;
                }
                for &g in &call.targets {
                    for inner in effects[g].acquires.keys() {
                        for outer in &call.held {
                            if outer != inner {
                                lock.edges
                                    .entry((outer.clone(), inner.clone()))
                                    .or_insert_with(|| (info.file.clone(), call.line));
                            }
                        }
                    }
                }
            }
        }
        lock.findings.extend(locks::find_cycles(&lock.edges));
        let roots: Vec<FnId> = (0..fns.len()).filter(|&i| fns[i].root).collect();
        Analysis { fns, effects, lock, edge_count, iterations, roots, returns_buffer, consumes }
    }

    /// The functions reachable from the reactor roots, as
    /// `(FnId, parent FnId or self for roots)` — BFS order, so parent
    /// chains are shortest paths. Functions annotated
    /// `// oftt-lint: cold-path` and everything reachable only through
    /// them are excluded: the annotation declares a subtree (handshake,
    /// teardown, harness-only code) off the hot path by policy.
    pub fn reactor_reachable(&self) -> Vec<(FnId, FnId)> {
        let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<FnId> = Default::default();
        for &r in &self.roots {
            parent.insert(r, r);
            queue.push_back(r);
        }
        let mut order = Vec::new();
        while let Some(f) = queue.pop_front() {
            order.push((f, parent[&f]));
            for call in &self.fns[f].calls {
                for &g in &call.targets {
                    if self.fns[g].cold {
                        continue;
                    }
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(g) {
                        e.insert(f);
                        queue.push_back(g);
                    }
                }
            }
        }
        order
    }

    /// The shortest root→…→`f` path as `root → a → b`, given the
    /// parent map from [`Self::reactor_reachable`].
    pub fn root_chain(&self, parents: &BTreeMap<FnId, FnId>, f: FnId) -> String {
        let mut names = vec![self.fns[f].name.clone()];
        let mut cur = f;
        while parents.get(&cur).copied().unwrap_or(cur) != cur {
            cur = parents[&cur];
            names.push(self.fns[cur].name.clone());
        }
        names.reverse();
        names.join(" → ")
    }

    /// Renders the witness chain grounding `kind` on `f`:
    /// `f → g → h: sleep (file.rs:42)`. Returns `None` if the effect
    /// is absent.
    pub fn witness(&self, f: FnId, kind: EffectKind) -> Option<String> {
        let mut names = vec![self.fns[f].name.clone()];
        let mut cur = f;
        for _ in 0..64 {
            match self.effects[cur].get(kind)? {
                Source::Prim { what, line } => {
                    return Some(format!(
                        "{}: {} ({}:{})",
                        names.join(" → "),
                        what,
                        self.fns[cur].file,
                        line
                    ));
                }
                Source::Call { callee, .. } => {
                    cur = *callee;
                    names.push(self.fns[cur].name.clone());
                }
            }
        }
        Some(format!("{} → …", names.join(" → ")))
    }

    /// Renders the chain grounding the transitive acquisition of lock
    /// `name` by `f`.
    pub fn acquire_witness(&self, f: FnId, name: &str) -> Option<String> {
        let mut names = vec![self.fns[f].name.clone()];
        let mut cur = f;
        for _ in 0..64 {
            match self.effects[cur].acquires.get(name)? {
                Source::Prim { line, .. } => {
                    return Some(format!(
                        "{}: lock({}) ({}:{})",
                        names.join(" → "),
                        name,
                        self.fns[cur].file,
                        line
                    ));
                }
                Source::Call { callee, .. } => {
                    cur = *callee;
                    names.push(self.fns[cur].name.clone());
                }
            }
        }
        None
    }
}

/// Index expressions are effect primitives the call extractor cannot
/// see (no name token); scan for them directly. Spans inside `spawn`
/// arguments execute on the new thread and are skipped.
fn index_prims(
    model: &FileModel,
    item: &crate::scanner::FnItem,
    spawn_spans: &[std::ops::Range<usize>],
    info: &mut FnInfo,
) {
    let tokens = &model.tokens;
    let mut i = item.body.start;
    while i < item.body.end {
        if let Some(nested) = model.fns.iter().find(|g| {
            g.body.start == i && g.body.start > item.body.start && g.body.end <= item.body.end
        }) {
            i = nested.body.end;
            continue;
        }
        if let Some(span) = spawn_spans.iter().find(|s| s.contains(&i)) {
            i = span.end;
            continue;
        }
        if punct(tokens, i) == Some('[') && indexes_value(tokens, i) {
            info.prims.push(Prim {
                kind: EffectKind::Panics,
                what: "index".to_string(),
                line: tokens[i].line,
            });
        }
        i += 1;
    }
}

/// Token spans of the argument lists of `spawn(…)` calls. A closure
/// shipped to `thread::spawn` (or a builder's `.spawn`) executes on the
/// *new* thread — its blocking loops, panics, and locks are that
/// thread's effects, not the spawner's, so everything inside these
/// spans is excluded from the spawning function's effect vector.
fn spawn_arg_spans(model: &FileModel, calls: &[Call]) -> Vec<std::ops::Range<usize>> {
    let tokens = &model.tokens;
    let mut spans = Vec::new();
    for c in calls {
        if c.name != "spawn" || c.is_macro {
            continue;
        }
        // Find the argument list's opening paren (possibly past a
        // turbofish), then its matching close.
        let mut open = c.tok + 1;
        while open < tokens.len()
            && punct(tokens, open) != Some('(')
            && !matches!(punct(tokens, open), Some('{') | Some(';') | Some('}'))
        {
            open += 1;
        }
        if punct(tokens, open) != Some('(') {
            continue;
        }
        let mut depth = 0usize;
        let mut close = open;
        while close < tokens.len() {
            match punct(tokens, close) {
                Some('(') => depth += 1,
                Some(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            close += 1;
        }
        if close > open + 1 {
            spans.push(open + 1..close);
        }
    }
    spans
}

/// Classifies one call: resolved workspace targets, intrinsic
/// primitive, benign, or havoc. Primitives are appended to
/// `info.prims` too, anchored at the call line.
fn classify(
    index: &FnIndex,
    models: &[(String, FileModel)],
    caller_mi: usize,
    caller: &crate::scanner::FnItem,
    call: &Call,
    info: &mut FnInfo,
) -> ResolvedCall {
    let mut out = ResolvedCall {
        name: call.name.clone(),
        tok: call.tok,
        line: call.line,
        targets: Vec::new(),
        held: Vec::new(),
        prim: None,
        receiver: call.receiver.clone(),
        closure_args: call.closure_args.clone(),
        bare_args: call.bare_args.clone(),
    };
    let prim = |info: &mut FnInfo, out: &mut ResolvedCall, kind: EffectKind, what: String| {
        info.prims.push(Prim { kind, what, line: call.line });
        out.prim = Some(kind);
    };
    let name = call.name.as_str();
    if call.is_macro {
        if PANIC_MACROS.contains(&name) {
            prim(info, &mut out, EffectKind::Panics, format!("{name}!"));
        } else if BLOCKING_MACROS.contains(&name) {
            prim(info, &mut out, EffectKind::Blocks, format!("{name}!"));
        } else if ALLOC_MACROS.contains(&name) {
            prim(info, &mut out, EffectKind::Allocs, format!("{name}!"));
        } else if !BENIGN_MACROS.contains(&name) {
            prim(info, &mut out, EffectKind::Havoc, format!("{name}!"));
        }
        return out;
    }
    // The lock machinery owns `.lock()`; `try_lock` never blocks.
    if name == "lock" || name == "try_lock" {
        return out;
    }
    // Strong ownership evidence (`Self::f`, `Type::f`, `self.f(…)`,
    // `recv.f(…)` with a type-naming receiver) beats the intrinsic
    // tables: a workspace type's own `push` is its `push` and
    // `Reactor::flush` is a wakeup post, whatever std calls those
    // names.
    out.targets = index.resolve_strong(models, caller, call);
    if !out.targets.is_empty() {
        return out;
    }
    // A bare call whose name is an `Fn*`-bound parameter of the caller
    // invokes the caller-supplied closure, not a named function. The
    // invocation itself is effect-free *here*: the closure's body lives
    // at some call site of this function, whose own scan walked those
    // tokens and owns their effects. The invoked position is recorded
    // so the post-resolution pass can verify every caller actually
    // binds it to a closure literal (anything else re-havocs at the
    // caller — see [`Analysis::analyze`]).
    if call.qualifier.is_none() && call.receiver.is_none() && caller.callable_param(name) {
        if let Some(p) = caller.params.iter().position(|p| p.callable && p.name == name) {
            if !info.invoked_closure_params.contains(&p) {
                info.invoked_closure_params.push(p);
            }
        }
        return out;
    }
    if is_blocking_effect(name) {
        prim(info, &mut out, EffectKind::Blocks, name.to_string());
        return out;
    }
    if (name == "unwrap" || name == "expect") && call.receiver.is_some() {
        prim(info, &mut out, EffectKind::Panics, format!(".{name}()"));
        return out;
    }
    // `iter::repeat/once/...` never allocate even though the `str`
    // methods of the same names do.
    if call.qualifier.as_deref() == Some("iter") {
        return out;
    }
    if ALLOC_CALLS.contains(&name)
        || (name == "new"
            && call.qualifier.as_deref().is_some_and(|q| ALLOC_NEW_OWNERS.contains(&q)))
        || (name == "from"
            && call.qualifier.as_deref().is_some_and(|q| ALLOC_FROM_OWNERS.contains(&q)))
    {
        prim(info, &mut out, EffectKind::Allocs, name.to_string());
        return out;
    }
    if BENIGN_CALLS.contains(&name) {
        return out;
    }
    // Capitalized names are tuple-struct / enum-variant constructors
    // (`Some(x)`, `ReadError::Io(e)`), not function calls — any
    // workspace fn genuinely named that way is caught by strong
    // resolution above.
    if name.chars().next().is_some_and(char::is_uppercase) {
        return out;
    }
    // `Type::method` on a non-workspace type with a benign-looking
    // constructor name: `Duration::from_millis` etc. are already in the
    // benign table; `Foo::new` on a foreign type constructs without
    // declared effects only if the name says so.
    if (name == "new" || name == "default") && call.receiver.is_none() {
        return out;
    }
    // An ALL_CAPS receiver is a constant, and the workspace defines no
    // callable constants — `Interest::READABLE.add(WRITABLE)` is a
    // method of a foreign library type, never a workspace fn. Without
    // this, such calls fan out by bare name to arbitrary same-named
    // workspace fns (operator impls especially).
    if call.receiver.as_deref().is_some_and(|r| {
        r.len() > 1 && r.chars().all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
    }) {
        return out;
    }
    // Weak name evidence comes after the tables — `q.len()` means
    // `Vec::len`, not whichever workspace fn happens to be called
    // `len`.
    out.targets = index.resolve_weak(models, caller_mi, call);
    if !out.targets.is_empty() {
        return out;
    }
    prim(info, &mut out, EffectKind::Havoc, name.to_string());
    out
}

/// The buffer-lifecycle summaries, computed alongside the effect
/// fixpoint:
///
/// * **returns-buffer** — seeded by `arena`-annotated functions whose
///   header declares `-> Vec<u8>` (the pool's `take`), then propagated
///   through `-> Vec<u8>` functions that call a returns-buffer function
///   (wrappers handing a pooled buffer outward).
/// * **consumes** — an owned-`Vec<u8>` parameter the body moves onward
///   as a bare argument of some call (`pool.give(buf)`, `list.push(buf)`,
///   a consuming helper). An owned non-`Copy` buffer moved into a call
///   is gone from the function — it can neither leak there nor be
///   recycled twice — so the caller-side typestate treats passing into
///   a consuming position as a sanctioned handoff.
fn buffer_summaries(
    models: &[(String, FileModel)],
    fns: &[FnInfo],
) -> (Vec<bool>, Vec<std::collections::BTreeSet<usize>>) {
    let item = |info: &FnInfo| &models[info.model].1.fns[info.item];
    let mut returns: Vec<bool> =
        fns.iter().map(|info| info.arena && item(info).returns_buf).collect();
    let consumes: Vec<std::collections::BTreeSet<usize>> = fns
        .iter()
        .map(|info| {
            item(info)
                .params
                .iter()
                .enumerate()
                .filter(|(_, param)| {
                    param.owned_buf
                        && info.calls.iter().any(|c| {
                            c.bare_args.iter().any(|a| a.as_deref() == Some(param.name.as_str()))
                        })
                })
                .map(|(p, _)| p)
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for (f, info) in fns.iter().enumerate() {
            if returns[f] || !item(info).returns_buf {
                continue;
            }
            if info.calls.iter().any(|c| c.targets.iter().any(|&g| returns[g])) {
                returns[f] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (returns, consumes)
}

/// The bottom-up fixpoint: monotone over a finite lattice (four option
/// bits plus a finite lock-name set per function), so it terminates;
/// passes run in `FnId` order and the first source to set an effect is
/// kept, which keeps witnesses short and deterministic.
fn fixpoint(fns: &[FnInfo]) -> (Vec<Effects>, usize) {
    let mut effects: Vec<Effects> = fns
        .iter()
        .map(|info| {
            let mut e = Effects::default();
            for p in &info.prims {
                let slot = match p.kind {
                    EffectKind::Blocks => &mut e.blocks,
                    EffectKind::Panics => &mut e.panics,
                    EffectKind::Allocs => &mut e.allocs,
                    EffectKind::Havoc => &mut e.havoc,
                };
                if slot.is_none() {
                    *slot = Some(Source::Prim { what: p.what.clone(), line: p.line });
                }
            }
            for (name, line) in &info.acquisitions {
                e.acquires
                    .entry(name.clone())
                    .or_insert(Source::Prim { what: name.clone(), line: *line });
            }
            e
        })
        .collect();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let mut changed = false;
        for f in 0..fns.len() {
            for call in &fns[f].calls {
                for &g in &call.targets {
                    if g == f {
                        continue;
                    }
                    let (gb, gp, ga, gh, gacq) = {
                        let ge = &effects[g];
                        (
                            ge.blocks.is_some(),
                            ge.panics.is_some(),
                            ge.allocs.is_some(),
                            ge.havoc.is_some(),
                            ge.acquires.keys().cloned().collect::<Vec<_>>(),
                        )
                    };
                    let src = || Source::Call { line: call.line, callee: g };
                    let fe = &mut effects[f];
                    if gb && fe.blocks.is_none() {
                        fe.blocks = Some(src());
                        changed = true;
                    }
                    if gp && fe.panics.is_none() {
                        fe.panics = Some(src());
                        changed = true;
                    }
                    if ga && fe.allocs.is_none() && !fns[f].arena {
                        fe.allocs = Some(src());
                        changed = true;
                    }
                    if gh && fe.havoc.is_none() {
                        fe.havoc = Some(src());
                        changed = true;
                    }
                    for name in gacq {
                        if let Entry::Vacant(e) = fe.acquires.entry(name) {
                            e.insert(src());
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    (effects, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::{scan, FileKind};

    fn analyze(sources: &[(&str, &str)]) -> Analysis {
        let models: Vec<(String, FileModel)> = sources
            .iter()
            .map(|(name, src)| (name.to_string(), scan(src, FileKind::Runtime, false)))
            .collect();
        Analysis::analyze(&models)
    }

    fn fid(a: &Analysis, name: &str) -> FnId {
        a.fns.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn blocking_effect_propagates_two_calls_deep() {
        let a = analyze(&[(
            "a.rs",
            "fn top() { mid(); }\n\
             fn mid() { bot(); }\n\
             fn bot() { std::thread::sleep(d); }",
        )]);
        let w = a.witness(fid(&a, "top"), EffectKind::Blocks).unwrap();
        assert_eq!(w, "top → mid → bot: sleep (a.rs:3)");
        assert!(a.effects[fid(&a, "top")].panics.is_none());
    }

    #[test]
    fn panic_effect_covers_the_extended_deny_list() {
        let a = analyze(&[(
            "a.rs",
            "fn u() { unreachable!() }\n\
             fn t() { todo!() }\n\
             fn n() { unimplemented!() }\n\
             fn r(raw: &[u8]) -> &[u8] { &raw[1..3] }\n\
             fn calls_them(raw: &[u8]) { u(); }",
        )]);
        for f in ["u", "t", "n", "r", "calls_them"] {
            assert!(a.effects[fid(&a, f)].panics.is_some(), "{f} should may_panic");
        }
    }

    #[test]
    fn alloc_effect_stops_at_the_arena() {
        let a = analyze(&[(
            "a.rs",
            "// oftt-lint: arena\n\
             fn take() -> Vec<u8> { Vec::with_capacity(64) }\n\
             fn hot() { take(); }\n\
             fn cold() -> Vec<u8> { data.to_vec() }",
        )]);
        assert!(a.effects[fid(&a, "take")].allocs.is_none());
        assert!(a.effects[fid(&a, "hot")].allocs.is_none());
        assert!(a.effects[fid(&a, "cold")].allocs.is_some());
    }

    #[test]
    fn havoc_marks_unresolvable_calls_only() {
        let a = analyze(&[(
            "a.rs",
            "fn f() { mystery_syscall(); }\n\
             fn g(v: &[u8]) { v.len(); }",
        )]);
        assert!(a.effects[fid(&a, "f")].havoc.is_some());
        assert!(a.effects[fid(&a, "g")].havoc.is_none());
    }

    #[test]
    fn acquires_flow_through_calls_and_form_transitive_edges() {
        let a = analyze(&[(
            "a.rs",
            "fn outer(&self) { let g = self.alpha.lock(); inner(); }\n\
             fn inner(&self) { let h = self.beta.lock(); }",
        )]);
        assert!(a.effects[fid(&a, "outer")].acquires.contains_key("beta"));
        assert!(a.lock.edges.contains_key(&("alpha".into(), "beta".into())));
        let w = a.acquire_witness(fid(&a, "outer"), "beta").unwrap();
        assert_eq!(w, "outer → inner: lock(beta) (a.rs:2)");
    }

    #[test]
    fn cross_function_lock_cycle_is_found() {
        let a = analyze(&[(
            "a.rs",
            "fn f(&self) { let g = self.alpha.lock(); helper(); }\n\
             fn helper(&self) { let h = self.beta.lock(); }\n\
             fn rev(&self) { let h = self.beta.lock(); helper2(); }\n\
             fn helper2(&self) { let g = self.alpha.lock(); }",
        )]);
        assert_eq!(a.lock.findings.len(), 1);
        assert!(a.lock.findings[0].message.contains("alpha, beta"));
    }

    #[test]
    fn recursion_reaches_a_fixpoint() {
        let a = analyze(&[(
            "a.rs",
            "fn ping(n: u32) { pong(n); }\n\
             fn pong(n: u32) { ping(n); std::thread::sleep(d); }",
        )]);
        assert!(a.effects[fid(&a, "ping")].blocks.is_some());
        assert!(a.iterations >= 2);
    }

    #[test]
    fn invoked_closure_params_resolve_through_literal_arguments() {
        let a = analyze(&[(
            "a.rs",
            "impl Shard { fn with_queue<R>(&self, dest: u64, f: impl FnOnce(&mut u8) -> R) -> R \
             { let mut q = self.shard.lock(); f(&mut q) }\n\
             fn drain_into(&self) { self.with_queue(7, |q| q.wrapping_add(1)); } }",
        )]);
        // `f(…)` inside with_queue is the closure parameter, not havoc.
        let wq = fid(&a, "with_queue");
        assert!(a.effects[wq].havoc.is_none(), "closure invocation must not havoc");
        assert_eq!(a.fns[wq].invoked_closure_params, vec![1]);
        // The literal-closure caller stays clean too.
        assert!(a.effects[fid(&a, "drain_into")].havoc.is_none());
    }

    #[test]
    fn non_literal_callable_argument_re_havocs_at_the_caller() {
        let a = analyze(&[(
            "a.rs",
            "fn apply(f: impl Fn()) { f() }\n\
             fn forwards(g: impl Fn()) { apply(g); }\n\
             fn literal() { apply(|| ()); }",
        )]);
        assert!(a.effects[fid(&a, "apply")].havoc.is_none());
        assert!(
            a.effects[fid(&a, "forwards")].havoc.is_some(),
            "a forwarded callable is opaque to the caller's scan"
        );
        assert!(a.effects[fid(&a, "literal")].havoc.is_none());
    }

    #[test]
    fn deserialize_is_a_table_fact_not_a_havoc() {
        let a = analyze(&[("a.rs", "fn decode(b: &[u8]) { d.deserialize(v); }")]);
        assert!(a.effects[fid(&a, "decode")].havoc.is_none());
    }

    #[test]
    fn buffer_summaries_seed_and_propagate() {
        let a = analyze(&[(
            "a.rs",
            "impl BufPool {\n\
             // oftt-lint: arena\n\
             fn take(&self, min: usize) -> Vec<u8> { Vec::with_capacity(min) }\n\
             fn give(&self, buf: Vec<u8>) { self.free.lock().push(buf); }\n\
             }\n\
             impl Enc { fn staging(&self) -> Vec<u8> { self.buf_pool.take(64) } }\n\
             fn fresh() -> Vec<u8> { Vec::new() }\n\
             fn sink(buf: Vec<u8>, n: usize) { }",
        )]);
        assert!(a.returns_buffer[fid(&a, "take")]);
        assert!(a.returns_buffer[fid(&a, "staging")], "wrapper propagates returns-buffer");
        assert!(!a.returns_buffer[fid(&a, "fresh")], "a plain Vec::new is not pooled");
        assert!(a.consumes[fid(&a, "give")].contains(&0), "give moves its buffer onward");
        assert!(a.consumes[fid(&a, "sink")].is_empty(), "sink drops its buffer");
    }

    #[test]
    fn reactor_reachability_follows_resolved_edges() {
        let a = analyze(&[(
            "a.rs",
            "// oftt-lint: reactor-root\n\
             fn on_frame(&self) { self.helper(); }\n\
             fn helper(&self) {}\n\
             fn unrelated(&self) { std::thread::sleep(d); }",
        )]);
        let reach = a.reactor_reachable();
        let names: Vec<&str> = reach.iter().map(|&(f, _)| a.fns[f].name.as_str()).collect();
        assert_eq!(names, vec!["on_frame", "helper"]);
    }
}
