//! # oftt-lint — source-level static analysis proving the code matches
//! the protocol
//!
//! oftt-verify proves the failover *protocol* correct and oftt-audit
//! checks what the *executed* schedules did; both leave a gap — code the
//! sweep never drives. This crate closes it from the other side: a
//! hand-rolled lexer ([`lexer`]) and item scanner ([`scanner`]) — no
//! rustc plugin, no external parser — feed five rule families
//! ([`rules`]) that check structural protocol properties over **all**
//! source, reached or not:
//!
//! 1. **role-confinement** — every `.role`/`.term` store flows through
//!    the annotated transition apply path ([`rules::role`]);
//! 2. **lock-order** — the static acquisition graph of nested `.lock()`
//!    calls is cycle-free, and *covers* every lock oftt-audit observed
//!    dynamically, so the static verdict is never vacuous
//!    ([`rules::locks`]);
//! 3. **nonblocking** — no blocking calls in modules that declare a
//!    bounded-latency contract ([`rules::blocking`]);
//! 4. **api-lifecycle** — the FTIM call-order DFA, statically, from the
//!    same tables the dynamic linter uses ([`rules::lifecycle`]);
//! 5. **no-panic** — no unwrap/expect/panic-macro/index on annotated
//!    hot paths ([`rules::panics`]).
//!
//! On top of the per-module families, an **interprocedural effect
//! analysis** ([`effects`]) builds a workspace-wide call graph
//! ([`callgraph`]) and runs a bottom-up fixpoint inferring `blocks`,
//! `may_panic`, `allocates`, and the transitive lock-acquisition set
//! per function, feeding three more families:
//!
//! 6. **reactor-hot-path** — everything reachable from
//!    `// oftt-lint: reactor-root` entry points is transitively
//!    nonblocking and panic-free, allocating only through the `arena`
//!    ([`rules::hotpath`]);
//! 7. **lock-across-blocking** — no guard live across a call that
//!    transitively blocks ([`rules::lock_block`]);
//! 8. **annotation-drift** — `nonblocking`/`no-panic` directives the
//!    inferred effects contradict ([`rules::drift`]); and the
//!    lock-order graph gains call-derived edges so cross-function
//!    acquisition chains are cycle-checked too.
//!
//! The flow-*insensitive* families above prove properties of call
//! *sets*; three flow-**sensitive** families run a forward dataflow
//! ([`dataflow`]) over per-function control-flow graphs ([`cfg`]) built
//! from the same token streams, so path-dependent obligations are
//! proven over **all** paths — branches, loops, `?`, early returns:
//!
//! 9. **pool-typestate** — every pooled buffer follows
//!    take → fill → (ship | recycle) on every path: use-after-recycle,
//!    double-recycle, and leak-on-early-return are findings, and the
//!    static pool-site set must cover every pool op oftt-audit observed
//!    dynamically ([`rules::pool`]);
//! 10. **epoch-stamping** — frames drained from the sharded queues are
//!     wrapped in `StampedFrame` (carrying the connection epoch) before
//!     any write-path consumption ([`rules::epoch`]);
//! 11. **conn-dfa** — every construction of a declared connection-state
//!     enum takes a transition its `dfa(...)` table admits
//!     ([`rules::conn_dfa`]).
//!
//! Findings are typed ([`report::Finding`]), suppressible through a
//! checked-in baseline (stale entries are themselves findings), and
//! serialized as an `oftt-lint-v2` JSON report validated by the unified
//! bench validator in CI.
//!
//! ## Usage
//!
//! ```text
//! cargo run -p oftt-lint -- --workspace
//! cargo run -p oftt-lint -- --workspace --baseline lint-baseline.txt \
//!     --dynamic-locks target/dynamic-locks.txt --json target/LINT.json
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod effects;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scanner;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use report::{Finding, Report};
use scanner::{FileKind, FileModel};

/// What to scan and how.
#[derive(Debug, Default)]
pub struct Options {
    /// Workspace root; file paths in findings are relative to it.
    pub root: PathBuf,
    /// Explicit files to scan instead of walking the workspace. Paths
    /// that the workspace walk would exclude (fixtures) are honored
    /// here — an explicit path is an explicit opt-in.
    pub paths: Vec<PathBuf>,
    /// Scan `#[cfg(feature = "inject_bugs")]` spans too (the seeded
    /// defects are rule violations by design).
    pub include_injected: bool,
    /// Dynamic lock base names from `oftt-audit scan --export-locks`,
    /// for the static ⊇ dynamic coverage cross-check.
    pub dynamic_locks: Vec<String>,
    /// Dynamic pool ops (`name:op`) from `oftt-audit scan
    /// --export-pool-ops`, cross-checked against the static pool-site
    /// set the same way.
    pub dynamic_pool_ops: Vec<String>,
}

/// Directories the workspace walk never descends into.
const EXCLUDED_DIRS: &[&str] = &["target", "shims", ".git", "fixtures"];

/// Classifies a workspace-relative path. `None` means "not scanned".
pub fn classify(rel: &str) -> Option<FileKind> {
    if !rel.ends_with(".rs") {
        return None;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.iter().any(|p| EXCLUDED_DIRS.contains(p)) {
        return None;
    }
    let test_like = ["tests", "examples", "benches"];
    if parts.iter().any(|p| test_like.contains(p)) {
        return Some(FileKind::TestLike);
    }
    if parts.contains(&"src") {
        return Some(FileKind::Runtime);
    }
    // Stray root-level .rs (build scripts and the like): treat as
    // test-like so only the lifecycle rule and lexer totality apply.
    Some(FileKind::TestLike)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(PathBuf, FileKind)>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !EXCLUDED_DIRS.contains(&name) && !name.starts_with('.') {
                walk(&path, root, out);
            }
        } else if let Some(kind) = relative(&path, root).as_deref().and_then(classify) {
            out.push((path, kind));
        }
    }
}

fn relative(path: &Path, root: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).unwrap_or(path);
    Some(rel.to_string_lossy().replace('\\', "/"))
}

/// Scans one source string under a chosen classification and returns
/// its findings. This is the single-file core of [`run_scan`], exposed
/// for fixture and adversarial tests.
pub fn scan_source(
    file: &str,
    source: &str,
    kind: FileKind,
    include_injected: bool,
) -> (FileModel, Vec<Finding>) {
    let model = scanner::scan(source, kind, include_injected);
    let mut findings = Vec::new();
    for d in &model.diagnostics {
        let rule = if d.message.contains("directive") { "directive" } else { "lex" };
        findings.push(Finding {
            rule,
            file: file.to_string(),
            line: d.line,
            message: d.message.clone(),
        });
    }
    findings.extend(rules::role::check(file, &model));
    findings.extend(rules::blocking::check(file, &model));
    findings.extend(rules::lifecycle::check(file, &model));
    findings.extend(rules::panics::check(file, &model));
    (model, findings)
}

/// Runs the full scan described by `opts` and returns the report
/// (pre-baseline: `suppressed` is 0 here; the caller applies the
/// baseline via [`report::apply_baseline`]).
pub fn run_scan(opts: &Options) -> Report {
    let mut report = Report::default();
    let files: Vec<(PathBuf, FileKind)> = if opts.paths.is_empty() {
        let mut found = Vec::new();
        walk(&opts.root, &opts.root, &mut found);
        found
    } else {
        opts.paths
            .iter()
            .map(|p| {
                let kind = relative(p, &opts.root)
                    .as_deref()
                    .and_then(classify)
                    .unwrap_or(FileKind::Runtime);
                (p.clone(), kind)
            })
            .collect()
    };
    let mut models: Vec<(String, FileModel)> = Vec::new();
    for (path, kind) in files {
        let rel = relative(&path, &opts.root).unwrap_or_default();
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                report.findings.push(Finding {
                    rule: "lex",
                    file: rel,
                    line: 0,
                    message: format!("cannot read file: {e}"),
                });
                continue;
            }
        };
        let (model, findings) = scan_source(&rel, &source, kind, opts.include_injected);
        report.findings.extend(findings);
        report.files_scanned += 1;
        models.push((rel, model));
    }
    // The interprocedural pass: call graph, effect fixpoint, and the
    // rule families that consume them. The lock graph it returns is the
    // intra-procedural graph *plus* call-derived edges, so the Tarjan
    // cycle check sees cross-function acquisition chains.
    let analysis = effects::Analysis::analyze(&models);
    report.findings.extend(rules::hotpath::check(&analysis));
    report.findings.extend(rules::lock_block::check(&analysis));
    report.findings.extend(rules::drift::check(&models, &analysis));
    // The flow-sensitive stage: one CFG per function in the analysis
    // universe, then the typestate/dataflow families over them. Timed
    // as a unit — `dataflow_ms` in the report is this whole block.
    let flow_start = std::time::Instant::now();
    let cfgs: Vec<cfg::Cfg> = analysis
        .fns
        .iter()
        .map(|info| cfg::build(&models[info.model].1, &models[info.model].1.fns[info.item]))
        .collect();
    report.cfg_blocks = cfgs.iter().map(|c| c.blocks.len()).sum();
    let pool_scan = rules::pool::check(&models, &analysis, &cfgs);
    report.pool_sites = pool_scan.static_sites.len();
    report.pool_tracked = pool_scan.tracked;
    report.findings.extend(pool_scan.findings);
    report.findings.extend(rules::epoch::check(&models, &analysis, &cfgs));
    let dfa_scan = rules::conn_dfa::check(&models);
    report.dfa_transitions = dfa_scan.transitions_checked;
    report.findings.extend(dfa_scan.findings);
    report.dataflow_ms = flow_start.elapsed().as_millis();
    report.dynamic_pool_checked = opts.dynamic_pool_ops.len();
    let (pool_coverage, pool_uncovered) =
        rules::pool::dynamic_coverage(&pool_scan.static_sites, &opts.dynamic_pool_ops);
    report.findings.extend(pool_coverage);
    report.dynamic_pool_uncovered = pool_uncovered;
    report.findings.extend(analysis.lock.findings.iter().cloned());
    report.lock_names = analysis.lock.names.clone();
    report.lock_edges = analysis.lock.edges.keys().cloned().collect::<BTreeSet<_>>();
    report.functions = analysis.fns.len();
    report.call_edges = analysis.edge_count;
    report.fixpoint_iterations = analysis.iterations;
    report.reactor_roots = analysis.roots.len();
    report.reactor_reachable = analysis.reactor_reachable().len();
    report.dynamic_checked = opts.dynamic_locks.len();
    let (coverage_findings, uncovered) =
        rules::locks::dynamic_coverage(&report.lock_names, &opts.dynamic_locks);
    report.findings.extend(coverage_findings);
    report.dynamic_uncovered = uncovered;
    report.findings.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_routes_the_tree() {
        assert_eq!(classify("crates/oftt/src/engine.rs"), Some(FileKind::Runtime));
        assert_eq!(classify("src/lib.rs"), Some(FileKind::Runtime));
        assert_eq!(classify("crates/oftt/tests/failover.rs"), Some(FileKind::TestLike));
        assert_eq!(classify("tests/integration.rs"), Some(FileKind::TestLike));
        assert_eq!(classify("examples/pair.rs"), Some(FileKind::TestLike));
        assert_eq!(classify("crates/bench/benches/ckpt.rs"), Some(FileKind::TestLike));
        assert_eq!(classify("shims/rand/src/lib.rs"), None);
        assert_eq!(classify("target/debug/build/x.rs"), None);
        assert_eq!(classify("crates/oftt-lint/fixtures/role_leak.rs"), None);
        assert_eq!(classify("README.md"), None);
    }

    #[test]
    fn scan_source_merges_rule_families() {
        let (_, findings) = scan_source(
            "x.rs",
            "// oftt-lint: no-panic\nfn f(x: Option<u8>) { x.unwrap(); self.role = r; }",
            FileKind::Runtime,
            false,
        );
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"no-panic"));
        assert!(rules.contains(&"role-confinement"));
    }
}
