//! Workspace-wide call-graph construction from the scanner's token
//! streams — the substrate the interprocedural effect analysis
//! ([`crate::effects`]) runs its fixpoint over.
//!
//! ## Call shapes recognized
//!
//! * bare calls — `helper(x)`;
//! * path-qualified calls — `mod::f(x)`, `Type::f(x)`, `Self::f(x)`,
//!   with turbofish (`from_bytes::<T>(x)`);
//! * UFCS calls — `<T as Trait>::f(x)` (the qualifier is the trait on
//!   the right of `as`, or the type itself without one);
//! * method calls — `recv.f(x)`, chained (`a.b().c()`), turbofished
//!   (`.collect::<Vec<_>>()`);
//! * macro invocations — `name!(…)` (recorded so the effect engine can
//!   classify panic/alloc macros; macro bodies' tokens are still walked
//!   for nested calls).
//!
//! ## Resolution
//!
//! Resolution runs in two tiers around the effect engine's intrinsic
//! tables, ordered by the strength of the evidence:
//!
//! * **strong** ([`FnIndex::resolve_strong`]) — the call names its
//!   owner: `Self::f` and `self.f(…)` bind to the enclosing `impl`'s
//!   self type, `Type::f` to methods owned by `Type` (falling out to
//!   every impl when the owner match is only a bodyless trait
//!   declaration, as in UFCS through a trait). Strong evidence beats
//!   the intrinsic tables.
//! * **weak** ([`FnIndex::resolve_weak`]) — name guessing for bare and
//!   method calls, preferring same-file functions, fanning out to all
//!   candidates otherwise (class-hierarchy-analysis style). The tables
//!   beat weak evidence: `q.len()` means `Vec::len`, not whichever
//!   workspace fn happens to be called `len`. A capitalized qualifier
//!   that strong resolution missed names a *foreign* (std) type —
//!   `Vec::new` must never bind to a workspace `new` — so it never
//!   weak-resolves; a lowercase qualifier is a module path and binds to
//!   free functions only. Trait-dispatch names (`drop`, `fmt`, …)
//!   never weak-resolve at all.
//!
//! When neither tier nor the tables claim a call, it is conservatively
//! *havoc'd* — with one carve-out: a bare call whose name is a
//! `Fn*`-bound parameter of the enclosing function is the callee
//! invoking its closure argument, and each call site records which of
//! its arguments are closure *literals* ([`Call::closure_args`]) so the
//! effect engine can check the invoked parameter was bound to a body
//! the caller's own scan already walked. Call-through-value in any
//! other shape (`(entry.encode)(body)`, closures stored in fields)
//! stays havoc'd — a documented policy, not a silent assumption.

use std::collections::BTreeMap;

use crate::lexer::{Token, TokenKind};
use crate::rules::{ident, punct, receiver_base};
use crate::scanner::{FileModel, FnItem};

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Index of the callee-name token in the file's filtered stream.
    pub tok: usize,
    /// 1-based source line of the callee name.
    pub line: u32,
    /// The callee name (`f` in all the shapes above).
    pub name: String,
    /// The path segment immediately qualifying the name: `Type::f` →
    /// `Type`, `<T as Trait>::f` → `Trait`, `Self::f` → `Self`.
    pub qualifier: Option<String>,
    /// The receiver's base identifier for method calls (`self.queue
    /// .push(…)` → `queue`; plain `self.f(…)` → `self`).
    pub receiver: Option<String>,
    /// True for `name!(…)` macro invocations.
    pub is_macro: bool,
    /// Zero-based argument positions holding a closure *literal*
    /// (`|…| …` or `move |…| …`), counted without the method-call
    /// receiver — the same numbering [`crate::scanner::FnItem::params`]
    /// uses. The effect engine uses this to resolve higher-order calls:
    /// a callee that invokes its `f` parameter is only transparent when
    /// the argument at `f`'s position is a literal closure whose body
    /// tokens the caller's own scan already walked.
    pub closure_args: Vec<usize>,
    /// Per argument (same numbering), the ident when the argument is
    /// exactly one bare identifier — a by-value move of a local, the
    /// shape the pool-buffer typestate tracks ownership across.
    pub bare_args: Vec<Option<String>>,
}

/// Words that read like `word (…)` without being calls.
const CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "move", "let", "fn", "impl", "use", "mod", "pub", "where", "unsafe", "ref", "dyn", "mut",
    "crate", "super", "static", "const", "type", "struct", "enum", "trait", "await", "box",
];

/// Extracts every call site in `item`'s body, skipping spans owned by
/// fns nested inside it (their calls are attributed to the nested item).
pub fn extract_calls(model: &FileModel, item: &FnItem) -> Vec<Call> {
    let tokens = &model.tokens;
    let mut out = Vec::new();
    let mut i = item.body.start;
    while i < item.body.end {
        if let Some(nested) = model.fns.iter().find(|g| {
            g.body.start == i && g.body.start > item.body.start && g.body.end <= item.body.end
        }) {
            i = nested.body.end;
            continue;
        }
        if let Some(name) = ident(tokens, i) {
            if let Some(call) = call_at(tokens, i, name) {
                out.push(call);
            }
        }
        i += 1;
    }
    out
}

/// Classifies the identifier at `i` as a call site, if it is one.
fn call_at(tokens: &[Token], i: usize, name: &str) -> Option<Call> {
    if CALL_KEYWORDS.contains(&name) {
        return None;
    }
    // The name in `fn name(…)` is a definition, not a call.
    if matches!(i.checked_sub(1).and_then(|p| ident(tokens, p)), Some("fn")) {
        return None;
    }
    let line = tokens[i].line;
    // A macro invocation is `name !` followed by a delimiter — the
    // delimiter check keeps `a != b` (single-char puncts: `!` then `=`)
    // from reading as a macro named `a`.
    if punct(tokens, i + 1) == Some('!')
        && matches!(punct(tokens, i + 2), Some('(') | Some('[') | Some('{'))
        && name != "macro_rules"
    {
        return Some(Call {
            tok: i,
            line,
            name: name.to_string(),
            qualifier: None,
            receiver: None,
            is_macro: true,
            closure_args: Vec::new(),
            bare_args: Vec::new(),
        });
    }
    // The argument list opens right after the name, or after a
    // turbofish: `name::<T>(…)`.
    let open = if punct(tokens, i + 1) == Some('(') {
        i + 1
    } else if punct(tokens, i + 1) == Some(':')
        && punct(tokens, i + 2) == Some(':')
        && punct(tokens, i + 3) == Some('<')
    {
        let close = matching_angle(tokens, i + 3)?;
        if punct(tokens, close + 1) == Some('(') {
            close + 1
        } else {
            return None;
        }
    } else {
        return None;
    };
    let (closure_args, bare_args) = arg_shapes(tokens, open);
    // Method call: the name follows a `.`.
    if punct(tokens, i.wrapping_sub(1)) == Some('.') && i > 0 {
        return Some(Call {
            tok: i,
            line,
            name: name.to_string(),
            qualifier: None,
            receiver: receiver_base(tokens, i - 1),
            is_macro: false,
            closure_args,
            bare_args,
        });
    }
    // Path-qualified call: the name follows `::`.
    let qualifier = if i >= 2
        && punct(tokens, i - 1) == Some(':')
        && punct(tokens, i - 2) == Some(':')
        && i >= 3
    {
        path_qualifier(tokens, i - 3)
    } else {
        None
    };
    Some(Call {
        tok: i,
        line,
        name: name.to_string(),
        qualifier,
        receiver: None,
        is_macro: false,
        closure_args,
        bare_args,
    })
}

/// Shapes of the arguments in the list opening at `open`: the zero-based
/// positions holding closure literals (`|…|` or `move |…|`), and — per
/// argument — the ident when the argument is exactly one bare
/// identifier. Commas are split at paren/bracket/brace depth one —
/// angle brackets are not tracked (comparison operators would unbalance
/// them), so a turbofish *inside an argument* can shift later indices;
/// calls whose shapes matter here do not take that form in this
/// workspace.
fn arg_shapes(tokens: &[Token], open: usize) -> (Vec<usize>, Vec<Option<String>>) {
    let mut closures = Vec::new();
    let mut bares: Vec<Option<String>> = Vec::new();
    let mut depth = 0isize;
    // The current argument: (token count, sole ident so far).
    let mut arg_len = 0usize;
    let mut arg_ident: Option<String> = None;
    let mut any_arg = false;
    let mut i = open;
    while i < tokens.len() {
        let at_arg_start = arg_len == 0;
        match punct(tokens, i) {
            Some('(' | '[' | '{') if depth == 0 && i == open => depth = 1,
            Some('(' | '[' | '{') => {
                depth += 1;
                arg_len += 1;
                any_arg = true;
            }
            Some(')' | ']' | '}') => {
                depth -= 1;
                if depth <= 0 {
                    break;
                }
                arg_len += 1;
            }
            Some(',') if depth == 1 => {
                bares.push(if arg_len == 1 { arg_ident.take() } else { None });
                arg_ident = None;
                arg_len = 0;
            }
            _ => {
                any_arg = true;
                if at_arg_start && depth == 1 {
                    let is_closure = punct(tokens, i) == Some('|')
                        || (ident(tokens, i) == Some("move") && punct(tokens, i + 1) == Some('|'));
                    if is_closure {
                        closures.push(bares.len());
                    }
                }
                if let Some(name) = ident(tokens, i) {
                    arg_ident = Some(name.to_string());
                }
                arg_len += 1;
            }
        }
        i += 1;
    }
    if any_arg || arg_len > 0 {
        bares.push(if arg_len == 1 { arg_ident } else { None });
    }
    (closures, bares)
}

/// The qualifying segment ending at `j` (the token just left of `::`):
/// an ident (`Type::f`), or a `<…>` UFCS group whose qualifier is the
/// trait right of `as` — or, with no `as`, the first ident inside.
fn path_qualifier(tokens: &[Token], j: usize) -> Option<String> {
    if let Some(name) = ident(tokens, j) {
        return Some(name.to_string());
    }
    if punct(tokens, j) != Some('>') {
        return None;
    }
    // Walk back to the matching `<` of the UFCS group.
    let mut depth = 0isize;
    let mut k = j;
    loop {
        match punct(tokens, k) {
            Some('>') if !matches!(k.checked_sub(1).and_then(|p| punct(tokens, p)), Some('-')) => {
                depth += 1
            }
            Some('<') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        k = k.checked_sub(1)?;
    }
    let group = &tokens[k..=j];
    let after_as = group
        .iter()
        .position(|t| matches!(&t.kind, TokenKind::Ident(s) if s == "as"))
        .and_then(|p| {
            group[p + 1..].iter().find_map(|t| match &t.kind {
                TokenKind::Ident(s) => Some(s.clone()),
                _ => None,
            })
        });
    after_as.or_else(|| {
        group.iter().find_map(|t| match &t.kind {
            TokenKind::Ident(s) if s != "as" && s != "dyn" => Some(s.clone()),
            _ => None,
        })
    })
}

/// Index of the `>` closing the `<` at `open`, tolerant of `->` inside
/// (`::<fn(&u8) -> u8>`). `None` on malformed input.
fn matching_angle(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0isize;
    let mut i = open;
    while i < tokens.len() {
        match punct(tokens, i) {
            Some('<') => depth += 1,
            Some('>') if !matches!(i.checked_sub(1).and_then(|p| punct(tokens, p)), Some('-')) => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            Some(';') | Some('{') => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// A function's position in the workspace-wide index: `(model index,
/// fn index within that model)` flattened to one id.
pub type FnId = usize;

/// The global function index plus name/owner lookup tables.
pub struct FnIndex {
    /// `(model idx, fn idx)` for every runtime function, in file order.
    pub fns: Vec<(usize, usize)>,
    by_name: BTreeMap<String, Vec<FnId>>,
    by_owner_name: BTreeMap<(String, String), Vec<FnId>>,
}

impl FnIndex {
    /// Builds the index over every `Runtime` model's functions.
    pub fn build(models: &[(String, FileModel)]) -> FnIndex {
        let mut index =
            FnIndex { fns: Vec::new(), by_name: BTreeMap::new(), by_owner_name: BTreeMap::new() };
        for (mi, (_, model)) in models.iter().enumerate() {
            if model.kind != crate::scanner::FileKind::Runtime {
                continue;
            }
            for (fi, item) in model.fns.iter().enumerate() {
                let id = index.fns.len();
                index.fns.push((mi, fi));
                index.by_name.entry(item.name.clone()).or_default().push(id);
                if let Some(owner) = &item.owner {
                    index
                        .by_owner_name
                        .entry((owner.clone(), item.name.clone()))
                        .or_default()
                        .push(id);
                }
            }
        }
        index
    }

    /// Strong-evidence resolution: the call names its owner. `Self::f`
    /// and `self.f(…)` bind to the enclosing impl's self type, `Type::f`
    /// to methods owned by `Type`. Empty means "no ownership evidence"
    /// — the effect engine consults its intrinsic tables next, then
    /// [`Self::resolve_weak`].
    pub fn resolve_strong(
        &self,
        models: &[(String, FileModel)],
        caller: &FnItem,
        call: &Call,
    ) -> Vec<FnId> {
        if call.is_macro {
            return Vec::new();
        }
        // A candidate set that is all bodyless trait declarations would
        // swallow the impls' effects — fan out to every same-named fn
        // (the impls included) instead.
        let with_bodies = |v: &Vec<FnId>| {
            v.iter().any(|&id| {
                let (mi, fi) = self.fns[id];
                !models[mi].1.fns[fi].body.is_empty()
            })
        };
        // `Self::f` / `Type::f`: methods owned by that type.
        if let Some(q) = &call.qualifier {
            let owner = if q == "Self" { caller.owner.as_deref() } else { Some(q.as_str()) };
            if let Some(owner) = owner {
                if let Some(v) = self.by_owner_name.get(&(owner.to_string(), call.name.clone())) {
                    if with_bodies(v) {
                        return v.clone();
                    }
                    if let Some(all) = self.by_name.get(&call.name) {
                        return all.clone();
                    }
                }
            }
        }
        // `self.f(…)`: methods of the enclosing impl's type.
        if call.receiver.as_deref() == Some("self") {
            if let Some(owner) = &caller.owner {
                if let Some(v) = self.by_owner_name.get(&(owner.clone(), call.name.clone())) {
                    if with_bodies(v) {
                        return v.clone();
                    }
                }
            }
        }
        // `recv.f(…)` where `recv` snake-names a workspace type that
        // defines `f` with a body (`pool` → `BufPool::give`, `batch` →
        // `FrameBatch::add`): the variable is named after the type it
        // holds, which is ownership evidence nearly as strong as
        // `self`. This runs before the intrinsic tables so that
        // `reactor.flush(conn)` means `Reactor::flush` — a wakeup post
        // — and not the blocking io `flush`.
        if let Some(recv) = call.receiver.as_deref() {
            if recv != "self" {
                if let Some(all) = self.by_name.get(&call.name) {
                    let matched: Vec<FnId> = all
                        .iter()
                        .copied()
                        .filter(|&id| {
                            let (mi, fi) = self.fns[id];
                            let item = &models[mi].1.fns[fi];
                            !item.body.is_empty()
                                && item
                                    .owner
                                    .as_deref()
                                    .is_some_and(|o| owner_matches_receiver(o, recv))
                        })
                        .collect();
                    if !matched.is_empty() {
                        return matched;
                    }
                }
            }
        }
        Vec::new()
    }

    /// Weak-evidence resolution: name guessing for calls the strong
    /// tier and the intrinsic tables both declined. Same-file functions
    /// are preferred; otherwise the call fans out to every candidate.
    pub fn resolve_weak(
        &self,
        models: &[(String, FileModel)],
        caller_mi: usize,
        call: &Call,
    ) -> Vec<FnId> {
        if call.is_macro || TRAIT_DISPATCH.contains(&call.name.as_str()) {
            return Vec::new();
        }
        let Some(all) = self.by_name.get(&call.name) else { return Vec::new() };
        if let Some(q) = &call.qualifier {
            // A capitalized qualifier the strong tier missed names a
            // foreign (std) type: `Instant::now` must never bind to a
            // workspace `now`. A lowercase qualifier is a module path —
            // free functions only.
            if q.chars().next().is_some_and(char::is_uppercase) {
                return Vec::new();
            }
            return all
                .iter()
                .copied()
                .filter(|&id| {
                    let (mi, fi) = self.fns[id];
                    models[mi].1.fns[fi].owner.is_none()
                })
                .collect();
        }
        // Receiver-type heuristic: `shared.space.browse(…)` most
        // plausibly dispatches to an owner whose snake_cased name ends
        // in `space` (`AddressSpace`), not to every `browse` in the
        // workspace. Only applied when it actually narrows — a receiver
        // matching no candidate keeps the full CHA fan-out.
        if let Some(recv) = call.receiver.as_deref() {
            let matching: Vec<FnId> = all
                .iter()
                .copied()
                .filter(|&id| {
                    let (mi, fi) = self.fns[id];
                    models[mi].1.fns[fi]
                        .owner
                        .as_deref()
                        .is_some_and(|o| owner_matches_receiver(o, recv))
                })
                .collect();
            if !matching.is_empty() {
                return matching;
            }
        }
        let local: Vec<FnId> =
            all.iter().copied().filter(|&id| self.fns[id].0 == caller_mi).collect();
        if !local.is_empty() {
            return local;
        }
        all.clone()
    }

    /// Both tiers back to back, tables-unaware — the effect engine
    /// interleaves its intrinsic tables between them; this combined
    /// form exists for tests and external callers.
    pub fn resolve(
        &self,
        models: &[(String, FileModel)],
        caller_mi: usize,
        caller: &FnItem,
        call: &Call,
    ) -> Vec<FnId> {
        let strong = self.resolve_strong(models, caller, call);
        if !strong.is_empty() {
            return strong;
        }
        self.resolve_weak(models, caller_mi, call)
    }
}

/// True when a field/variable named `recv` plausibly holds a value of
/// type `owner`: the snake_cased owner equals the receiver or ends with
/// `_recv` (`AddressSpace` ↔ `space`, `MsgQueue` ↔ `queue`).
fn owner_matches_receiver(owner: &str, recv: &str) -> bool {
    if recv == "self" {
        return false;
    }
    let mut snake = String::with_capacity(owner.len() + 4);
    for c in owner.chars() {
        if c.is_uppercase() {
            if !snake.is_empty() {
                snake.push('_');
            }
            snake.extend(c.to_lowercase());
        } else {
            snake.push(c);
        }
    }
    snake == recv || snake.ends_with(&format!("_{recv}"))
}

/// Method names that dispatch through std traits: `drop(x)` or
/// `x.fmt(f)` mean the trait far more often than any workspace fn that
/// happens to share the name, so these never resolve on name evidence
/// alone — only through an explicit qualifier or a `self` receiver.
const TRAIT_DISPATCH: &[&str] = &[
    "drop",
    "clone",
    "fmt",
    "default",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "next",
    "deref",
    "deref_mut",
    "index",
    "index_mut",
    "from",
    "into",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::{scan, FileKind};

    fn calls_of(src: &str) -> Vec<Call> {
        let model = scan(src, FileKind::Runtime, false);
        extract_calls(&model, &model.fns[0])
    }

    fn shapes(src: &str) -> Vec<(String, Option<String>, Option<String>, bool)> {
        calls_of(src).into_iter().map(|c| (c.name, c.qualifier, c.receiver, c.is_macro)).collect()
    }

    #[test]
    fn bare_and_qualified_calls_are_extracted() {
        assert_eq!(
            shapes("fn f() { helper(1); comsim::marshal::from_bytes(x); }"),
            vec![
                ("helper".into(), None, None, false),
                ("from_bytes".into(), Some("marshal".into()), None, false),
            ]
        );
    }

    #[test]
    fn self_qualified_calls_carry_the_self_qualifier() {
        assert_eq!(
            shapes("fn f() { Self::helper(1); }"),
            vec![("helper".into(), Some("Self".into()), None, false)]
        );
    }

    #[test]
    fn ufcs_calls_resolve_the_trait_qualifier() {
        assert_eq!(
            shapes("fn f(x: T) { <T as Codec>::encode(x); }"),
            vec![("encode".into(), Some("Codec".into()), None, false)]
        );
        assert_eq!(
            shapes("fn f(x: T) { <Frame>::parse(x); }"),
            vec![("parse".into(), Some("Frame".into()), None, false)]
        );
    }

    #[test]
    fn turbofish_calls_are_still_calls() {
        assert_eq!(
            shapes("fn f(b: &[u8]) { from_bytes::<WatchdogTable>(b); }"),
            vec![("from_bytes".into(), None, None, false)]
        );
        // `->` inside the turbofish must not unbalance the angles.
        assert_eq!(
            shapes("fn f() { make::<fn(&u8) -> u8>(); }"),
            vec![("make".into(), None, None, false)]
        );
    }

    #[test]
    fn method_chains_yield_every_link() {
        assert_eq!(
            shapes("fn f(&self) { self.queue.pull().encode().ship(); }"),
            vec![
                ("pull".into(), None, Some("queue".into()), false),
                ("encode".into(), None, Some("pull".into()), false),
                ("ship".into(), None, Some("encode".into()), false),
            ]
        );
    }

    #[test]
    fn method_turbofish_is_a_call() {
        assert_eq!(
            shapes("fn f(v: Vec<u8>) { v.iter().collect::<Vec<_>>(); }"),
            vec![
                ("iter".into(), None, Some("v".into()), false),
                ("collect".into(), None, Some("iter".into()), false),
            ]
        );
    }

    #[test]
    fn macros_are_recorded_and_their_arguments_scanned() {
        assert_eq!(
            shapes("fn f() { format!(\"{}\", helper()); }"),
            vec![("format".into(), None, None, true), ("helper".into(), None, None, false),]
        );
    }

    #[test]
    fn inequality_is_not_a_macro_invocation() {
        // `!=` lexes as `!` then `=`; only a delimiter after `!` makes
        // a macro.
        assert_eq!(
            shapes("fn f(a: u8, b: u8) { if a.kind != b { g(); } }"),
            vec![("g".into(), None, None, false),]
        );
        assert_eq!(shapes("fn f() { assert![x > 0]; }"), vec![("assert".into(), None, None, true)]);
    }

    #[test]
    fn closure_literal_argument_positions_are_recorded() {
        let calls = calls_of("fn f(&self) { self.with_queue(dest, |q| q.pop()); }");
        let wq = calls.iter().find(|c| c.name == "with_queue").unwrap();
        assert_eq!(wq.closure_args, vec![1]);
        let calls = calls_of("fn f() { spawn(move || run()); retain(x, 3); }");
        assert_eq!(calls.iter().find(|c| c.name == "spawn").unwrap().closure_args, vec![0]);
        assert!(calls.iter().find(|c| c.name == "retain").unwrap().closure_args.is_empty());
        // The closure's own body calls are still walked.
        assert!(calls.iter().any(|c| c.name == "run"));
    }

    #[test]
    fn bare_ident_arguments_are_recorded_per_position() {
        let calls = calls_of("fn f(&self) { self.pool.give(staging); ship(dest, buf, b.len()); }");
        let give = calls.iter().find(|c| c.name == "give").unwrap();
        assert_eq!(give.bare_args, vec![Some("staging".to_string())]);
        let ship = calls.iter().find(|c| c.name == "ship").unwrap();
        assert_eq!(ship.bare_args, vec![Some("dest".to_string()), Some("buf".to_string()), None]);
        // `&buf` borrows — two tokens, not a bare move.
        let calls = calls_of("fn f() { fill(&mut buf); done(); }");
        assert_eq!(calls.iter().find(|c| c.name == "fill").unwrap().bare_args, vec![None]);
        assert!(calls.iter().find(|c| c.name == "done").unwrap().bare_args.is_empty());
    }

    #[test]
    fn keywords_and_definitions_are_not_calls() {
        assert_eq!(shapes("fn f(x: u8) { if (x > 0) { return (1); } }"), vec![]);
        let model = scan(
            "fn outer() { fn inner() { nested_call(); } outer_call(); }",
            FileKind::Runtime,
            false,
        );
        let outer_calls: Vec<String> =
            extract_calls(&model, &model.fns[0]).into_iter().map(|c| c.name).collect();
        assert_eq!(outer_calls, vec!["outer_call"]);
        let inner_calls: Vec<String> =
            extract_calls(&model, &model.fns[1]).into_iter().map(|c| c.name).collect();
        assert_eq!(inner_calls, vec!["nested_call"]);
    }

    fn index_of(sources: &[(&str, &str)]) -> (Vec<(String, FileModel)>, FnIndex) {
        let models: Vec<(String, FileModel)> = sources
            .iter()
            .map(|(name, src)| (name.to_string(), scan(src, FileKind::Runtime, false)))
            .collect();
        let index = FnIndex::build(&models);
        (models, index)
    }

    fn resolved_names(
        models: &[(String, FileModel)],
        index: &FnIndex,
        caller_mi: usize,
        caller_fi: usize,
    ) -> Vec<Vec<String>> {
        let caller = &models[caller_mi].1.fns[caller_fi];
        extract_calls(&models[caller_mi].1, caller)
            .iter()
            .map(|c| {
                index
                    .resolve(models, caller_mi, caller, c)
                    .into_iter()
                    .map(|id| {
                        let (mi, fi) = index.fns[id];
                        format!("{}::{}", models[mi].0, models[mi].1.fns[fi].name)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn self_calls_resolve_to_the_enclosing_impl() {
        let (models, index) = index_of(&[
            ("a.rs", "impl Pool { fn take(&self) { self.refill(); } fn refill(&self) {} }"),
            ("b.rs", "impl Other { fn refill(&self) {} }"),
        ]);
        assert_eq!(resolved_names(&models, &index, 0, 0), vec![vec!["a.rs::refill".to_string()]]);
    }

    #[test]
    fn ufcs_resolves_through_the_trait_owner() {
        let (models, index) = index_of(&[
            ("a.rs", "fn f(x: X) { <X as Enc>::encode(x); }"),
            ("b.rs", "trait Enc { fn encode(&self); } impl Enc for Y { fn encode(&self) {} }"),
        ]);
        // The trait's own declaration is bodyless, so resolution falls
        // through to every `encode` with a body — Y's impl included.
        assert_eq!(
            resolved_names(&models, &index, 0, 0),
            vec![vec!["b.rs::encode".to_string(), "b.rs::encode".to_string()]]
        );
    }

    #[test]
    fn ambiguous_methods_fan_out_to_all_candidates() {
        let (models, index) = index_of(&[
            ("a.rs", "fn f(t: T) { t.record(1); }"),
            ("b.rs", "impl A { fn record(&self, x: u8) {} } impl B { fn record(&self, x: u8) {} }"),
        ]);
        assert_eq!(
            resolved_names(&models, &index, 0, 0),
            vec![vec!["b.rs::record".to_string(), "b.rs::record".to_string()]]
        );
    }

    #[test]
    fn bare_calls_prefer_same_file_helpers() {
        let (models, index) = index_of(&[
            ("a.rs", "fn f() { helper(); } fn helper() {}"),
            ("b.rs", "fn helper() {}"),
        ]);
        assert_eq!(resolved_names(&models, &index, 0, 0), vec![vec!["a.rs::helper".to_string()]]);
    }
}
