//! Findings, the baseline/suppression file, and the `oftt-lint-v2`
//! machine-readable report.
//!
//! The baseline is a tab-separated `rule \t file \t message` list, one
//! suppressed finding per line, `#` comments allowed. Line numbers are
//! deliberately absent: a baseline keyed on line numbers rots on every
//! unrelated edit, while (rule, file, message) survives drift and still
//! pins *which* finding was accepted. `--write-baseline` regenerates the
//! file from the current findings. A baseline entry that matches *no*
//! current finding is stale — [`apply_baseline`] returns those keys and
//! the CLI turns each into a `stale-baseline` finding, so a fixed
//! defect cannot leave a silent suppression behind.
//!
//! The JSON report is validated in CI by the unified bench validator
//! (`crates/bench/src/validate.rs`, `oftt-lint-v2` arm): acceptance is
//! zero non-baselined findings, zero dynamic lock or pool sites missing
//! from the static model, and a scan that actually covered the
//! workspace (non-zero CFG blocks and typestate coverage).

use std::collections::BTreeSet;
use std::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// The rule family: `role-confinement`, `lock-order`, `lock-coverage`,
    /// `nonblocking`, `api-lifecycle`, `no-panic`, `lex`, or `directive`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// The full scan result, ready to print or serialize.
#[derive(Debug, Default)]
pub struct Report {
    /// Non-suppressed findings, sorted.
    pub findings: Vec<Finding>,
    /// How many findings the baseline suppressed.
    pub suppressed: usize,
    /// How many files the scan covered.
    pub files_scanned: usize,
    /// Runtime functions in the call-graph universe.
    pub functions: usize,
    /// Resolved call edges between them.
    pub call_edges: usize,
    /// Effect-fixpoint passes until stabilization.
    pub fixpoint_iterations: usize,
    /// Functions annotated `reactor-root`.
    pub reactor_roots: usize,
    /// Functions reachable from the reactor roots.
    pub reactor_reachable: usize,
    /// Every statically discovered lock name.
    pub lock_names: BTreeSet<String>,
    /// Static acquisition-order edges (outer, inner).
    pub lock_edges: BTreeSet<(String, String)>,
    /// How many dynamically observed lock sites were cross-checked.
    pub dynamic_checked: usize,
    /// Dynamic lock sites with no static acquisition — must be empty.
    pub dynamic_uncovered: Vec<String>,
    /// Basic blocks across every per-function CFG.
    pub cfg_blocks: usize,
    /// Wall-clock spent in the flow-sensitive stage (CFG construction
    /// plus every dataflow solve), in milliseconds.
    pub dataflow_ms: u128,
    /// Static pool call sites (`name:op`) the typestate rule found.
    pub pool_sites: usize,
    /// Pooled-buffer bindings tracked through the typestate dataflow.
    pub pool_tracked: usize,
    /// DFA-governed constructions checked against a declared table.
    pub dfa_transitions: usize,
    /// How many dynamically observed pool ops were cross-checked.
    pub dynamic_pool_checked: usize,
    /// Dynamic pool ops with no static site — must be empty.
    pub dynamic_pool_uncovered: Vec<String>,
}

/// Parses a baseline file into suppression keys. Unparseable lines are
/// returned as errors rather than silently ignored — a malformed
/// baseline must not quietly stop suppressing.
pub fn parse_baseline(text: &str) -> Result<BTreeSet<(String, String, String)>, String> {
    let mut keys = BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(file), Some(message)) => {
                keys.insert((rule.to_string(), file.to_string(), message.to_string()));
            }
            _ => {
                return Err(format!(
                    "baseline line {}: expected rule<TAB>file<TAB>message, got {line:?}",
                    i + 1
                ));
            }
        }
    }
    Ok(keys)
}

/// Splits findings into (kept, suppressed-count, stale-keys) against a
/// baseline. A stale key is a baseline entry that matched nothing — the
/// accepted finding no longer exists and the suppression must go.
pub fn apply_baseline(
    findings: Vec<Finding>,
    baseline: &BTreeSet<(String, String, String)>,
) -> (Vec<Finding>, usize, Vec<(String, String, String)>) {
    let mut kept = Vec::new();
    let mut suppressed = 0;
    let mut matched: BTreeSet<&(String, String, String)> = BTreeSet::new();
    for f in findings {
        let key = (f.rule.to_string(), f.file.clone(), f.message.clone());
        if let Some(hit) = baseline.get(&key) {
            suppressed += 1;
            matched.insert(hit);
        } else {
            kept.push(f);
        }
    }
    let stale = baseline.iter().filter(|k| !matched.contains(k)).cloned().collect();
    (kept, suppressed, stale)
}

/// Renders findings as baseline lines (for `--write-baseline`).
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# oftt-lint baseline: accepted findings, one per line as\n\
         # rule<TAB>file<TAB>message. Regenerate with `oftt-lint --write-baseline`.\n",
    );
    let keys: BTreeSet<(&str, &str, &str)> =
        findings.iter().map(|f| (f.rule, f.file.as_str(), f.message.as_str())).collect();
    for (rule, file, message) in keys {
        out.push_str(&format!("{rule}\t{file}\t{message}\n"));
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes the report as an `oftt-lint-v2` JSON document.
pub fn to_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"schema\": \"oftt-lint-v2\",\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"suppressed\": {},\n", report.suppressed));
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str(&format!(
        "  \"callgraph\": {{\"functions\": {}, \"edges\": {}, \"fixpoint_iterations\": {}, \
         \"reactor_roots\": {}, \"reactor_reachable\": {}}},\n",
        report.functions,
        report.call_edges,
        report.fixpoint_iterations,
        report.reactor_roots,
        report.reactor_reachable,
    ));
    out.push_str(&format!(
        "  \"lock_graph\": {{\"locks\": {}, \"edges\": {}, \"lock_names\": [{}], \
         \"edge_list\": [{}]}},\n",
        report.lock_names.len(),
        report.lock_edges.len(),
        report
            .lock_names
            .iter()
            .map(|n| format!("\"{}\"", json_escape(n)))
            .collect::<Vec<_>>()
            .join(", "),
        report
            .lock_edges
            .iter()
            .map(|(a, b)| format!("[\"{}\", \"{}\"]", json_escape(a), json_escape(b)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "  \"dynamic_locks\": {{\"checked\": {}, \"uncovered\": {}, \"uncovered_names\": [{}]}},\n",
        report.dynamic_checked,
        report.dynamic_uncovered.len(),
        report
            .dynamic_uncovered
            .iter()
            .map(|n| format!("\"{}\"", json_escape(n)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "  \"dataflow\": {{\"cfg_blocks\": {}, \"dataflow_ms\": {}, \"pool_sites\": {}, \
         \"pool_tracked\": {}, \"dfa_transitions\": {}}},\n",
        report.cfg_blocks,
        report.dataflow_ms,
        report.pool_sites,
        report.pool_tracked,
        report.dfa_transitions,
    ));
    out.push_str(&format!(
        "  \"dynamic_pools\": {{\"checked\": {}, \"uncovered\": {}, \"uncovered_names\": [{}]}}\n",
        report.dynamic_pool_checked,
        report.dynamic_pool_uncovered.len(),
        report
            .dynamic_pool_uncovered
            .iter()
            .map(|n| format!("\"{}\"", json_escape(n)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32, message: &str) -> Finding {
        Finding { rule, file: file.to_string(), line, message: message.to_string() }
    }

    #[test]
    fn baseline_round_trips() {
        let findings = vec![
            finding("no-panic", "a.rs", 3, "unwrap on a hot path"),
            finding("nonblocking", "b.rs", 9, "call to blocking `sleep`"),
        ];
        let text = render_baseline(&findings);
        let keys = parse_baseline(&text).unwrap();
        let (kept, suppressed, stale) = apply_baseline(findings, &keys);
        assert!(kept.is_empty());
        assert_eq!(suppressed, 2);
        assert!(stale.is_empty());
    }

    #[test]
    fn baseline_suppresses_regardless_of_line_drift() {
        let keys = parse_baseline("no-panic\ta.rs\tunwrap on a hot path\n").unwrap();
        let moved = vec![finding("no-panic", "a.rs", 999, "unwrap on a hot path")];
        let (kept, suppressed, stale) = apply_baseline(moved, &keys);
        assert!(kept.is_empty());
        assert_eq!(suppressed, 1);
        assert!(stale.is_empty());
    }

    #[test]
    fn unmatched_baseline_entries_come_back_stale() {
        let keys = parse_baseline(
            "no-panic\ta.rs\tunwrap on a hot path\nnonblocking\tgone.rs\told accepted finding\n",
        )
        .unwrap();
        let findings = vec![finding("no-panic", "a.rs", 3, "unwrap on a hot path")];
        let (kept, suppressed, stale) = apply_baseline(findings, &keys);
        assert!(kept.is_empty());
        assert_eq!(suppressed, 1);
        assert_eq!(
            stale,
            vec![(
                "nonblocking".to_string(),
                "gone.rs".to_string(),
                "old accepted finding".to_string()
            )]
        );
    }

    #[test]
    fn non_baselined_findings_survive() {
        let keys = parse_baseline("# just a comment\n").unwrap();
        let findings = vec![finding("lex", "c.rs", 1, "unterminated string literal")];
        let (kept, suppressed, stale) = apply_baseline(findings, &keys);
        assert_eq!(kept.len(), 1);
        assert_eq!(suppressed, 0);
        assert!(stale.is_empty());
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(parse_baseline("no tabs here\n").is_err());
    }

    #[test]
    fn json_report_has_the_v2_shape() {
        let mut report = Report { files_scanned: 90, suppressed: 1, ..Default::default() };
        report.lock_names.insert("probe".into());
        report.lock_edges.insert(("probe".into(), "diag".into()));
        report.dynamic_checked = 2;
        report.cfg_blocks = 410;
        report.pool_sites = 4;
        report.pool_tracked = 6;
        report.dfa_transitions = 3;
        report.dynamic_pool_checked = 2;
        let json = to_json(&report);
        assert!(json.contains("\"schema\": \"oftt-lint-v2\""));
        assert!(json.contains("\"files_scanned\": 90"));
        assert!(json.contains("\"findings\": []"));
        assert!(json.contains("\"locks\": 1"));
        assert!(json.contains("\"uncovered\": 0"));
        assert!(json.contains("\"cfg_blocks\": 410"));
        assert!(json.contains("\"pool_sites\": 4"));
        assert!(json.contains("\"dfa_transitions\": 3"));
        assert!(json.contains("\"dynamic_pools\": {\"checked\": 2"));
    }

    #[test]
    fn json_escapes_finding_text() {
        let report = Report {
            findings: vec![finding("lex", "weird\\path.rs", 1, "a \"quoted\" thing\n")],
            ..Default::default()
        };
        let json = to_json(&report);
        assert!(json.contains("weird\\\\path.rs"));
        assert!(json.contains("a \\\"quoted\\\" thing\\n"));
    }
}
