//! Forward dataflow over [`crate::cfg`] graphs: a worklist solver,
//! generic over an abstract [`Domain`], with join-at-merge.
//!
//! The domains this repo runs (pool-buffer typestate, epoch stamping)
//! are *may*-style union lattices — a binding's abstract value is the
//! set of states it may be in on some path — so `join` is set union and
//! the solver converges because states only grow. A belt-and-braces
//! iteration cap guards against a non-monotone domain bug turning the
//! solver into a spin loop: on cap, the partial (sound-side) solution
//! is returned and the cap is visible in [`Solution::capped`].
//!
//! Rules use the solver in two passes: first [`solve`] to fixpoint,
//! then one reporting sweep per block seeded with the solved block
//! input — `transfer` runs many times per block during the fixpoint, so
//! emitting findings inside it would duplicate them.

use std::collections::VecDeque;
use std::ops::Range;

use crate::cfg::Cfg;

/// An abstract interpretation domain for one function.
pub trait Domain {
    /// The abstract state flowing along CFG edges.
    type State: Clone + PartialEq;

    /// The state at function entry.
    fn entry_state(&self) -> Self::State;

    /// The bottom element: the input of a block no path has reached.
    fn empty_state(&self) -> Self::State;

    /// Joins `from` into `into`; returns whether `into` changed. Must
    /// be monotone (never shrink `into`) for the solver to converge.
    fn join(&self, into: &mut Self::State, from: &Self::State) -> bool;

    /// Applies one block's units to `state` in order.
    fn transfer(&mut self, block: usize, units: &[Range<usize>], state: &mut Self::State);
}

/// The fixpoint: per-block input and output states.
pub struct Solution<S> {
    /// State at each block's entry (joined over predecessors).
    pub inputs: Vec<S>,
    /// State at each block's exit (input pushed through `transfer`).
    pub outputs: Vec<S>,
    /// Number of transfer applications until the fixpoint.
    pub iterations: usize,
    /// Whether the safety cap fired (a domain monotonicity bug).
    pub capped: bool,
}

/// Solves `dom` over `cfg` to fixpoint with a FIFO worklist.
pub fn solve<D: Domain>(cfg: &Cfg, dom: &mut D) -> Solution<D::State> {
    let n = cfg.blocks.len();
    let mut inputs: Vec<D::State> = (0..n).map(|_| dom.empty_state()).collect();
    let mut outputs: Vec<D::State> = (0..n).map(|_| dom.empty_state()).collect();
    if n == 0 {
        return Solution { inputs, outputs, iterations: 0, capped: false };
    }
    inputs[cfg.entry] = dom.entry_state();
    let mut queued = vec![false; n];
    // A successor is (re)queued when its input grows — or the first
    // time it is reached at all, since a bottom-valued flow would not
    // change its bottom-initialized input yet its units still need one
    // transfer application.
    let mut reached = vec![false; n];
    let mut worklist = VecDeque::new();
    worklist.push_back(cfg.entry);
    queued[cfg.entry] = true;
    reached[cfg.entry] = true;
    let mut iterations = 0usize;
    let cap = n * 64 + 256;
    let mut capped = false;
    while let Some(b) = worklist.pop_front() {
        queued[b] = false;
        if iterations >= cap {
            capped = true;
            break;
        }
        iterations += 1;
        let mut state = inputs[b].clone();
        dom.transfer(b, &cfg.blocks[b].units, &mut state);
        outputs[b] = state;
        for &s in &cfg.blocks[b].succs {
            let first = !reached[s];
            reached[s] = true;
            let out = outputs[b].clone();
            let grew = dom.join(&mut inputs[s], &out);
            if (grew || first) && !queued[s] {
                worklist.push_back(s);
                queued[s] = true;
            }
        }
    }
    Solution { inputs, outputs, iterations, capped }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build;
    use crate::lexer::TokenKind;
    use crate::scanner::{scan, FileKind, FileModel};
    use std::collections::BTreeSet;

    /// A toy domain: the set of idents that may have been "seen" on
    /// some path to a point. Exercises joins and loop convergence.
    struct SeenIdents<'a> {
        model: &'a FileModel,
    }

    impl Domain for SeenIdents<'_> {
        type State = BTreeSet<String>;

        fn entry_state(&self) -> Self::State {
            BTreeSet::new()
        }

        fn empty_state(&self) -> Self::State {
            BTreeSet::new()
        }

        fn join(&self, into: &mut Self::State, from: &Self::State) -> bool {
            let before = into.len();
            into.extend(from.iter().cloned());
            into.len() != before
        }

        fn transfer(&mut self, _b: usize, units: &[Range<usize>], state: &mut Self::State) {
            for u in units {
                for t in &self.model.tokens[u.clone()] {
                    if let TokenKind::Ident(s) = &t.kind {
                        state.insert(s.clone());
                    }
                }
            }
        }
    }

    fn exit_state(src: &str) -> (BTreeSet<String>, Solution<BTreeSet<String>>) {
        let model = scan(src, FileKind::Runtime, false);
        let cfg = build(&model, &model.fns[0]);
        let mut dom = SeenIdents { model: &model };
        let sol = solve(&cfg, &mut dom);
        (sol.inputs[cfg.exit].clone(), sol)
    }

    #[test]
    fn branches_join_at_exit() {
        let (exit, sol) = exit_state("fn f(x: bool) { if x { a(); } else { b(); } }");
        assert!(exit.contains("a") && exit.contains("b"));
        assert!(!sol.capped);
    }

    #[test]
    fn loops_converge() {
        let (exit, sol) = exit_state("fn f() { loop { step(); if done() { break; } } tail(); }");
        assert!(exit.contains("step") && exit.contains("tail"));
        assert!(!sol.capped);
        assert!(sol.iterations < 64, "small graph, few iterations: {}", sol.iterations);
    }

    #[test]
    fn early_return_state_reaches_exit() {
        let (exit, _) = exit_state("fn f(x: bool) { pre(); if x { return; } post(); }");
        assert!(exit.contains("pre") && exit.contains("post"));
    }

    #[test]
    fn try_operator_joins_pre_statement_state_into_exit() {
        // On the error path, `after` has not run — but `before` has.
        let (exit, _) = exit_state("fn f() -> R { before(); mid()?; after(); Ok(()) }");
        assert!(exit.contains("before") && exit.contains("after"));
    }

    #[test]
    fn match_guards_and_all_arms_join_at_exit() {
        // The guard is a unit of its arm's block chain, so its effects
        // flow; every arm joins into the post-match state.
        let (exit, sol) = exit_state(
            "fn f(x: u32) { match x { 0 => zero(), n if guard(n) => pos(), _ => other() } \
             tail(); }",
        );
        for name in ["guard", "zero", "pos", "other", "tail"] {
            assert!(exit.contains(name), "missing {name}: {exit:?}");
        }
        assert!(!sol.capped);
    }

    #[test]
    fn nested_early_returns_each_carry_their_own_state_to_exit() {
        let (exit, _) = exit_state(
            "fn f(a: bool, b: bool) { outer(); if a { inner(); if b { return; } mid(); \
             if !b { return; } } post(); }",
        );
        // Exit joins the shallow return (no `mid`), the deep return,
        // and the fall-through — so everything is *may*-seen there.
        for name in ["outer", "inner", "mid", "post"] {
            assert!(exit.contains(name), "missing {name}: {exit:?}");
        }
    }

    #[test]
    fn code_after_diverging_branches_does_not_flow_to_exit() {
        // Both arms return, so the join block is unreachable; the
        // solver must not propagate its units' effects to the exit.
        let (exit, _) = exit_state("fn f(x: bool) { if x { return; } else { return; } dead(); }");
        assert!(!exit.contains("dead"), "unreachable code leaked into the exit state: {exit:?}");
    }

    #[test]
    fn let_else_edge_carries_state_at_the_binder_only() {
        // Regression: the diverging else branch forks at the binder —
        // statements *after* the let-else must not be visible on it.
        let src = "fn f() { early(); let Some(x) = g() else { diverge(); return; }; late(); }";
        let model = scan(src, FileKind::Runtime, false);
        let cfg = build(&model, &model.fns[0]);
        let mut dom = SeenIdents { model: &model };
        let sol = solve(&cfg, &mut dom);
        let else_block = (0..cfg.blocks.len())
            .find(|&b| {
                cfg.blocks[b].units.iter().any(|u| {
                    model.tokens[u.clone()]
                        .iter()
                        .any(|t| matches!(&t.kind, TokenKind::Ident(s) if s == "diverge"))
                })
            })
            .expect("else body block");
        let input = &sol.inputs[else_block];
        assert!(input.contains("early"), "{input:?}");
        assert!(!input.contains("late"), "else edge carried post-binder state: {input:?}");
    }
}
