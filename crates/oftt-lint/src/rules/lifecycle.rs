//! The API-lifecycle rule: oftt-audit's call-order DFA enforced
//! statically at the call sites the scanner can see.
//!
//! The dynamic linter replays recorded traces; this rule walks each
//! function's call sequence instead, using the *same* call tables
//! (`oftt_audit::lint::{CHECKPOINT_CALLS, WATCHDOG_CREATE_CALLS,
//! WATCHDOG_USE_CALLS, WATCHDOG_DELETE_CALL}`) so the static and
//! dynamic rule sets cannot drift apart. Statically decidable without
//! cross-function flow analysis — and therefore flagged — are:
//!
//! * **use-after-delete**: within one function, `watchdog_set` /
//!   `watchdog_reset` / a second `watchdog_delete` on a (receiver,
//!   literal-name) pair after `watchdog_delete`, with no intervening
//!   `watchdog_create` / `watchdog_restore`. The toolkit reports this
//!   misuse as an ignorable `NotFound` at runtime; statically it is a
//!   straight-line contradiction.
//! * **checkpoint-before-initialize**: a `save` / `sel_save` (or the
//!   `oftt_`-prefixed free-function aliases, or the `save_now` method)
//!   sequenced before an `initialize` call in the same function.
//!
//! Watchdog identity is the pair (receiver base identifier, string
//! literal name); calls whose name argument is not a literal are
//! untrackable and skipped. Duplicate `watchdog_create` is legal (the
//! restore path re-creates), matching the dynamic DFA. Unlike the other
//! families this rule also runs on tests/examples — they are the main
//! body of API-usage code.

use oftt_audit::lint::{
    CHECKPOINT_CALLS, WATCHDOG_CREATE_CALLS, WATCHDOG_DELETE_CALL, WATCHDOG_USE_CALLS,
};
use std::collections::BTreeMap;

use crate::report::Finding;
use crate::scanner::{FileModel, FnItem};

use super::{ident, in_nested_fn, is_call, punct, receiver_base, string};

/// Strips the free-function prefix and method-name aliases so static
/// call names line up with the dynamic tables' vocabulary.
fn normalize(name: &str) -> &str {
    let name = name.strip_prefix("oftt_").unwrap_or(name);
    if name == "save_now" {
        "save"
    } else {
        name
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WdState {
    Live,
    Deleted,
}

/// One recognized call site within a function body.
struct Call {
    index: usize,
    line: u32,
    name: String,
    receiver: String,
    wd_name: Option<String>,
}

/// Checks one file (runtime and test-like alike).
pub fn check(file: &str, model: &FileModel) -> Vec<Finding> {
    let mut out = Vec::new();
    for item in &model.fns {
        check_fn(file, model, item, &mut out);
    }
    out
}

fn check_fn(file: &str, model: &FileModel, item: &FnItem, out: &mut Vec<Finding>) {
    let calls = collect_calls(model, item);
    // Watchdog DFA per (receiver, literal name).
    let mut states: BTreeMap<(String, String), WdState> = BTreeMap::new();
    let mut first_checkpoint: Option<&Call> = None;
    let mut initialize_at: Option<usize> = None;
    for call in &calls {
        let name = call.name.as_str();
        if name == "initialize" {
            initialize_at.get_or_insert(call.index);
            continue;
        }
        if CHECKPOINT_CALLS.contains(&name) {
            if first_checkpoint.is_none() {
                first_checkpoint = Some(call);
            }
            continue;
        }
        let Some(wd) = &call.wd_name else { continue };
        let key = (call.receiver.clone(), wd.clone());
        if WATCHDOG_CREATE_CALLS.contains(&name) {
            states.insert(key, WdState::Live);
        } else if WATCHDOG_USE_CALLS.contains(&name) || name == WATCHDOG_DELETE_CALL {
            if states.get(&key) == Some(&WdState::Deleted) {
                out.push(Finding {
                    rule: "api-lifecycle",
                    file: file.to_string(),
                    line: call.line,
                    message: format!(
                        "`{}` calls `{}` on watchdog \"{wd}\" after `watchdog_delete` \
                         without re-creating it (the NotFound this returns is the \
                         classic ignored-error misuse)",
                        item.name, call.name
                    ),
                });
            }
            if name == WATCHDOG_DELETE_CALL {
                states.insert(key, WdState::Deleted);
            }
        }
    }
    if let (Some(ckpt), Some(init)) = (first_checkpoint, initialize_at) {
        if ckpt.index < init {
            out.push(Finding {
                rule: "api-lifecycle",
                file: file.to_string(),
                line: ckpt.line,
                message: format!(
                    "`{}` calls `{}` before `initialize` in the same function",
                    item.name, ckpt.name
                ),
            });
        }
    }
}

/// Collects every table-relevant call in `item`'s own body, in order.
fn collect_calls(model: &FileModel, item: &FnItem) -> Vec<Call> {
    let tokens = &model.tokens;
    let mut calls = Vec::new();
    for i in item.body.clone() {
        if in_nested_fn(model, item, i) {
            continue;
        }
        let Some(raw) = ident(tokens, i) else { continue };
        if !is_call(tokens, i) {
            continue;
        }
        let name = normalize(raw);
        let relevant = name == "initialize"
            || CHECKPOINT_CALLS.contains(&name)
            || WATCHDOG_CREATE_CALLS.contains(&name)
            || WATCHDOG_USE_CALLS.contains(&name)
            || name == WATCHDOG_DELETE_CALL;
        if !relevant {
            continue;
        }
        // Method call: receiver precedes the dot. Free function: the
        // context handle is the first identifier argument.
        let receiver = if i > item.body.start && punct(tokens, i - 1) == Some('.') {
            receiver_base(tokens, i - 1)
        } else {
            first_arg_ident(model, i + 1)
        }
        .unwrap_or_default();
        calls.push(Call {
            index: i,
            line: tokens[i].line,
            name: name.to_string(),
            receiver,
            wd_name: first_string_arg(model, i + 1),
        });
    }
    calls
}

/// The first identifier inside the argument list opening at `open`.
fn first_arg_ident(model: &FileModel, open: usize) -> Option<String> {
    let tokens = &model.tokens;
    let mut depth = 0usize;
    let mut i = open;
    loop {
        match punct(tokens, i) {
            Some('(') => depth += 1,
            Some(')') => {
                depth -= 1;
                if depth == 0 {
                    return None;
                }
            }
            None if i >= tokens.len() => return None,
            _ => {
                if let Some(name) = ident(tokens, i) {
                    if name != "mut" {
                        return Some(name.to_string());
                    }
                }
            }
        }
        i += 1;
    }
}

/// The first string literal inside the argument list opening at `open`.
fn first_string_arg(model: &FileModel, open: usize) -> Option<String> {
    let tokens = &model.tokens;
    let mut depth = 0usize;
    let mut i = open;
    loop {
        match punct(tokens, i) {
            Some('(') => depth += 1,
            Some(')') => {
                depth -= 1;
                if depth == 0 {
                    return None;
                }
            }
            None if i >= tokens.len() => return None,
            _ => {
                if let Some(s) = string(tokens, i) {
                    return Some(s.to_string());
                }
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::{scan, FileKind};

    fn check_src(source: &str) -> Vec<Finding> {
        check("f.rs", &scan(source, FileKind::TestLike, false))
    }

    #[test]
    fn use_after_delete_is_flagged() {
        let findings = check_src(
            "fn t(ctx: &mut FtCtx) {\n\
                 ctx.watchdog_create(\"wd\", period);\n\
                 ctx.watchdog_delete(\"wd\");\n\
                 ctx.watchdog_reset(\"wd\");\n\
             }",
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("after `watchdog_delete`"));
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn double_delete_is_flagged() {
        let findings = check_src(
            "fn t(ctx: &mut FtCtx) {\n\
                 ctx.watchdog_delete(\"wd\");\n\
                 ctx.watchdog_delete(\"wd\");\n\
             }",
        );
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn recreate_clears_the_deleted_state() {
        let findings = check_src(
            "fn t(ctx: &mut FtCtx) {\n\
                 ctx.watchdog_delete(\"wd\");\n\
                 ctx.watchdog_create(\"wd\", period);\n\
                 ctx.watchdog_set(\"wd\", deadline);\n\
             }",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn free_function_aliases_share_the_tables() {
        let findings = check_src(
            "fn t(ctx: &mut FtCtx) {\n\
                 oftt_watchdog_delete(ctx, \"wd\");\n\
                 oftt_watchdog_set(ctx, \"wd\", deadline);\n\
             }",
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("watchdog_set"));
    }

    #[test]
    fn different_receivers_are_independent() {
        let findings = check_src(
            "fn t(a: &mut FtCtx, b: &mut FtCtx) {\n\
                 a.watchdog_delete(\"wd\");\n\
                 b.watchdog_set(\"wd\", deadline);\n\
             }",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn duplicate_create_is_legal() {
        let findings = check_src(
            "fn t(ctx: &mut FtCtx) {\n\
                 ctx.watchdog_restore(\"wd\");\n\
                 ctx.watchdog_create(\"wd\", period);\n\
             }",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn dynamic_names_are_untrackable_and_skipped() {
        let findings = check_src(
            "fn t(ctx: &mut FtCtx, name: &str) {\n\
                 ctx.watchdog_delete(name);\n\
                 ctx.watchdog_set(name, deadline);\n\
             }",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn checkpoint_before_initialize_is_flagged() {
        let findings = check_src(
            "fn t(ctx: &mut FtCtx) {\n\
                 ctx.save_now();\n\
                 ctx.initialize(conf);\n\
             }",
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("before `initialize`"));
    }

    #[test]
    fn checkpoint_after_initialize_is_clean() {
        let findings = check_src(
            "fn t(ctx: &mut FtCtx) {\n\
                 ctx.initialize(conf);\n\
                 oftt_sel_save(ctx, vars);\n\
             }",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn checkpoint_without_initialize_nearby_is_not_judged() {
        let findings = check_src("fn t(ctx: &mut FtCtx) { ctx.save_now(); }");
        assert!(findings.is_empty());
    }
}
