//! The static lock-order graph: nested `.lock()` acquisitions across
//! the whole workspace, cycle detection over the merged graph, and the
//! static ⊇ dynamic coverage cross-check against oftt-audit's sweep.
//!
//! Each runtime function is interpreted abstractly: the walk tracks
//! brace depth and a held-set of guards. A guard bound by `let g = …`
//! lives until `drop(g)` or the end of its binding block; an unbound
//! guard (`x.lock().do_thing()`) lives to the end of its statement —
//! conservatively through any `{}` nesting the statement contains, which
//! matches Rust's temporary-lifetime rules for `match x.lock() { … }`.
//! Acquiring `B` while holding `A` adds the merged edge `A → B`, exactly
//! the lockdep construction oftt-audit applies to *dynamic* traces
//! (`lockorder::build_graph`); any cycle in the merged static graph is a
//! potential deadlock under some thread interleaving.
//!
//! A site's lock name defaults to the receiver's base identifier
//! (`self.probe.lock()` → `probe`) and can be overridden with
//! `// oftt-lint: lock(NAME)` to join the dynamic instrumentation's
//! namespace. `try_lock` never blocks and is ignored.
//!
//! The coverage cross-check closes the loop with the dynamic analyzer:
//! every lock-site base name oftt-audit observed across its schedule
//! sweep must appear among the statically discovered names. A dynamic
//! site the static graph missed means the interpreter (or an
//! annotation) has a hole — the static verdict would be vacuous there,
//! so it is a finding, not a shrug.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::scanner::{FileKind, FileModel};

use super::{ident, punct, receiver_base};

/// The merged static acquisition graph plus any lock-order findings.
#[derive(Debug, Default)]
pub struct LockScan {
    /// Cycle findings.
    pub findings: Vec<Finding>,
    /// Every statically discovered lock name.
    pub names: BTreeSet<String>,
    /// `outer → inner` edges with the site that first created each.
    pub edges: BTreeMap<(String, String), (String, u32)>,
}

/// How a held guard is released.
#[derive(Debug)]
enum Release {
    /// `let g = x.lock()`: released by `drop(g)` or when the block the
    /// binding lives in closes (depth drops below `depth`).
    Binding { var: String, depth: i32 },
    /// A temporary: released at the first `;` at its acquisition depth,
    /// or when a `}` (not continued by `else`) closes back to it.
    Statement { depth: i32 },
}

struct Held {
    name: String,
    release: Release,
}

/// What one function's abstract interpretation learned, beyond the
/// edges merged into the global graph: its own acquisitions (the
/// transitive `acquires` effect seeds from these) and the guard set
/// held at each call site the effect engine asked about.
#[derive(Debug, Default)]
pub struct FnLockFacts {
    /// Every `(lock name, line)` this function acquires directly.
    pub acquisitions: Vec<(String, u32)>,
    /// Guard names held when the walk passed each requested call token.
    pub held_at: BTreeMap<usize, Vec<String>>,
}

/// Interprets every runtime function in `models` and builds the merged
/// graph. `models` pairs each workspace-relative path with its scan.
/// This is the *intra*-procedural graph; [`crate::effects`] extends it
/// with call-derived edges before cycle detection in the full scan.
pub fn check(models: &[(String, FileModel)]) -> LockScan {
    let mut scan = LockScan::default();
    for (file, model) in models {
        if model.kind != FileKind::Runtime {
            continue;
        }
        for item in &model.fns {
            interpret_fn(file, model, item, &[], &mut scan);
        }
    }
    scan.findings.extend(find_cycles(&scan.edges));
    scan
}

/// Abstractly interprets one function: merges its nested-acquisition
/// edges into `scan` and returns its [`FnLockFacts`]. `call_toks` are
/// the (sorted) token indices of call sites whose held sets the caller
/// wants recorded.
pub(crate) fn interpret_fn(
    file: &str,
    model: &FileModel,
    item: &crate::scanner::FnItem,
    call_toks: &[usize],
    scan: &mut LockScan,
) -> FnLockFacts {
    let tokens = &model.tokens;
    let mut facts = FnLockFacts::default();
    let mut held: Vec<Held> = Vec::new();
    let mut depth: i32 = 0;
    let mut i = item.body.start;
    while i < item.body.end {
        if call_toks.binary_search(&i).is_ok() {
            facts.held_at.insert(i, held.iter().map(|h| h.name.clone()).collect());
        }
        // A nested fn's sites belong to the nested item; jump over it.
        if let Some(nested) = model.fns.iter().find(|g| {
            g.body.start == i && g.body.start > item.body.start && g.body.end <= item.body.end
        }) {
            i = nested.body.end;
            continue;
        }
        match tokens.get(i).map(|t| &t.kind) {
            Some(TokenKind::Punct('{')) => depth += 1,
            Some(TokenKind::Punct('}')) => {
                depth -= 1;
                // A `}` closing back to a temporary's acquisition depth
                // ends the construct that owned it (`match m.lock() {…}`,
                // `if let … = m.lock().x() {…}`) — except `} else`,
                // which continues the same construct.
                let continues = ident(tokens, i + 1) == Some("else");
                held.retain(|h| match &h.release {
                    Release::Binding { depth: d, .. } => *d <= depth,
                    Release::Statement { depth: d } => *d < depth || (*d == depth && continues),
                });
            }
            Some(TokenKind::Punct(';')) => {
                held.retain(
                    |h| !matches!(&h.release, Release::Statement { depth: d } if *d == depth),
                );
            }
            Some(TokenKind::Ident(name)) if name == "drop" && punct(tokens, i + 1) == Some('(') => {
                if let (Some(var), Some(')')) = (ident(tokens, i + 2), punct(tokens, i + 3)) {
                    held.retain(
                        |h| !matches!(&h.release, Release::Binding { var: v, .. } if v == var),
                    );
                }
            }
            Some(TokenKind::Punct('.'))
                if ident(tokens, i + 1) == Some("lock")
                    && punct(tokens, i + 2) == Some('(')
                    && punct(tokens, i + 3) == Some(')') =>
            {
                let line = tokens[i].line;
                let name = model
                    .lock_name_at(line)
                    .map(str::to_string)
                    .or_else(|| receiver_base(tokens, i))
                    .unwrap_or_else(|| "<receiver>".to_string());
                scan.names.insert(name.clone());
                facts.acquisitions.push((name.clone(), line));
                for outer in &held {
                    if outer.name != name {
                        scan.edges
                            .entry((outer.name.clone(), name.clone()))
                            .or_insert_with(|| (file.to_string(), line));
                    }
                }
                held.push(Held { name, release: binding_release(model, item, i, depth) });
                i += 4;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    facts
}

/// Decides how the guard acquired by the `.lock()` whose `.` sits at
/// `dot` is released. The guard is let-bound only when the lock call is
/// the *entire* initializer — `let g = receiver.lock();` — which the
/// token stream shows as a `;` right after the call and a statement
/// beginning `let NAME =` whose initializer starts with an identifier.
/// Anything else (`let i = x.lock().field;`, `let t = *v.lock();`,
/// `let p = if m.lock().ok() { … }`) copies *through* a temporary guard
/// that Rust drops at the end of the statement.
fn binding_release(
    model: &FileModel,
    item: &crate::scanner::FnItem,
    dot: usize,
    depth: i32,
) -> Release {
    let tokens = &model.tokens;
    if punct(tokens, dot + 4) != Some(';') {
        return Release::Statement { depth };
    }
    let mut start = dot;
    while start > item.body.start {
        match punct(tokens, start - 1) {
            Some(';') | Some('{') | Some('}') => break,
            _ => start -= 1,
        }
    }
    if ident(tokens, start) == Some("let") {
        let name_at = if ident(tokens, start + 1) == Some("mut") { start + 2 } else { start + 1 };
        if let Some(var) = ident(tokens, name_at) {
            let eq = (name_at + 1..dot)
                .find(|&j| punct(tokens, j) == Some('=') && punct(tokens, j + 1) != Some('='));
            let init_is_the_lock_expr = match eq {
                // `let g = self.x.lock();` — initializer starts with the
                // receiver path. A leading `*`/`&`/`(` means the guard is
                // a temporary being dereferenced or wrapped instead.
                Some(j) => ident(tokens, j + 1).is_some(),
                None => false,
            };
            if init_is_the_lock_expr {
                return Release::Binding { var: var.to_string(), depth };
            }
        }
    }
    Release::Statement { depth }
}

/// Tarjan's strongly-connected components over the merged edge set; any
/// component with more than one lock is an acquisition-order cycle. Same
/// construction as oftt-audit's dynamic `lockorder` analyzer, so the
/// static and dynamic verdicts are directly comparable.
pub(crate) fn find_cycles(edges: &BTreeMap<(String, String), (String, u32)>) -> Vec<Finding> {
    let mut succs: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        succs.entry(a).or_default().insert(b);
        succs.entry(b).or_default();
    }
    struct State<'a> {
        index: BTreeMap<&'a str, usize>,
        lowlink: BTreeMap<&'a str, usize>,
        on_stack: BTreeSet<&'a str>,
        stack: Vec<&'a str>,
        next: usize,
        cycles: Vec<Vec<&'a str>>,
    }
    fn visit<'a>(node: &'a str, succs: &BTreeMap<&'a str, BTreeSet<&'a str>>, st: &mut State<'a>) {
        st.index.insert(node, st.next);
        st.lowlink.insert(node, st.next);
        st.next += 1;
        st.stack.push(node);
        st.on_stack.insert(node);
        if let Some(out) = succs.get(node) {
            for succ in out {
                if !st.index.contains_key(succ) {
                    visit(succ, succs, st);
                    let low = st.lowlink[succ].min(st.lowlink[node]);
                    st.lowlink.insert(node, low);
                } else if st.on_stack.contains(succ) {
                    let low = st.index[succ].min(st.lowlink[node]);
                    st.lowlink.insert(node, low);
                }
            }
        }
        if st.lowlink[node] == st.index[node] {
            let mut component = Vec::new();
            while let Some(top) = st.stack.pop() {
                st.on_stack.remove(top);
                component.push(top);
                if top == node {
                    break;
                }
            }
            if component.len() > 1 {
                component.sort_unstable();
                st.cycles.push(component);
            }
        }
    }
    let mut st = State {
        index: BTreeMap::new(),
        lowlink: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        next: 0,
        cycles: Vec::new(),
    };
    let nodes: Vec<&str> = succs.keys().copied().collect();
    for node in nodes {
        if !st.index.contains_key(node) {
            visit(node, &succs, &mut st);
        }
    }
    st.cycles
        .into_iter()
        .map(|component| {
            // Anchor the finding at the earliest edge inside the cycle.
            let (file, line) = edges
                .iter()
                .filter(|((a, b), _)| {
                    component.contains(&a.as_str()) && component.contains(&b.as_str())
                })
                .map(|(_, site)| site.clone())
                .min_by_key(|(f, l)| (f.clone(), *l))
                .unwrap_or_else(|| (String::from("<graph>"), 0));
            Finding {
                rule: "lock-order",
                file,
                line,
                message: format!(
                    "locks {{{}}} are acquired in conflicting nesting orders \
                     (potential deadlock)",
                    component.join(", ")
                ),
            }
        })
        .collect()
}

/// The static ⊇ dynamic cross-check: every base name in `dynamic` (from
/// `oftt-audit scan --export-locks`) must be a statically discovered
/// lock. Returns the uncovered names as findings plus the raw list.
pub fn dynamic_coverage(
    static_names: &BTreeSet<String>,
    dynamic: &[String],
) -> (Vec<Finding>, Vec<String>) {
    let mut findings = Vec::new();
    let mut uncovered = Vec::new();
    for name in dynamic {
        if !static_names.contains(name) {
            findings.push(Finding {
                rule: "lock-coverage",
                file: "<oftt-audit sweep>".to_string(),
                line: 0,
                message: format!(
                    "dynamically observed lock `{name}` has no statically discovered \
                     acquisition — the interpreter missed a site (name it with \
                     `// oftt-lint: lock({name})` if the receiver is called something else)"
                ),
            });
            uncovered.push(name.clone());
        }
    }
    (findings, uncovered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn scan_files(sources: &[(&str, &str)]) -> LockScan {
        let models: Vec<(String, FileModel)> = sources
            .iter()
            .map(|(name, src)| (name.to_string(), scan(src, FileKind::Runtime, false)))
            .collect();
        check(&models)
    }

    #[test]
    fn nested_let_guards_form_an_edge() {
        let scan = scan_files(&[(
            "a.rs",
            "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); a.x(); b.y(); }",
        )]);
        assert!(scan.edges.contains_key(&("alpha".into(), "beta".into())));
        assert!(scan.findings.is_empty());
    }

    #[test]
    fn conflicting_orders_are_a_cycle() {
        let scan = scan_files(&[(
            "a.rs",
            "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
             fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }",
        )]);
        assert_eq!(scan.findings.len(), 1);
        assert!(scan.findings[0].message.contains("alpha, beta"));
    }

    #[test]
    fn drop_releases_the_guard_before_the_next_acquisition() {
        let scan = scan_files(&[(
            "a.rs",
            "fn f(&self) { let a = self.alpha.lock(); drop(a); let b = self.beta.lock(); }\n\
             fn g(&self) { let b = self.beta.lock(); drop(b); let a = self.alpha.lock(); }",
        )]);
        assert!(scan.edges.is_empty());
        assert!(scan.findings.is_empty());
    }

    #[test]
    fn block_scope_releases_let_guards() {
        let scan = scan_files(&[(
            "a.rs",
            "fn f(&self) { { let a = self.alpha.lock(); } let b = self.beta.lock(); }",
        )]);
        assert!(scan.edges.is_empty());
    }

    #[test]
    fn temporary_guard_ends_at_the_statement() {
        let scan = scan_files(&[(
            "a.rs",
            "fn f(&self) { self.alpha.lock().poke(); let b = self.beta.lock(); }",
        )]);
        assert!(scan.edges.is_empty());
        assert_eq!(scan.names.len(), 2);
    }

    #[test]
    fn copying_through_a_guard_is_not_a_binding() {
        // `idx`, `t`, and `b2` bind copied values, not guards — the
        // temporaries die at each statement's `;`, so no edges form.
        let scan = scan_files(&[(
            "a.rs",
            "fn f(&self) {\n\
                 let idx = if self.alpha.lock().ready() { 0 } else { 1 };\n\
                 let t = *self.beta.lock();\n\
                 let b2 = self.gamma.lock().bytes_sent;\n\
                 let g = self.alpha.lock();\n\
             }",
        )]);
        assert!(scan.edges.is_empty(), "{:?}", scan.edges);
    }

    #[test]
    fn temporary_guard_spans_a_match_it_scrutinizes() {
        let scan = scan_files(&[(
            "a.rs",
            "fn f(&self) { match self.alpha.lock().kind { K::A => { let b = self.beta.lock(); } _ => {} }; }",
        )]);
        assert!(scan.edges.contains_key(&("alpha".into(), "beta".into())));
    }

    #[test]
    fn lock_annotation_overrides_the_receiver_name() {
        let scan = scan_files(&[(
            "a.rs",
            "fn f(&self) {\n    // oftt-lint: lock(ftim-probe)\n    let g = self.core.probe.lock();\n}",
        )]);
        assert!(scan.names.contains("ftim-probe"));
        assert!(!scan.names.contains("probe"));
    }

    #[test]
    fn indexed_receivers_resolve_to_the_collection() {
        let scan = scan_files(&[("a.rs", "fn f(&self) { self.cells[&key].lock().bump(); }")]);
        assert!(scan.names.contains("cells"));
    }

    #[test]
    fn try_lock_is_ignored() {
        let scan = scan_files(&[("a.rs", "fn f(&self) { let g = self.alpha.try_lock(); }")]);
        assert!(scan.names.is_empty());
    }

    #[test]
    fn edges_merge_across_files() {
        let scan = scan_files(&[
            ("a.rs", "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }"),
            ("b.rs", "fn g(&self) { let b = self.beta.lock(); let c = self.gamma.lock(); }"),
        ]);
        assert_eq!(scan.edges.len(), 2);
        assert!(scan.findings.is_empty());
    }

    #[test]
    fn three_way_cycle_across_files_is_found() {
        let scan = scan_files(&[
            ("a.rs", "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }"),
            ("b.rs", "fn g(&self) { let b = self.beta.lock(); let c = self.gamma.lock(); }"),
            ("c.rs", "fn h(&self) { let c = self.gamma.lock(); let a = self.alpha.lock(); }"),
        ]);
        assert_eq!(scan.findings.len(), 1);
        assert!(scan.findings[0].message.contains("alpha, beta, gamma"));
    }

    #[test]
    fn dynamic_coverage_flags_missing_names() {
        let mut names = BTreeSet::new();
        names.insert("probe".to_string());
        let (findings, uncovered) =
            dynamic_coverage(&names, &["probe".to_string(), "ghost".to_string()]);
        assert_eq!(findings.len(), 1);
        assert_eq!(uncovered, vec!["ghost".to_string()]);
        assert!(findings[0].message.contains("lock(ghost)"));
    }
}
