//! The annotation-drift check: `// oftt-lint: nonblocking` and
//! `// oftt-lint: no-panic` module annotations that the *inferred*
//! effects contradict.
//!
//! PR 6's per-module rules trust the annotation and police the module's
//! own tokens; a call into an unannotated helper that sleeps or
//! unwraps sails straight through. This check closes that hole with
//! the fixpoint's verdicts: a function in an annotated module calling
//! something whose definite effect contradicts the annotation is
//! drift — the directive claims a contract the code no longer keeps.
//! Primitives *inside* the annotated module itself are already
//! findings of the syntactic families, so drift fires only when the
//! witness chain's grounding primitive lives in a *different, un-
//! annotated* file — each finding is new information, never an echo.

use std::collections::BTreeSet;

use crate::effects::{Analysis, EffectKind, Source};
use crate::report::Finding;
use crate::scanner::FileModel;

/// Checks every annotated module's functions against the inferred
/// effects of their callees.
pub fn check(models: &[(String, FileModel)], analysis: &Analysis) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut seen: BTreeSet<(String, u32, &'static str)> = BTreeSet::new();
    for info_id in 0..analysis.fns.len() {
        let info = &analysis.fns[info_id];
        let model = &models[info.model].1;
        let checks: &[(&str, EffectKind, &str)] = &[
            ("nonblocking", EffectKind::Blocks, "blocks"),
            ("no-panic", EffectKind::Panics, "may panic"),
        ];
        for &(directive, kind, verb) in checks {
            if !model.has_file_directive(directive) {
                continue;
            }
            for call in &info.calls {
                let Some(&g) =
                    call.targets.iter().find(|&&g| analysis.effects[g].get(kind).is_some())
                else {
                    continue;
                };
                // Ground the chain: if the primitive lives in this same
                // file, the syntactic rule already reports it.
                if grounding_file(analysis, g, kind) == Some(info.file.as_str()) {
                    continue;
                }
                if !seen.insert((info.file.clone(), call.line, directive)) {
                    continue;
                }
                let witness =
                    analysis.witness(g, kind).unwrap_or_else(|| analysis.fns[g].name.clone());
                out.push(Finding {
                    rule: "annotation-drift",
                    file: info.file.clone(),
                    line: call.line,
                    message: format!(
                        "module is annotated `// oftt-lint: {directive}` but `{}` calls \
                         `{}`, which {verb}: {witness}",
                        info.name, call.name
                    ),
                });
            }
        }
    }
    out
}

/// The file containing the primitive that grounds `kind` on `f`.
fn grounding_file(analysis: &Analysis, f: usize, kind: EffectKind) -> Option<&str> {
    let mut cur = f;
    for _ in 0..64 {
        match analysis.effects[cur].get(kind)? {
            Source::Prim { .. } => return Some(analysis.fns[cur].file.as_str()),
            Source::Call { callee, .. } => cur = *callee,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::Analysis;
    use crate::scanner::{scan, FileKind};

    fn findings(sources: &[(&str, &str)]) -> Vec<Finding> {
        let models: Vec<(String, FileModel)> = sources
            .iter()
            .map(|(name, src)| (name.to_string(), scan(src, FileKind::Runtime, false)))
            .collect();
        let analysis = Analysis::analyze(&models);
        check(&models, &analysis)
    }

    #[test]
    fn nonblocking_module_calling_a_blocking_helper_elsewhere_is_drift() {
        let out = findings(&[
            ("codec.rs", "// oftt-lint: nonblocking\nfn encode(&self) { net_flush(); }"),
            ("io.rs", "fn net_flush() { stream.flush(); }"),
        ]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "annotation-drift");
        assert_eq!(out[0].file, "codec.rs");
        assert!(out[0].message.contains("net_flush: flush (io.rs:1)"), "{}", out[0].message);
    }

    #[test]
    fn no_panic_module_calling_an_unwrapping_helper_is_drift() {
        let out = findings(&[
            ("frame.rs", "// oftt-lint: no-panic\nfn parse(&self) { decode_header(h); }"),
            ("util.rs", "fn decode_header(h: H) -> u8 { h.field.unwrap() }"),
        ]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("may panic"));
    }

    #[test]
    fn same_file_primitives_are_the_syntactic_rules_job() {
        // `helper` sleeps *inside* the annotated file: the nonblocking
        // rule reports the primitive; drift stays silent.
        let out = findings(&[(
            "codec.rs",
            "// oftt-lint: nonblocking\nfn encode(&self) { helper(); }\nfn helper() { std::thread::sleep(d); }",
        )]);
        assert!(out.is_empty());
    }

    #[test]
    fn havoc_never_fires_drift() {
        let out =
            findings(&[("codec.rs", "// oftt-lint: nonblocking\nfn encode(&self) { mystery(); }")]);
        assert!(out.is_empty());
    }

    #[test]
    fn unannotated_modules_are_not_checked() {
        let out = findings(&[
            ("a.rs", "fn f() { net_flush(); }"),
            ("io.rs", "fn net_flush() { stream.flush(); }"),
        ]);
        assert!(out.is_empty());
    }
}
