//! **pool-buffer typestate** — flow-sensitive lifecycle proof for
//! pooled byte buffers, the flagship client of the CFG + dataflow
//! engine ([`crate::cfg`], [`crate::dataflow`]).
//!
//! Every binding initialized from a pool take (`pool.take(n)`, an
//! `// oftt-lint: pool(name)`-annotated site, or any function the
//! returns-buffer summary marks) must follow
//!
//! ```text
//! take → fill* → (ship | recycle)
//! ```
//!
//! on **every** path. The abstract state of a binding is the *set* of
//! lifecycle points it may occupy (union join at merges):
//!
//! * `LIVE_EMPTY` — taken, not yet written;
//! * `LIVE_FILLED` — taken and written through `&mut`/method use;
//! * `SHIPPED` — moved onward as a bare argument (into a consuming
//!   callee position, a container, a struct) — the receiver owns it;
//! * `RECYCLED` — returned to a pool via a `give` site.
//!
//! Findings: **use-after-recycle** (any use while `RECYCLED` is
//! possible), **double-recycle** (a give while already `RECYCLED`), and
//! **leak-on-early-return** (function exit — including `?` edges and
//! early `return`s — while the buffer may still be `LIVE_*`).
//!
//! A second, non-flow product is the static pool-site inventory
//! (`name:take` / `name:give` strings): [`dynamic_coverage`] checks it
//! against the ops oftt-audit observed across the 600-schedule sweep —
//! the same static ⊇ dynamic cross-validation the lock rule runs.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::cfg::Cfg;
use crate::dataflow::{self, Domain};
use crate::effects::{Analysis, ResolvedCall};
use crate::report::Finding;
use crate::rules::{ident, punct};
use crate::scanner::FileModel;

/// Lifecycle points as bits; a binding's abstract value is a bit-set.
pub const LIVE_EMPTY: u8 = 1;
/// Taken and written at least once on some path.
pub const LIVE_FILLED: u8 = 2;
/// Moved onward — owned by a callee, container, or struct.
pub const SHIPPED: u8 = 4;
/// Returned to a pool.
pub const RECYCLED: u8 = 8;

const LIVE: u8 = LIVE_EMPTY | LIVE_FILLED;

/// The pool rule's whole product.
#[derive(Debug, Default)]
pub struct PoolScan {
    /// Typestate findings, in file order.
    pub findings: Vec<Finding>,
    /// Static pool sites as `name:op` strings (`ckpt_staging:take`).
    pub static_sites: BTreeSet<String>,
    /// Pooled bindings tracked through the dataflow.
    pub tracked: usize,
    /// Total dataflow transfer applications across all functions.
    pub iterations: usize,
}

/// The pool name of a take/give call site: an
/// `// oftt-lint: pool(name)` annotation on the line wins; otherwise a
/// receiver whose base identifier is `pool` or ends in `_pool` names
/// the site after the receiver. `None` means "not a pool op" —
/// `std::mem::take` and `Option::take` have no pool-shaped receiver and
/// no annotation.
fn pool_site(model: &FileModel, call: &ResolvedCall) -> Option<String> {
    if call.name != "take" && call.name != "give" {
        return None;
    }
    if let Some(name) = model.pool_name_at(call.line) {
        return Some(name.to_string());
    }
    let recv = call.receiver.as_deref()?;
    if recv == "pool" || recv.ends_with("_pool") {
        return Some(recv.to_string());
    }
    None
}

/// One function's pool-typestate domain over its CFG.
struct PoolDomain<'a> {
    model: &'a FileModel,
    /// Call sites by name-token index.
    calls: BTreeMap<usize, &'a ResolvedCall>,
    analysis: &'a Analysis,
    file: &'a str,
    /// Take line per binding, for leak messages.
    take_lines: BTreeMap<String, u32>,
    /// Emit findings (the post-fixpoint reporting pass).
    report: bool,
    findings: Vec<Finding>,
    /// Findings already emitted, to dedup across blocks.
    seen: BTreeSet<(u32, String)>,
}

impl PoolDomain<'_> {
    fn emit(&mut self, line: u32, message: String) {
        if self.report && self.seen.insert((line, message.clone())) {
            self.findings.push(Finding {
                rule: "pool-typestate",
                file: self.file.to_string(),
                line,
                message,
            });
        }
    }

    /// The binding a `let [mut] NAME = …` unit introduces, if its
    /// initializer is a pool take or a returns-buffer call.
    fn take_binding(&self, unit: &Range<usize>) -> Option<(String, u32)> {
        let toks = &self.model.tokens;
        if ident(toks, unit.start) != Some("let") {
            return None;
        }
        let mut k = unit.start + 1;
        if ident(toks, k) == Some("mut") {
            k += 1;
        }
        let name = ident(toks, k)?.to_string();
        if punct(toks, k + 1) != Some('=') {
            return None;
        }
        let pooled = self.calls.range(unit.clone()).any(|(_, c)| {
            (c.name == "take" && pool_site(self.model, c).is_some())
                || c.targets.iter().any(|&g| self.analysis.returns_buffer[g])
        });
        pooled.then(|| (name, toks[unit.start].line))
    }

    fn transfer_unit(&mut self, unit: &Range<usize>, state: &mut BTreeMap<String, u8>) {
        let toks = &self.model.tokens;
        let take = self.take_binding(unit);
        // Pass 1: calls — gives recycle, bare-argument moves ship.
        let unit_calls: Vec<&ResolvedCall> =
            self.calls.range(unit.clone()).map(|(_, c)| *c).collect();
        let call_args: BTreeSet<&str> = unit_calls
            .iter()
            .flat_map(|c| c.bare_args.iter().flatten())
            .map(String::as_str)
            .collect();
        for call in unit_calls {
            let is_give = call.name == "give" && pool_site(self.model, call).is_some();
            for arg in call.bare_args.iter().flatten() {
                let Some(&bits) = state.get(arg.as_str()) else { continue };
                if bits & RECYCLED != 0 {
                    self.emit(
                        toks[call.tok].line,
                        format!(
                            "pooled buffer `{arg}` {} after it may already be recycled — \
                             a freelist entry would be {}",
                            if is_give { "recycled again" } else { "used" },
                            if is_give { "double-inserted" } else { "aliased by the next take" },
                        ),
                    );
                }
                let new_bits = if is_give { RECYCLED } else { SHIPPED };
                state.insert(arg.clone(), new_bits);
            }
        }
        // Pass 2: remaining mentions are uses (borrows, method
        // receivers, `&mut` fills) or non-call moves. Skip the binding
        // position of a `let` and field-access positions (`x.name`).
        let mut i = unit.start;
        while i < unit.end.min(toks.len()) {
            let Some(name) = ident(toks, i) else {
                i += 1;
                continue;
            };
            let Some(&bits) = state.get(name) else {
                i += 1;
                continue;
            };
            let after_dot = punct(toks, i.wrapping_sub(1)) == Some('.') && i > 0;
            let let_pos =
                matches!(i.checked_sub(1).and_then(|p| ident(toks, p)), Some("let") | Some("mut"));
            if after_dot || let_pos {
                i += 1;
                continue;
            }
            // A binding standing alone between delimiters moves out:
            // a struct-literal shorthand field (`{ header, buf, … }`),
            // a tuple element, a block tail (`{ buf }`) — or a call's
            // bare argument, which pass 1 already transitioned (skip).
            // A named struct-literal field value (`meta: reply_meta`)
            // moves out too; the `::`-exclusion keeps path segments
            // (`Enum::reply_meta`) from matching.
            let delimited =
                matches!(punct(toks, i.wrapping_sub(1)), Some('(') | Some(',') | Some('{'))
                    && matches!(punct(toks, i + 1), Some(')') | Some(',') | Some('}'));
            let named_field = punct(toks, i.wrapping_sub(1)) == Some(':')
                && punct(toks, i.wrapping_sub(2)) != Some(':')
                && matches!(punct(toks, i + 1), Some(',') | Some('}'));
            if delimited || named_field {
                if delimited && call_args.contains(name) {
                    i += 1;
                    continue;
                }
                if bits & RECYCLED != 0 {
                    self.emit(
                        toks[i].line,
                        format!(
                            "pooled buffer `{name}` used after it may already be recycled — \
                             the freelist may hand the same allocation to a concurrent taker"
                        ),
                    );
                }
                state.insert(name.to_string(), SHIPPED);
                i += 1;
                continue;
            }
            if bits & RECYCLED != 0 {
                self.emit(
                    toks[i].line,
                    format!(
                        "pooled buffer `{name}` used after it may already be recycled — \
                         the freelist may hand the same allocation to a concurrent taker"
                    ),
                );
            }
            if bits & LIVE_EMPTY != 0 {
                // A use fills (or at least touches) the buffer.
                state.insert(name.to_string(), (bits & !LIVE_EMPTY) | LIVE_FILLED);
            }
            i += 1;
        }
        // The take binds *after* the unit's own events: the initializer
        // expression cannot use the binding it introduces.
        if let Some((name, line)) = take {
            state.insert(name.clone(), LIVE_EMPTY);
            self.take_lines.entry(name).or_insert(line);
        }
    }
}

impl Domain for PoolDomain<'_> {
    type State = BTreeMap<String, u8>;

    fn entry_state(&self) -> Self::State {
        BTreeMap::new()
    }

    fn empty_state(&self) -> Self::State {
        BTreeMap::new()
    }

    fn join(&self, into: &mut Self::State, from: &Self::State) -> bool {
        let mut changed = false;
        for (name, &bits) in from {
            let slot = into.entry(name.clone()).or_insert(0);
            if *slot | bits != *slot {
                *slot |= bits;
                changed = true;
            }
        }
        changed
    }

    fn transfer(&mut self, _b: usize, units: &[Range<usize>], state: &mut Self::State) {
        for unit in units {
            self.transfer_unit(unit, state);
        }
    }
}

/// Runs the typestate over every runtime function (using the
/// pre-built `cfgs`, aligned with `analysis.fns`) and inventories the
/// static pool sites.
pub fn check(models: &[(String, FileModel)], analysis: &Analysis, cfgs: &[Cfg]) -> PoolScan {
    let mut scan = PoolScan::default();
    for (f, info) in analysis.fns.iter().enumerate() {
        let model = &models[info.model].1;
        let calls: BTreeMap<usize, &ResolvedCall> = info.calls.iter().map(|c| (c.tok, c)).collect();
        for call in info.calls.iter() {
            if let Some(site) = pool_site(model, call) {
                scan.static_sites.insert(format!("{site}:{}", call.name));
            }
        }
        let cfg = &cfgs[f];
        let mut dom = PoolDomain {
            model,
            calls,
            analysis,
            file: info.file.as_str(),
            take_lines: BTreeMap::new(),
            report: false,
            findings: Vec::new(),
            seen: BTreeSet::new(),
        };
        let solution = dataflow::solve(cfg, &mut dom);
        scan.iterations += solution.iterations;
        if dom.take_lines.is_empty() {
            continue;
        }
        scan.tracked += dom.take_lines.len();
        // Reporting pass: one sweep per block from its solved input.
        dom.report = true;
        for (b, block) in cfg.blocks.iter().enumerate() {
            let mut state = solution.inputs[b].clone();
            dom.transfer(b, &block.units, &mut state);
        }
        // Leak check: the state joined into the exit block.
        for (name, &bits) in &solution.inputs[cfg.exit] {
            if bits & LIVE != 0 {
                let line = dom.take_lines.get(name).copied().unwrap_or(info.line);
                dom.findings.push(Finding {
                    rule: "pool-typestate",
                    file: info.file.clone(),
                    line,
                    message: format!(
                        "pooled buffer `{name}` taken in `{}` may reach function exit \
                         without ship or recycle (an early return or `?` path leaks it \
                         from the pool)",
                        info.name
                    ),
                });
            }
        }
        scan.findings.append(&mut dom.findings);
    }
    scan.findings.sort();
    scan
}

/// The static ⊇ dynamic cross-check: every `name:op` pool operation
/// oftt-audit observed across its sweep must have a statically
/// discovered site. Returns the findings and the uncovered op list.
pub fn dynamic_coverage(
    static_sites: &BTreeSet<String>,
    dynamic: &[String],
) -> (Vec<Finding>, Vec<String>) {
    let mut findings = Vec::new();
    let mut uncovered = Vec::new();
    for op in dynamic {
        if !static_sites.contains(op) {
            let name = op.split(':').next().unwrap_or(op);
            findings.push(Finding {
                rule: "pool-coverage",
                file: "<oftt-audit sweep>".to_string(),
                line: 0,
                message: format!(
                    "dynamically observed pool op `{op}` has no statically discovered \
                     site — the typestate scan missed it (name the site with \
                     `// oftt-lint: pool({name})` if the receiver is called something else)"
                ),
            });
            uncovered.push(op.clone());
        }
    }
    (findings, uncovered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg;
    use crate::scanner::{scan as scan_src, FileKind};

    /// A pool impl the sources under test share, so take/give resolve
    /// and the returns-buffer summary seeds.
    const POOL: &str = "impl BufPool {\n\
        // oftt-lint: arena\n\
        pub fn take(&self, min: usize) -> Vec<u8> { Vec::with_capacity(min) }\n\
        pub fn give(&self, buf: Vec<u8>) { self.free.lock().push(buf); }\n\
        }\n";

    fn run(body: &str) -> PoolScan {
        let src = format!("{POOL}{body}");
        let models = vec![("a.rs".to_string(), scan_src(&src, FileKind::Runtime, false))];
        let analysis = Analysis::analyze(&models);
        let cfgs: Vec<Cfg> = analysis
            .fns
            .iter()
            .map(|info| cfg::build(&models[info.model].1, &models[info.model].1.fns[info.item]))
            .collect();
        check(&models, &analysis, &cfgs)
    }

    fn messages(scan: &PoolScan) -> Vec<&str> {
        scan.findings.iter().map(|f| f.message.as_str()).collect()
    }

    #[test]
    fn the_clean_take_fill_recycle_shape_passes() {
        let scan = run("impl Enc {\n\
            fn encode(&self) {\n\
                let mut staging = self.buf_pool.take(64);\n\
                staging.extend_from_slice(b\"x\");\n\
                self.buf_pool.give(staging);\n\
            }\n\
            }");
        assert_eq!(messages(&scan), Vec::<&str>::new());
        assert_eq!(scan.tracked, 1);
        assert!(scan.static_sites.contains("buf_pool:take"));
        assert!(scan.static_sites.contains("buf_pool:give"));
    }

    #[test]
    fn take_ship_into_consumer_passes() {
        let scan = run("fn sink(buf: Vec<u8>) { keeper.push(buf); }\n\
            impl Enc {\n\
            fn encode(&self) {\n\
                let staging = self.buf_pool.take(64);\n\
                sink(staging);\n\
            }\n\
            }");
        assert_eq!(messages(&scan), Vec::<&str>::new());
    }

    #[test]
    fn use_after_recycle_is_found() {
        let scan = run("impl Enc {\n\
            fn encode(&self) {\n\
                let mut staging = self.buf_pool.take(64);\n\
                self.buf_pool.give(staging);\n\
                staging.clear();\n\
            }\n\
            }");
        assert!(
            messages(&scan).iter().any(|m| m.contains("used after it may already be recycled")),
            "{:?}",
            scan.findings
        );
    }

    #[test]
    fn double_recycle_is_found() {
        let scan = run("impl Enc {\n\
            fn encode(&self, cond: bool) {\n\
                let staging = self.buf_pool.take(64);\n\
                if cond { self.buf_pool.give(staging); }\n\
                self.buf_pool.give(staging);\n\
            }\n\
            }");
        assert!(
            messages(&scan).iter().any(|m| m.contains("recycled again")),
            "{:?}",
            scan.findings
        );
    }

    #[test]
    fn leak_on_early_return_is_found() {
        let scan = run("impl Enc {\n\
            fn encode(&self, cond: bool) -> Result<(), E> {\n\
                let mut staging = self.buf_pool.take(64);\n\
                self.encode_into(&mut staging)?;\n\
                self.buf_pool.give(staging);\n\
                Ok(())\n\
            }\n\
            fn encode_into(&self, out: &mut Vec<u8>) -> Result<(), E> { Ok(()) }\n\
            }");
        assert!(
            messages(&scan).iter().any(|m| m.contains("may reach function exit")),
            "{:?}",
            scan.findings
        );
    }

    #[test]
    fn give_on_both_branches_is_not_a_leak_or_double() {
        let scan = run("impl Enc {\n\
            fn encode(&self, ok: bool) {\n\
                let staging = self.buf_pool.take(64);\n\
                if ok {\n\
                    self.ship(staging);\n\
                } else {\n\
                    self.buf_pool.give(staging);\n\
                }\n\
            }\n\
            fn ship(&self, buf: Vec<u8>) { self.out.lock().push(buf); }\n\
            }");
        assert_eq!(messages(&scan), Vec::<&str>::new());
    }

    #[test]
    fn annotated_sites_use_the_annotation_name() {
        let scan = run("impl Core {\n\
            fn snapshot(&self) {\n\
                // oftt-lint: pool(ckpt_staging)\n\
                let staging = self.ckpt_pool.take(64);\n\
                // oftt-lint: pool(ckpt_staging)\n\
                self.ckpt_pool.give(staging);\n\
            }\n\
            }");
        assert!(scan.static_sites.contains("ckpt_staging:take"), "{:?}", scan.static_sites);
        assert!(scan.static_sites.contains("ckpt_staging:give"));
        assert_eq!(messages(&scan), Vec::<&str>::new());
    }

    #[test]
    fn mem_take_is_not_a_pool_op() {
        let scan =
            run("fn rotate(slot: &mut Vec<u8>) { let old = std::mem::take(slot); use_it(old); }");
        assert!(scan.static_sites.is_empty());
        assert_eq!(scan.tracked, 0);
    }

    #[test]
    fn dynamic_coverage_reports_unseen_ops() {
        let mut sites = BTreeSet::new();
        sites.insert("ckpt_staging:take".to_string());
        let (findings, uncovered) = dynamic_coverage(
            &sites,
            &["ckpt_staging:take".to_string(), "ckpt_staging:give".to_string()],
        );
        assert_eq!(uncovered, vec!["ckpt_staging:give".to_string()]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("ckpt_staging:give"));
    }
}
