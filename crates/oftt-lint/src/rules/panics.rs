//! The panic-path lint for modules annotated `// oftt-lint: no-panic`.
//!
//! On the transport and ship hot paths a panic is a silent process
//! death the failover protocol then has to detect the slow way — the
//! exact outage class OFTT exists to bound. Files that declare
//! themselves panic-free get three pattern families flagged:
//!
//! * `.unwrap()` / `.expect(…)` on `Option`/`Result` receivers;
//! * panicking macros: `panic!`, `unreachable!`, `todo!`,
//!   `unimplemented!`, `assert!`, `assert_eq!`, `assert_ne!`
//!   (`debug_assert*` compiles out of release builds and is allowed);
//! * index expressions — `buf[i]`, `map[&k]`, `raw[6..10]` — where the
//!   `[` follows an identifier or a closing `)`/`]`, the shapes that
//!   can be an `Index` use. Array-literal, slice-pattern, and type
//!   positions don't match. (Attributes were already stripped by the
//!   scanner, so `#[…]` can't false-positive.)

use crate::report::Finding;
use crate::scanner::{FileKind, FileModel};

use super::{ident, punct};

/// Macros that abort the thread. The effect engine treats a call to any
/// of these as a direct `may_panic` source, workspace-wide.
pub const PANIC_MACROS: &[&str] =
    &["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];

/// True if the `[` at `i` opens an *index expression* — `buf[i]`,
/// `map[&k]`, `raw[1..3]` — rather than an array literal, slice
/// pattern, or type. Shared between the per-module rule and the
/// workspace-wide effect engine.
pub(crate) fn indexes_value(tokens: &[crate::lexer::Token], i: usize) -> bool {
    // Keywords may precede a slice pattern or array literal
    // (`let [a, b]`, `return [0; 2]`) — never an indexed value.
    const KEYWORDS: &[&str] = &[
        "let", "mut", "ref", "in", "return", "break", "continue", "if", "else", "while", "for",
        "match", "move",
    ];
    match i.checked_sub(1) {
        Some(p) => match ident(tokens, p) {
            Some(word) => !KEYWORDS.contains(&word),
            None => matches!(punct(tokens, p), Some(')' | ']')),
        },
        None => false,
    }
}

/// Checks one file. Applies only to runtime files carrying the
/// `no-panic` directive.
pub fn check(file: &str, model: &FileModel) -> Vec<Finding> {
    let mut out = Vec::new();
    if model.kind != FileKind::Runtime || !model.has_file_directive("no-panic") {
        return out;
    }
    let tokens = &model.tokens;
    let mut flag = |line: u32, message: String| {
        out.push(Finding { rule: "no-panic", file: file.to_string(), line, message });
    };
    for i in 0..tokens.len() {
        if punct(tokens, i) == Some('.') {
            if let Some(name @ ("unwrap" | "expect")) = ident(tokens, i + 1) {
                if punct(tokens, i + 2) == Some('(') {
                    flag(
                        tokens[i].line,
                        format!(
                            "`.{name}(…)` in a module annotated `// oftt-lint: no-panic` \
                             — handle the failure or restructure so it cannot occur"
                        ),
                    );
                }
            }
        } else if let Some(name) = ident(tokens, i) {
            if PANIC_MACROS.contains(&name) && punct(tokens, i + 1) == Some('!') {
                flag(
                    tokens[i].line,
                    format!("`{name}!` in a module annotated `// oftt-lint: no-panic`"),
                );
            }
        } else if punct(tokens, i) == Some('[') && indexes_value(tokens, i) {
            flag(
                tokens[i].line,
                "index expression can panic on out-of-range access in a module \
                 annotated `// oftt-lint: no-panic` — use `.get(…)` or a checked slice"
                    .to_string(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn check_src(source: &str) -> Vec<Finding> {
        check("f.rs", &scan(source, FileKind::Runtime, false))
    }

    const HEADER: &str = "// oftt-lint: no-panic\n";

    #[test]
    fn unwrap_and_expect_are_flagged() {
        let findings = check_src(&format!(
            "{HEADER}fn f(x: Option<u8>) {{ x.unwrap(); x.expect(\"oops\"); }}"
        ));
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn panic_macros_are_flagged_but_debug_assert_is_not() {
        let findings = check_src(&format!(
            "{HEADER}fn f() {{ assert!(true); debug_assert!(true); unreachable!(); }}"
        ));
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn index_expressions_are_flagged() {
        let findings =
            check_src(&format!("{HEADER}fn f(raw: &[u8]) -> u8 {{ raw[6] + raw[1..3][0] }}"));
        assert_eq!(findings.len(), 3);
    }

    #[test]
    fn non_index_bracket_positions_are_silent() {
        let findings = check_src(&format!(
            "{HEADER}fn f() -> [u8; 2] {{ let v = vec![1, 2]; let [a, b] = [v[0]; 2]; [0, 0] }}"
        ));
        // Only `v[0]` indexes; the array type, vec! macro, slice
        // pattern, and array literals do not.
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn unwrap_or_variants_are_not_unwrap() {
        let findings = check_src(&format!(
            "{HEADER}fn f(x: Option<u8>) -> u8 {{ x.unwrap_or(0).min(x.unwrap_or_default()) }}"
        ));
        assert!(findings.is_empty());
    }

    #[test]
    fn unannotated_files_are_not_checked() {
        let findings = check_src("fn f(x: Option<u8>) { x.unwrap(); }");
        assert!(findings.is_empty());
    }

    #[test]
    fn test_code_may_panic() {
        let findings = check_src(&format!(
            "{HEADER}fn f() {{}}\n#[cfg(test)] mod tests {{ fn t() {{ x.unwrap(); a[0]; }} }}"
        ));
        assert!(findings.is_empty());
    }
}
