//! The reactor-hot-path rule: every function transitively reachable
//! from a `// oftt-lint: reactor-root` entry point must be nonblocking
//! and panic-free, and may allocate only through the `arena`-annotated
//! `BufPool` operations.
//!
//! PR 7 made this the load-bearing invariant of the whole transport: a
//! fixed pool of `io_threads` serves *every* connection, so one
//! blocking call or panic anywhere under a reactor handler stalls or
//! kills the fleet's I/O — not one peer's. The rule walks the resolved
//! call graph breadth-first from the roots (so witness chains are
//! shortest paths) and flags every *direct* effect primitive in every
//! reachable function. Havoc — a call the resolver cannot see — is a
//! violation here and only here: on the hot path an unproved call is an
//! unmet proof obligation, not a shrug.

use std::collections::BTreeMap;

use crate::effects::{Analysis, EffectKind};
use crate::report::Finding;

/// Checks the analysis and returns hot-path findings.
pub fn check(analysis: &Analysis) -> Vec<Finding> {
    let mut out = Vec::new();
    let reachable = analysis.reactor_reachable();
    let parents: BTreeMap<_, _> = reachable.iter().copied().collect();
    for &(f, _) in &reachable {
        let info = &analysis.fns[f];
        for prim in &info.prims {
            let chain = analysis.root_chain(&parents, f);
            let detail = match prim.kind {
                EffectKind::Blocks => {
                    format!("blocking call `{}` on the reactor hot path (via {chain})", prim.what)
                }
                EffectKind::Panics => {
                    format!("panic path `{}` on the reactor hot path (via {chain})", prim.what)
                }
                EffectKind::Allocs => format!(
                    "allocation `{}` outside the BufPool arena on the reactor hot path \
                     (via {chain})",
                    prim.what
                ),
                EffectKind::Havoc => format!(
                    "unresolvable call `{}` on the reactor hot path (via {chain}) — the \
                     nonblocking/no-panic proof cannot close over it; resolve it or teach \
                     the effect tables",
                    prim.what
                ),
            };
            out.push(Finding {
                rule: "reactor-hot-path",
                file: info.file.clone(),
                line: prim.line,
                message: detail,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::Analysis;
    use crate::scanner::{scan, FileKind, FileModel};

    fn findings(src: &str) -> Vec<Finding> {
        let models: Vec<(String, FileModel)> =
            vec![("a.rs".to_string(), scan(src, FileKind::Runtime, false))];
        check(&Analysis::analyze(&models))
    }

    #[test]
    fn blocking_two_calls_deep_is_flagged_with_the_chain() {
        let out = findings(
            "// oftt-lint: reactor-root\n\
             fn on_frame() { step(); }\n\
             fn step() { nap(); }\n\
             fn nap() { std::thread::sleep(d); }",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "reactor-hot-path");
        assert_eq!(out[0].line, 4);
        assert!(out[0].message.contains("`sleep`"));
        assert!(out[0].message.contains("on_frame → step → nap"), "{}", out[0].message);
    }

    #[test]
    fn unreachable_code_may_block_freely() {
        let out = findings(
            "// oftt-lint: reactor-root\n\
             fn on_frame() {}\n\
             fn dial_loop() { std::thread::sleep(d); }",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn arena_allocation_is_sanctioned_but_other_allocation_is_not() {
        let out = findings(
            "// oftt-lint: reactor-root\n\
             fn on_frame(&self) { self.pool_take(); stray(); }\n\
             // oftt-lint: arena\n\
             fn pool_take(&self) -> Vec<u8> { Vec::with_capacity(64) }\n\
             fn stray() -> String { format!(\"x\") }",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`format!`"));
        assert!(out[0].message.contains("outside the BufPool arena"));
    }

    #[test]
    fn cold_path_annotation_stops_the_walk() {
        let out = findings(
            "// oftt-lint: reactor-root\n\
             fn on_frame(&self) { self.handle_hello(); self.fast(); }\n\
             // oftt-lint: cold-path\n\
             fn handle_hello(&self) { self.greet(); }\n\
             fn greet(&self) -> String { format!(\"hi\") }\n\
             fn fast(&self) {}",
        );
        assert!(out.is_empty(), "cold subtree must be exempt: {out:?}");
    }

    #[test]
    fn cold_functions_stay_flagged_when_reached_warm() {
        // A fn reachable through a cold annotation AND a warm edge is
        // still on the hot path via the warm edge.
        let out = findings(
            "// oftt-lint: reactor-root\n\
             fn on_frame(&self) { self.handle_hello(); self.greet(); }\n\
             // oftt-lint: cold-path\n\
             fn handle_hello(&self) { self.greet(); }\n\
             fn greet(&self) -> String { format!(\"hi\") }",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`format!`"));
    }

    #[test]
    fn havoc_on_the_hot_path_is_an_unmet_proof_obligation() {
        let out = findings(
            "// oftt-lint: reactor-root\n\
             fn on_frame() { mystery(); }",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("unresolvable call `mystery`"));
    }
}
