//! The blocking-call lint for modules annotated
//! `// oftt-lint: nonblocking`.
//!
//! The paper's control loop promises bounded per-period latency; a
//! blocking syscall or an uncontended-in-testing lock wait on that path
//! is exactly the class of bug the deterministic simulator cannot
//! surface (it never blocks for real). Files that declare themselves
//! nonblocking therefore get a deny-list of call names — sleeps,
//! channel/condvar waits, thread parks/joins, socket accept/connect,
//! and synchronous file/stream I/O. `lock` itself is on the list: a
//! nonblocking module must not take a blocking mutex at all
//! (`try_lock` is the sanctioned escape hatch and does not match).

use crate::report::Finding;
use crate::scanner::{FileKind, FileModel};

use super::{ident, is_call};

/// Call names that can block the caller.
pub const BLOCKING_CALLS: &[&str] = &[
    "sleep",
    "sleep_ms",
    "lock",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "wait",
    "wait_timeout",
    "wait_while",
    "park",
    "park_timeout",
    "join",
    "accept",
    "connect",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_line",
    "write_all",
    "flush",
    "sync_all",
    "sync_data",
];

/// Checks one file. Applies only to runtime files carrying the
/// `nonblocking` directive.
pub fn check(file: &str, model: &FileModel) -> Vec<Finding> {
    let mut out = Vec::new();
    if model.kind != FileKind::Runtime || !model.has_file_directive("nonblocking") {
        return out;
    }
    for i in 0..model.tokens.len() {
        let Some(name) = ident(&model.tokens, i) else { continue };
        if BLOCKING_CALLS.contains(&name) && is_call(&model.tokens, i) {
            out.push(Finding {
                rule: "nonblocking",
                file: file.to_string(),
                line: model.tokens[i].line,
                message: format!(
                    "call to blocking `{name}` in a module annotated \
                     `// oftt-lint: nonblocking`"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn check_src(source: &str) -> Vec<Finding> {
        check("f.rs", &scan(source, FileKind::Runtime, false))
    }

    #[test]
    fn sleep_in_a_nonblocking_module_is_flagged() {
        let findings = check_src(
            "// oftt-lint: nonblocking\n\
             fn f() { std::thread::sleep(Duration::from_millis(5)); }",
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("`sleep`"));
    }

    #[test]
    fn lock_is_blocking_but_try_lock_is_not() {
        let findings = check_src(
            "// oftt-lint: nonblocking\n\
             fn f(&self) { self.a.lock(); self.b.try_lock(); }",
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("`lock`"));
    }

    #[test]
    fn unannotated_files_are_not_checked() {
        let findings = check_src("fn f() { std::thread::sleep(d); }");
        assert!(findings.is_empty());
    }

    #[test]
    fn defining_a_fn_named_like_a_blocking_call_is_fine() {
        let findings = check_src(
            "// oftt-lint: nonblocking\n\
             fn flush(&mut self) -> usize { self.pending.len() }",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn test_code_in_a_nonblocking_module_may_block() {
        let findings = check_src(
            "// oftt-lint: nonblocking\n\
             fn f() {}\n\
             #[cfg(test)] mod tests { fn t() { rx.recv(); } }",
        );
        assert!(findings.is_empty());
    }
}
