//! **conn-dfa** — connection state machines only take transitions their
//! declared table admits.
//!
//! The supervisor's per-connection lifecycle is a small DFA
//! (AwaitHello → Established), and the protocol's correctness arguments
//! lean on it: a connection that reaches `Established` without passing
//! the hello exchange skips epoch negotiation entirely. The table is
//! declared once next to the enum:
//!
//! ```text
//! // oftt-lint: dfa(ConnCtx, new => AwaitHello, new => Established, AwaitHello => Established)
//! ```
//!
//! and this rule statically extracts every *construction* of a declared
//! variant, resolves its source state, and checks the `(from, to)` pair
//! against the table. The source state is `new` (fresh connection — no
//! prior tracked state) unless the site is annotated
//! `// oftt-lint: dfa-from(STATE)`, which asserts the construction
//! replaces an entry currently in `STATE` (the handshake handler's
//! AwaitHello → Established swap).
//!
//! Occurrences are classified syntactically from the token stream:
//!
//! * **pattern** — destructuring in a `match` arm (a `=>` follows,
//!   after the variant's field group and any closing parens), an
//!   or-pattern (`|` adjacent), a guard (`if` follows the fields), or a
//!   `let`/`if let` binder (nearest of `let`/`=`/`;` scanning backward
//!   is `let`). Patterns *observe* states and are never transitions.
//! * **read** — `==`/`!=` comparisons and `use` imports; also not
//!   transitions.
//! * everything else is a **construction** and must justify its edge.
//!
//! A `dfa-from(STATE)` annotation naming a state that no table lists as
//! a transition source is itself a finding — a stale annotation must
//! not silently admit edges.

use crate::report::Finding;
use crate::rules::{ident, punct};
use crate::scanner::FileModel;

/// The conn-dfa extraction result.
pub struct DfaScan {
    /// Violations and stale-annotation findings, in source order.
    pub findings: Vec<Finding>,
    /// Constructions checked against a declared table.
    pub transitions_checked: usize,
}

/// True if the `Enum :: Variant` occurrence at `e..=v` is a pattern
/// (or a guard head), not a construction.
fn is_pattern(toks: &[crate::lexer::Token], e: usize, v: usize) -> bool {
    // Or-patterns touch a `|` on either side.
    if punct(toks, v + 1) == Some('|') || (e > 0 && punct(toks, e - 1) == Some('|')) {
        return true;
    }
    // Forward: skip the field group and closing parens, then look for
    // `=>` (match arm) or `if` (arm guard).
    let mut j = v + 1;
    if let Some(open @ ('{' | '(')) = punct(toks, j) {
        let close = if open == '{' { '}' } else { ')' };
        let mut depth = 0usize;
        while j < toks.len() {
            match punct(toks, j) {
                Some(c) if c == open => depth += 1,
                Some(c) if c == close => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    while punct(toks, j) == Some(')') {
        j += 1;
    }
    if punct(toks, j) == Some('=') && punct(toks, j + 1) == Some('>') {
        return true;
    }
    if ident(toks, j) == Some("if") {
        return true;
    }
    // Backward: a `let` with no intervening `=` means we're the
    // pattern side of a `let` / `if let` / `while let` binder.
    let mut k = e;
    for _ in 0..16 {
        let Some(p) = k.checked_sub(1) else { break };
        k = p;
        if ident(toks, k) == Some("let") {
            return true;
        }
        if matches!(punct(toks, k), Some('=') | Some(';') | Some('{') | Some('}')) {
            break;
        }
    }
    false
}

/// Checks every file that declares a `dfa(...)` table.
pub fn check(models: &[(String, FileModel)]) -> DfaScan {
    let mut scan = DfaScan { findings: Vec::new(), transitions_checked: 0 };
    for (file, model) in models {
        if model.dfa_decls.is_empty() {
            continue;
        }
        let toks = &model.tokens;
        for e in 0..toks.len() {
            let Some(en) = ident(toks, e) else { continue };
            let Some(decl) = model.dfa_decls.iter().find(|d| d.enum_name == en) else {
                continue;
            };
            if punct(toks, e + 1) != Some(':') || punct(toks, e + 2) != Some(':') {
                continue;
            }
            let v = e + 3;
            let Some(variant) = ident(toks, v) else { continue };
            if e > 0 && ident(toks, e - 1) == Some("use") {
                continue;
            }
            // `== Enum::V` / `!= Enum::V` comparisons observe, not
            // transition.
            if e >= 2
                && punct(toks, e - 1) == Some('=')
                && matches!(punct(toks, e - 2), Some('=') | Some('!'))
            {
                continue;
            }
            if is_pattern(toks, e, v) {
                continue;
            }
            scan.transitions_checked += 1;
            let line = toks[e].line;
            let from = model.dfa_from_at(line).unwrap_or("new");
            if !decl.transitions.iter().any(|(f, t)| f == from && t == variant) {
                scan.findings.push(Finding {
                    rule: "conn-dfa",
                    file: file.clone(),
                    line,
                    message: format!(
                        "construction of `{en}::{variant}` takes the undeclared transition \
                         `{from} => {variant}` — add it to the `dfa({en}, …)` table or \
                         annotate the true source state with `// oftt-lint: dfa-from(STATE)`"
                    ),
                });
            }
        }
        // Stale `dfa-from` annotations would silently admit edges.
        for (&line, state) in &model.dfa_from {
            let known =
                model.dfa_decls.iter().any(|d| d.transitions.iter().any(|(f, _)| f == state));
            if !known {
                scan.findings.push(Finding {
                    rule: "conn-dfa",
                    file: file.clone(),
                    line,
                    message: format!(
                        "dfa-from({state}) names a state no dfa() table declares as a \
                         transition source"
                    ),
                });
            }
        }
    }
    scan.findings.sort();
    scan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::{scan as scan_src, FileKind};

    fn run(src: &str) -> DfaScan {
        let models = vec![("a.rs".to_string(), scan_src(src, FileKind::Runtime, false))];
        check(&models)
    }

    const DECL: &str = "// oftt-lint: dfa(Conn, new => AwaitHello, AwaitHello => Established)\n";

    #[test]
    fn declared_constructions_pass() {
        let s = run(&format!(
            "{DECL}fn f(m: &mut Map) {{\n\
             m.insert(k, Conn::AwaitHello {{ deadline }});\n\
             // oftt-lint: dfa-from(AwaitHello)\n\
             m.insert(k, Conn::Established {{ link }});\n\
             }}"
        ));
        assert_eq!(s.findings, Vec::new());
        assert_eq!(s.transitions_checked, 2);
    }

    #[test]
    fn undeclared_edge_is_found() {
        let s = run(&format!(
            "{DECL}fn f(m: &mut Map) {{ m.insert(k, Conn::Established {{ link }}); }}"
        ));
        assert_eq!(s.findings.len(), 1, "{:?}", s.findings);
        assert!(s.findings[0].message.contains("`new => Established`"));
    }

    #[test]
    fn patterns_and_comparisons_are_not_transitions() {
        let s = run(&format!(
            "{DECL}fn f(m: &Map, state: Conn) {{\n\
             match m.get(&k) {{\n\
                 Some(Conn::AwaitHello {{ .. }}) => {{}}\n\
                 Some(Conn::Established {{ link, .. }}) if link.up() => {{}}\n\
                 _ => {{}}\n\
             }}\n\
             if let Conn::AwaitHello {{ deadline }} = state {{}}\n\
             let Some(Conn::Established {{ link, .. }}) = m.get(&k) else {{ return; }};\n\
             if state == Conn::AwaitHello {{}}\n\
             }}"
        ));
        // Only the `==` comparison of a unit-path would even be a
        // candidate, and it's excluded as a read.
        assert_eq!(s.findings, Vec::new());
        assert_eq!(s.transitions_checked, 0);
    }

    #[test]
    fn or_patterns_are_not_transitions() {
        let s = run(&format!(
            "{DECL}fn f(state: &Conn) -> bool {{\n\
             matches!(state, Conn::AwaitHello {{ .. }} | Conn::Established {{ .. }})\n\
             }}"
        ));
        assert_eq!(s.findings, Vec::new());
    }

    #[test]
    fn stale_dfa_from_annotation_is_found() {
        let s = run(&format!(
            "{DECL}fn f(m: &mut Map) {{\n\
             // oftt-lint: dfa-from(Zombie)\n\
             m.insert(k, Conn::Established {{ link }});\n\
             }}"
        ));
        assert!(
            s.findings.iter().any(|f| f.message.contains("dfa-from(Zombie)")),
            "{:?}",
            s.findings
        );
    }

    #[test]
    fn files_without_a_table_are_ignored() {
        let s = run("fn f(m: &mut Map) { m.insert(k, Conn::Weird { x }); }");
        assert_eq!(s.findings, Vec::new());
        assert_eq!(s.transitions_checked, 0);
    }
}
