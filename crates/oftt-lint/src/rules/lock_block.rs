//! The lock-across-blocking rule: no lock guard may be live across a
//! call whose transitive effect includes `blocks`.
//!
//! This is the classic convoy/deadlock recipe the per-module rules
//! cannot see: the acquisition and the blocking call are each fine in
//! isolation — the hazard is the *composition*, a guard pinned while
//! the thread sleeps in a syscall, starving every other path that
//! needs the same lock. The guard interpreter supplies the held set at
//! every call site; the effect fixpoint supplies the callee's verdict.
//! Only *definite* blocking (a witness chain ending in a known
//! primitive) fires — havoc never manufactures a finding here, per the
//! documented policy.

use crate::effects::{Analysis, EffectKind};
use crate::report::Finding;

/// Checks the analysis and returns lock-across-blocking findings.
pub fn check(analysis: &Analysis) -> Vec<Finding> {
    let mut out = Vec::new();
    for (f, info) in analysis.fns.iter().enumerate() {
        for call in &info.calls {
            if call.held.is_empty() {
                continue;
            }
            // A directly blocking primitive under a held guard.
            if call.prim == Some(EffectKind::Blocks) {
                for guard in &call.held {
                    out.push(Finding {
                        rule: "lock-across-blocking",
                        file: info.file.clone(),
                        line: call.line,
                        message: format!(
                            "guard on lock `{guard}` held across blocking call `{}` in `{}`",
                            call.name, info.name
                        ),
                    });
                }
                continue;
            }
            // A call into a function that transitively blocks.
            let Some(&g) = call.targets.iter().find(|&&g| analysis.effects[g].blocks.is_some())
            else {
                continue;
            };
            let witness = analysis
                .witness(g, EffectKind::Blocks)
                .unwrap_or_else(|| analysis.fns[g].name.clone());
            for guard in &call.held {
                out.push(Finding {
                    rule: "lock-across-blocking",
                    file: info.file.clone(),
                    line: call.line,
                    message: format!(
                        "guard on lock `{guard}` held across call to `{}`, which blocks: \
                         {witness}",
                        call.name
                    ),
                });
            }
        }
        let _ = f;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::Analysis;
    use crate::scanner::{scan, FileKind, FileModel};

    fn findings(src: &str) -> Vec<Finding> {
        let models: Vec<(String, FileModel)> =
            vec![("a.rs".to_string(), scan(src, FileKind::Runtime, false))];
        check(&Analysis::analyze(&models))
    }

    #[test]
    fn guard_across_a_transitively_blocking_call_is_flagged() {
        // `drain` collides with a benign std name; the enclosing impl
        // gives `self.drain()` ownership evidence, which beats the
        // intrinsic tables.
        let out = findings(
            "impl S { fn f(&self) { let g = self.state.lock(); self.drain(); }\n\
             fn drain(&self) { self.sync(); }\n\
             fn sync(&self) { self.file.sync_all(); } }",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`state`"));
        assert!(out[0].message.contains("drain → sync: sync_all"), "{}", out[0].message);
    }

    #[test]
    fn guard_across_a_direct_sleep_is_flagged() {
        let out = findings("fn f(&self) { let g = self.state.lock(); std::thread::sleep(d); }");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("blocking call `sleep`"));
    }

    #[test]
    fn dropping_the_guard_first_is_fine() {
        let out = findings(
            "fn f(&self) { let g = self.state.lock(); drop(g); self.nap(); }\n\
             fn nap(&self) { std::thread::sleep(d); }",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn havoc_alone_never_fires_this_rule() {
        let out = findings("fn f(&self) { let g = self.state.lock(); mystery(); }");
        assert!(out.is_empty());
    }

    #[test]
    fn nonblocking_callees_are_fine() {
        let out = findings(
            "fn f(&self) { let g = self.state.lock(); self.bump(); }\n\
             fn bump(&self) { self.count += 1; }",
        );
        assert!(out.is_empty());
    }
}
