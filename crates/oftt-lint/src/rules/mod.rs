//! The rule families, plus the small token-pattern helpers they
//! share. Each rule consumes a [`crate::scanner::FileModel`] and returns
//! [`crate::report::Finding`]s; none of them re-tokenizes anything.

pub mod blocking;
pub mod conn_dfa;
pub mod drift;
pub mod epoch;
pub mod hotpath;
pub mod lifecycle;
pub mod lock_block;
pub mod locks;
pub mod panics;
pub mod pool;
pub mod role;

use crate::lexer::{Token, TokenKind};
use crate::scanner::{FileModel, FnItem};

/// The identifier text at `i`, if the token is an identifier.
pub(crate) fn ident(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// The punctuation character at `i`, if the token is punctuation.
pub(crate) fn punct(tokens: &[Token], i: usize) -> Option<char> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// The string-literal content at `i`, if the token is a string.
pub(crate) fn string(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// The base identifier of the receiver expression ending just before the
/// `.` at index `dot`: the last path segment for `a.b.c.lock()` (`c`),
/// looking through one trailing `(...)` or `[...]` group so
/// `map[&k].lock()` and `cell.get().lock()` resolve to `map` / `get`.
pub(crate) fn receiver_base(tokens: &[Token], dot: usize) -> Option<String> {
    let mut i = dot.checked_sub(1)?;
    if let Some(close @ (')' | ']')) = punct(tokens, i) {
        let open = if close == ')' { '(' } else { '[' };
        let mut depth = 0usize;
        loop {
            match punct(tokens, i) {
                Some(c) if c == close => depth += 1,
                Some(c) if c == open => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            i = i.checked_sub(1)?;
        }
        i = i.checked_sub(1)?;
    }
    ident(tokens, i).map(str::to_string)
}

/// True if token index `i` falls inside the body of a *different* fn
/// nested within `item`'s body — rules scanning `item` skip those spans
/// so a nested fn's code is attributed (and exempted) only once, under
/// its own item.
pub(crate) fn in_nested_fn(model: &FileModel, item: &FnItem, i: usize) -> bool {
    model.fns.iter().any(|g| {
        g.body.start > item.body.start && g.body.end <= item.body.end && g.body.contains(&i)
    })
}

/// True if the identifier at `i` is a *call* (followed by `(`) and not a
/// function definition's own name (preceded by `fn`).
pub(crate) fn is_call(tokens: &[Token], i: usize) -> bool {
    punct(tokens, i + 1) == Some('(')
        && !matches!(i.checked_sub(1).and_then(|p| ident(tokens, p)), Some("fn"))
}
