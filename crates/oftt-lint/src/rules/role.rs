//! Role-mutation confinement: every write to role/term state must flow
//! through the transition apply path.
//!
//! The protocol's one-word contract is that `oftt::transition::step`
//! decides and the engine *applies* — role and term are written only by
//! the designated apply functions. This rule enforces that contract at
//! the source level: any `.role = …` / `.term = …` store (plain or
//! compound) in runtime code is a finding unless the enclosing function
//! is annotated `// oftt-lint: role-choke-point` (the apply path itself)
//! or `// oftt-lint: role-mirror` (a confined secondary copy, such as
//! the FTIM shadowing the engine's role for its own dispatch).
//!
//! Reads, comparisons (`==`, `<=`), struct-literal fields (`role: x`),
//! and pattern matches never match the store pattern and stay silent.

use crate::report::Finding;
use crate::scanner::{FileKind, FileModel};

use super::{ident, in_nested_fn, punct};

/// Field names whose stores are confined.
const CONFINED_FIELDS: &[&str] = &["role", "term"];

/// Is the punctuation starting at `j` an assignment operator? Covers `=`
/// (but not `==` / `=>`) and the compound forms `+=` `-=` `*=` `/=` `%=`
/// `&=` `|=` `^=` `<<=` `>>=`.
fn is_store(tokens: &[crate::lexer::Token], j: usize) -> bool {
    match punct(tokens, j) {
        Some('=') => !matches!(punct(tokens, j + 1), Some('=') | Some('>')),
        Some('+') | Some('-') | Some('*') | Some('/') | Some('%') | Some('&') | Some('|')
        | Some('^') => punct(tokens, j + 1) == Some('='),
        Some(c @ ('<' | '>')) => {
            punct(tokens, j + 1) == Some(c) && punct(tokens, j + 2) == Some('=')
        }
        _ => false,
    }
}

/// Checks one file. Applies to runtime code only.
pub fn check(file: &str, model: &FileModel) -> Vec<Finding> {
    let mut out = Vec::new();
    if model.kind != FileKind::Runtime {
        return out;
    }
    for item in &model.fns {
        if item.has_directive("role-choke-point") || item.has_directive("role-mirror") {
            continue;
        }
        for i in item.body.clone() {
            if in_nested_fn(model, item, i) {
                continue;
            }
            if punct(&model.tokens, i) != Some('.') {
                continue;
            }
            let Some(field) = ident(&model.tokens, i + 1) else { continue };
            if !CONFINED_FIELDS.contains(&field) || !is_store(&model.tokens, i + 2) {
                continue;
            }
            out.push(Finding {
                rule: "role-confinement",
                file: file.to_string(),
                line: model.tokens[i].line,
                message: format!(
                    "`{}` writes `.{field}` outside the transition apply path \
                     (annotate `// oftt-lint: role-choke-point` or `role-mirror` \
                     if this is a sanctioned apply site)",
                    item.name
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn check_src(source: &str) -> Vec<Finding> {
        check("f.rs", &scan(source, FileKind::Runtime, false))
    }

    #[test]
    fn unannotated_role_write_is_flagged() {
        let findings = check_src("fn sneak(&mut self) { self.role = Role::Primary; }");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("`sneak` writes `.role`"));
    }

    #[test]
    fn compound_term_write_is_flagged() {
        let findings = check_src("fn bump(&mut self) { self.term += 1; }");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains(".term"));
    }

    #[test]
    fn choke_point_annotation_exempts() {
        let findings = check_src(
            "// oftt-lint: role-choke-point\n\
             fn set_role(&mut self, role: Role) { self.role = role; self.term = 3; }",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn reads_and_comparisons_are_silent() {
        let findings = check_src(
            "fn observe(&self) -> bool { self.role == Role::Primary && self.term <= 9 }\n\
             fn copy(&self) -> Role { self.role }\n\
             fn build() -> S { S { role: Role::Backup, term: 0 } }",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn annotation_does_not_leak_to_the_next_fn() {
        let findings = check_src(
            "// oftt-lint: role-choke-point\n\
             fn apply(&mut self) { self.role = Role::Backup; }\n\
             fn other(&mut self) { self.term = 1; }",
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("`other`"));
    }

    #[test]
    fn test_code_is_not_checked() {
        let findings = check_src(
            "#[cfg(test)] mod tests { fn helper(s: &mut S) { s.role = Role::Primary; } }",
        );
        assert!(findings.is_empty());
    }
}
