//! **epoch-stamping** — flow-sensitive proof that frames pulled from
//! the sharded queues are stamped with the connection epoch before they
//! reach the vectored write path.
//!
//! The wire protocol drops frames whose header epoch doesn't match the
//! receiver's current connection epoch, so a frame shipped with a stale
//! (or default) epoch is silently discarded after a reconnect — a
//! liveness bug the model checker only catches if a schedule happens to
//! interleave a reconnect with a flush. This rule proves the stamping
//! obligation over *all* paths instead:
//!
//! * a binding becomes **drained** when passed `&mut` to a
//!   `drain_into(…)` call — it now holds raw [`OutFrame`]s with no
//!   epoch;
//! * a unit that mentions the binding together with `StampedFrame`
//!   (the only constructor carrying an epoch into the write path)
//!   **stamps** it;
//! * any other consuming mention of a drained binding — `.into_iter()`,
//!   `extend(pulled)`, a bare-argument move — while unstamped is a
//!   finding, with the reactor root chain as witness when the function
//!   is hot-path reachable.
//!
//! The lattice is the may-set {Drained, Stamped} per binding with union
//! join: a path that stamps and a path that doesn't still flags the
//! unstamped consumption.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::cfg::Cfg;
use crate::dataflow::{self, Domain};
use crate::effects::Analysis;
use crate::report::Finding;
use crate::rules::{ident, punct};
use crate::scanner::FileModel;

/// May have been filled by `drain_into` and not yet stamped.
const DRAINED: u8 = 1;
/// Every drained frame was re-wrapped through `StampedFrame`.
const STAMPED: u8 = 2;

struct EpochDomain<'a> {
    model: &'a FileModel,
    file: &'a str,
    chain: Option<&'a str>,
    report: bool,
    findings: Vec<Finding>,
    seen: BTreeSet<u32>,
    tracked: BTreeSet<String>,
}

impl EpochDomain<'_> {
    /// The bindings passed `&mut NAME` to a `drain_into` call in this
    /// unit.
    fn drained_bindings(&self, unit: &Range<usize>) -> Vec<String> {
        let toks = &self.model.tokens;
        let mut out = Vec::new();
        let mut i = unit.start;
        while i < unit.end.min(toks.len()) {
            if ident(toks, i) == Some("drain_into") {
                let mut k = i + 1;
                while k < unit.end.min(toks.len()) {
                    if punct(toks, k) == Some('&')
                        && ident(toks, k + 1) == Some("mut")
                        && ident(toks, k + 2).is_some()
                    {
                        out.push(ident(toks, k + 2).unwrap().to_string());
                        k += 2;
                    }
                    if punct(toks, k) == Some(';') {
                        break;
                    }
                    k += 1;
                }
            }
            i += 1;
        }
        out
    }

    fn transfer_unit(&mut self, unit: &Range<usize>, state: &mut BTreeMap<String, u8>) {
        let toks = &self.model.tokens;
        let drained = self.drained_bindings(unit);
        let stamps = self.model.tokens[unit.start..unit.end.min(toks.len())]
            .iter()
            .any(|t| matches!(&t.kind, crate::lexer::TokenKind::Ident(s) if s == "StampedFrame"));
        let mut i = unit.start;
        while i < unit.end.min(toks.len()) {
            let Some(name) = ident(toks, i) else {
                i += 1;
                continue;
            };
            let Some(&bits) = state.get(name) else {
                i += 1;
                continue;
            };
            let after_dot = punct(toks, i.wrapping_sub(1)) == Some('.') && i > 0;
            let borrowed_mut = punct(toks, i.wrapping_sub(1)) == Some('&')
                || (ident(toks, i.wrapping_sub(1)) == Some("mut")
                    && punct(toks, i.wrapping_sub(2)) == Some('&'));
            if after_dot || borrowed_mut {
                i += 1;
                continue;
            }
            // A consuming mention: receiver of a method chain
            // (`pulled.into_iter()`), a bare-argument move
            // (`extend(pulled)`), a struct-literal field.
            let consuming = punct(toks, i + 1) == Some('.')
                || (matches!(punct(toks, i.wrapping_sub(1)), Some('(') | Some(','))
                    && matches!(punct(toks, i + 1), Some(')') | Some(',')));
            let unstamped = consuming && bits & DRAINED != 0 && bits & STAMPED == 0 && !stamps;
            if unstamped && self.report && self.seen.insert(toks[i].line) {
                let via = self.chain.map(|c| format!(" (via {c})")).unwrap_or_default();
                self.findings.push(Finding {
                    rule: "epoch-stamping",
                    file: self.file.to_string(),
                    line: toks[i].line,
                    message: format!(
                        "frames drained into `{name}` reach the write path without an \
                         epoch stamp{via} — wrap them in `StampedFrame {{ frame, epoch }}` \
                         or the receiver drops them after any reconnect"
                    ),
                });
            }
            if consuming && stamps {
                state.insert(name.to_string(), STAMPED);
            }
            i += 1;
        }
        for name in drained {
            state.insert(name.clone(), DRAINED);
            self.tracked.insert(name);
        }
    }
}

impl Domain for EpochDomain<'_> {
    type State = BTreeMap<String, u8>;

    fn entry_state(&self) -> Self::State {
        BTreeMap::new()
    }

    fn empty_state(&self) -> Self::State {
        BTreeMap::new()
    }

    fn join(&self, into: &mut Self::State, from: &Self::State) -> bool {
        let mut changed = false;
        for (name, &bits) in from {
            let slot = into.entry(name.clone()).or_insert(0);
            if *slot | bits != *slot {
                *slot |= bits;
                changed = true;
            }
        }
        changed
    }

    fn transfer(&mut self, _b: usize, units: &[Range<usize>], state: &mut Self::State) {
        for unit in units {
            self.transfer_unit(unit, state);
        }
    }
}

/// Runs the epoch-stamping dataflow over every runtime function that
/// drains the sharded queues. `cfgs` is aligned with `analysis.fns`.
pub fn check(models: &[(String, FileModel)], analysis: &Analysis, cfgs: &[Cfg]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let reach: BTreeMap<usize, usize> = analysis.reactor_reachable().into_iter().collect();
    for (f, info) in analysis.fns.iter().enumerate() {
        if !info.calls.iter().any(|c| c.name == "drain_into") {
            continue;
        }
        let model = &models[info.model].1;
        let chain = reach.contains_key(&f).then(|| analysis.root_chain(&reach, f));
        let mut dom = EpochDomain {
            model,
            file: info.file.as_str(),
            chain: chain.as_deref(),
            report: false,
            findings: Vec::new(),
            seen: BTreeSet::new(),
            tracked: BTreeSet::new(),
        };
        let cfg = &cfgs[f];
        let solution = dataflow::solve(cfg, &mut dom);
        if dom.tracked.is_empty() {
            continue;
        }
        dom.report = true;
        for (b, block) in cfg.blocks.iter().enumerate() {
            let mut state = solution.inputs[b].clone();
            dom.transfer(b, &block.units, &mut state);
        }
        findings.append(&mut dom.findings);
    }
    findings.sort();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg;
    use crate::scanner::{scan, FileKind};

    fn run(src: &str) -> Vec<Finding> {
        let models = vec![("a.rs".to_string(), scan(src, FileKind::Runtime, false))];
        let analysis = Analysis::analyze(&models);
        let cfgs: Vec<Cfg> = analysis
            .fns
            .iter()
            .map(|info| cfg::build(&models[info.model].1, &models[info.model].1.fns[info.item]))
            .collect();
        check(&models, &analysis, &cfgs)
    }

    #[test]
    fn the_real_stamping_shape_passes() {
        let findings = run("impl Sup {\n\
            fn next_frames(&self, out: &mut Vec<StampedFrame>, my_epoch: u32) {\n\
                let mut pulled = Vec::new();\n\
                self.queues.drain_into(dest, 32, &mut pulled);\n\
                out.extend(pulled.into_iter().map(|frame| StampedFrame { frame, epoch: my_epoch }));\n\
            }\n\
            }");
        assert_eq!(findings, Vec::new());
    }

    #[test]
    fn unstamped_consumption_is_found() {
        let findings = run("impl Sup {\n\
            fn next_frames(&self, out: &mut Vec<StampedFrame>) {\n\
                let mut pulled = Vec::new();\n\
                self.queues.drain_into(dest, 32, &mut pulled);\n\
                out.extend(pulled);\n\
            }\n\
            }");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("without an epoch stamp"));
    }

    #[test]
    fn stamping_on_one_branch_only_still_flags_the_other() {
        let findings = run("impl Sup {\n\
            fn next_frames(&self, out: &mut Vec<StampedFrame>, fast: bool, my_epoch: u32) {\n\
                let mut pulled = Vec::new();\n\
                self.queues.drain_into(dest, 32, &mut pulled);\n\
                if fast {\n\
                    out.extend(pulled);\n\
                } else {\n\
                    out.extend(pulled.into_iter().map(|frame| StampedFrame { frame, epoch: my_epoch }));\n\
                }\n\
            }\n\
            }");
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn reactor_reachable_findings_carry_the_root_chain() {
        let findings = run("impl Sup {\n\
            // oftt-lint: reactor-root\n\
            fn next_frames(&self) { self.pull(); }\n\
            fn pull(&self) {\n\
                let mut pulled = Vec::new();\n\
                self.queues.drain_into(dest, 32, &mut pulled);\n\
                self.ship(pulled);\n\
            }\n\
            fn ship(&self, frames: Vec<OutFrame>) {}\n\
            }");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("via next_frames → pull"), "{findings:?}");
    }
}
