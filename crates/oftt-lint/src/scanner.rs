//! Turns a lexed file into the model the rule families consume: a
//! filtered token stream (attributes and cfg-gated code removed), the
//! function items with their body spans, and every `oftt-lint` directive
//! resolved to its scope.
//!
//! ## Directive scopes
//!
//! * **File-scoped** — `nonblocking`, `no-panic`: opt the whole file into
//!   a rule family, wherever the comment sits (conventionally the top).
//! * **Function-scoped** — `role-choke-point`, `role-mirror`,
//!   `reactor-root`, `arena`, `cold-path`: attach to the next `fn` item
//!   at or below the comment line. A choke point is the transition
//!   apply path itself; a mirror is a confined secondary copy (e.g. the
//!   FTIM shadowing the engine's role for its own dispatch) — both
//!   exempt that one function from the role-confinement rule and
//!   nothing else. A reactor root is an entry point the reactor hot
//!   path rule walks from; an arena fn is a sanctioned allocator
//!   (`BufPool`) whose own allocation primitives are policy-exempt; a
//!   cold-path fn is declared off the hot path (handshake, teardown,
//!   harness-only code) and the hot-path walk stops at it.
//! * **Site-scoped** — `lock(NAME)`: names the `.lock()` acquisition on
//!   the same or the following line, overriding the receiver-derived
//!   name. This is how a static site joins the dynamic instrumentation's
//!   namespace when the receiver field is called something else.
//!   `pool(NAME)` does the same for a `take`/`give` pool operation, tying
//!   the static lifecycle site to the dynamic pool instrumentation's
//!   `NAME:take` / `NAME:give` strings. `dfa-from(STATE)` declares the
//!   tracked state a construction on the same or following line
//!   transitions *out of* when the analyzer cannot see it syntactically.
//! * **File-scoped, parameterized** — `dfa(Enum, A => B, …)`: declares
//!   the legal transition table for a state enum; every construction of
//!   an `Enum::Variant` in the file must then match a declared edge
//!   (`new => V` admits constructions outside any tracked state).
//!
//! ## What gets removed
//!
//! For [`FileKind::Runtime`] files, items gated behind `#[cfg(test)]`,
//! `#[test]`, or `#[cfg(feature = "inject_bugs")]` (unless the scan opts
//! into injected code) are dropped: test scaffolding legitimately
//! unwraps, sleeps, and leaks watchdogs, and the seeded-defect blocks are
//! *supposed* to violate the rules. All other attributes are stripped
//! from the stream too, so rules never see `#[derive(...)]` idents.
//! [`FileKind::TestLike`] files keep their test items — the lifecycle
//! rule exists precisely to check API usage in tests and examples.

use crate::lexer::{self, Diagnostic, Token, TokenKind};
use std::collections::BTreeMap;
use std::ops::Range;

/// How a file is treated by the rule families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Shipping code: every rule family applies; cfg(test)/seeded-defect
    /// items are skipped.
    Runtime,
    /// Tests, examples, benches: only the API-lifecycle rule and lexer
    /// diagnostics apply, and test items are kept.
    TestLike,
}

/// One declared parameter of a `fn` item — just the facts the
/// interprocedural analyses consume.
#[derive(Debug)]
pub struct Param {
    /// The binding name.
    pub name: String,
    /// The type carries an `Fn`/`FnMut`/`FnOnce` bound (directly or via
    /// a generic parameter's bound): calls *to this name* inside the
    /// body invoke the caller-supplied closure, not a named function.
    pub callable: bool,
    /// Passed by value as an owned byte buffer (`Vec<u8>`): the callee
    /// takes responsibility for the buffer's pool lifecycle.
    pub owned_buf: bool,
}

/// One `fn` item with its body's span in the filtered token stream.
#[derive(Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The self type of the enclosing `impl`/`trait` block, if any.
    /// `Self::f()` and `self.f()` call sites resolve against this.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token indices of the body, *including* the outer braces. Empty
    /// for bodyless trait-method declarations.
    pub body: Range<usize>,
    /// Declared parameters, in order (`self` receivers excluded).
    pub params: Vec<Param>,
    /// The declared return type is an owned byte buffer (`-> Vec<u8>`):
    /// a seed (or propagation point) for the returns-buffer summary.
    pub returns_buf: bool,
    /// Function-scoped directives attached to this item.
    pub directives: Vec<String>,
}

impl FnItem {
    /// True if the function carries the given directive.
    pub fn has_directive(&self, name: &str) -> bool {
        self.directives.iter().any(|d| d == name)
    }

    /// The callable (closure-bound) parameter with this name, if any.
    pub fn callable_param(&self, name: &str) -> bool {
        self.params.iter().any(|p| p.callable && p.name == name)
    }
}

/// A declared connection-DFA transition table (`dfa(Enum, A => B, …)`).
#[derive(Debug)]
pub struct DfaDecl {
    /// Line the declaring comment sits on.
    pub line: u32,
    /// The state enum the table governs.
    pub enum_name: String,
    /// Allowed `(from, to)` variant transitions. A `from` of `new`
    /// admits constructions made outside any tracked state.
    pub transitions: Vec<(String, String)>,
}

/// The scanned model of one file.
#[derive(Debug)]
pub struct FileModel {
    /// How the file is classified.
    pub kind: FileKind,
    /// File-scoped directives (`nonblocking`, `no-panic`).
    pub file_directives: Vec<String>,
    /// `lock(NAME)` annotations by the line the comment sits on. A
    /// `.lock()` on line `L` is named by an annotation on `L` or `L-1`.
    pub lock_names: BTreeMap<u32, String>,
    /// `pool(NAME)` annotations by line, naming the pool a `take`/`give`
    /// on the same or following line operates on.
    pub pool_names: BTreeMap<u32, String>,
    /// `dfa-from(STATE)` annotations by line: the tracked state a
    /// construction on the same or following line transitions out of.
    pub dfa_from: BTreeMap<u32, String>,
    /// `dfa(Enum, A => B, …)` transition-table declarations.
    pub dfa_decls: Vec<DfaDecl>,
    /// The filtered token stream.
    pub tokens: Vec<Token>,
    /// Every `fn` item found, in source order.
    pub fns: Vec<FnItem>,
    /// Lexer diagnostics plus directive-resolution problems.
    pub diagnostics: Vec<Diagnostic>,
}

impl FileModel {
    /// True if the file carries the given file-scoped directive.
    pub fn has_file_directive(&self, name: &str) -> bool {
        self.file_directives.iter().any(|d| d == name)
    }

    /// The annotated lock name for a `.lock()` on `line`, if any.
    pub fn lock_name_at(&self, line: u32) -> Option<&str> {
        Self::site_name_at(&self.lock_names, line)
    }

    /// The annotated pool name for a `take`/`give` on `line`, if any.
    pub fn pool_name_at(&self, line: u32) -> Option<&str> {
        Self::site_name_at(&self.pool_names, line)
    }

    /// The annotated from-state for a construction on `line`, if any.
    pub fn dfa_from_at(&self, line: u32) -> Option<&str> {
        Self::site_name_at(&self.dfa_from, line)
    }

    fn site_name_at(names: &BTreeMap<u32, String>, line: u32) -> Option<&str> {
        names
            .get(&line)
            .or_else(|| line.checked_sub(1).and_then(|prev| names.get(&prev)))
            .map(String::as_str)
    }
}

/// Directives the scanner understands; anything else is a diagnostic so
/// a typo (`non-blocking`, `lock probe`) fails loudly instead of
/// silently disabling a rule.
const FILE_DIRECTIVES: &[&str] = &["nonblocking", "no-panic"];
const FN_DIRECTIVES: &[&str] =
    &["role-choke-point", "role-mirror", "reactor-root", "arena", "cold-path"];

/// Scans one file's source. Total, like the lexer underneath it.
pub fn scan(source: &str, kind: FileKind, include_injected: bool) -> FileModel {
    let lexed = lexer::lex(source);
    let mut model = FileModel {
        kind,
        file_directives: Vec::new(),
        lock_names: BTreeMap::new(),
        pool_names: BTreeMap::new(),
        dfa_from: BTreeMap::new(),
        dfa_decls: Vec::new(),
        tokens: Vec::new(),
        fns: Vec::new(),
        diagnostics: lexed.diagnostics,
    };
    filter_tokens(&lexed.tokens, kind, include_injected, &mut model);
    extract_fns(&mut model);
    resolve_directives(&lexed.directives, &mut model);
    model
}

fn ident_is(token: Option<&Token>, text: &str) -> bool {
    matches!(token.map(|t| &t.kind), Some(TokenKind::Ident(s)) if s == text)
}

fn punct_is(token: Option<&Token>, c: char) -> bool {
    matches!(token.map(|t| &t.kind), Some(TokenKind::Punct(p)) if *p == c)
}

/// Copies the token stream into the model, dropping attribute spans and
/// (for runtime files) the items those attributes gate out of the build
/// or into test-only compilation.
fn filter_tokens(tokens: &[Token], kind: FileKind, include_injected: bool, model: &mut FileModel) {
    let mut i = 0;
    while i < tokens.len() {
        if punct_is(tokens.get(i), '#') {
            let attr_start = if punct_is(tokens.get(i + 1), '[') {
                Some(i + 1)
            } else if punct_is(tokens.get(i + 1), '!') && punct_is(tokens.get(i + 2), '[') {
                Some(i + 2)
            } else {
                None
            };
            if let Some(open) = attr_start {
                let close = matching(tokens, open, '[', ']');
                let gated = kind == FileKind::Runtime
                    && is_gating_attr(
                        &tokens[open..=close.min(tokens.len() - 1)],
                        include_injected,
                    );
                i = close + 1;
                if gated {
                    // Consume any further attributes stacked on the item.
                    while punct_is(tokens.get(i), '#') && punct_is(tokens.get(i + 1), '[') {
                        i = matching(tokens, i + 1, '[', ']') + 1;
                    }
                    i = skip_item(tokens, i);
                }
                continue;
            }
        }
        model.tokens.push(tokens[i].clone());
        i += 1;
    }
}

/// Index of the token closing the bracket opened at `open` (which must
/// be the opening bracket itself). Clamped to the stream end on
/// malformed input.
fn matching(tokens: &[Token], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if punct_is(tokens.get(i), open_c) {
            depth += 1;
        } else if punct_is(tokens.get(i), close_c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Does this attribute's token span gate the following item out of the
/// runtime build (or into test-only / seeded-defect compilation)?
fn is_gating_attr(attr: &[Token], include_injected: bool) -> bool {
    let mut text = String::new();
    for token in attr {
        match &token.kind {
            TokenKind::Ident(s) => {
                text.push_str(s);
                text.push(' ');
            }
            TokenKind::Str(s) => {
                text.push_str(s);
                text.push(' ');
            }
            _ => {}
        }
    }
    // `cfg(not(test))` is runtime code, not test code.
    if text.contains("not ") {
        return false;
    }
    if text.contains("test") {
        return true;
    }
    !include_injected && text.contains("inject_bugs")
}

/// Skips the item starting at `i`: either through its balanced `{...}`
/// block, or through the first `;` / `,` at nesting depth zero (gated
/// use-decls, struct fields, expression statements).
fn skip_item(tokens: &[Token], start: usize) -> usize {
    let mut depth = 0usize;
    let mut i = start;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            TokenKind::Punct(';') | TokenKind::Punct(',') if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Spans of `impl`/`trait` block bodies with the self type they define
/// methods on. `impl Trait for Type` records `Type`; `impl Type` and
/// `trait Type` record `Type` directly. The word `impl` in type
/// position (`-> impl Iterator`) is ignored by an item-position check.
fn impl_spans(tokens: &[Token]) -> Vec<(Range<usize>, String)> {
    let mut spans = Vec::new();
    for i in 0..tokens.len() {
        let keyword = match tokens.get(i).map(|t| &t.kind) {
            Some(TokenKind::Ident(s)) if s == "impl" || s == "trait" => s.as_str(),
            _ => continue,
        };
        // Item position: start of file, after a block or statement end,
        // or after `unsafe`. `impl` elsewhere is a type (`-> impl Fn()`).
        let item_pos = match i.checked_sub(1).and_then(|p| tokens.get(p)).map(|t| &t.kind) {
            None => true,
            Some(TokenKind::Punct('{' | '}' | ';')) => true,
            Some(TokenKind::Ident(s)) => s == "unsafe",
            _ => false,
        };
        if !item_pos {
            continue;
        }
        if keyword == "trait" {
            if let Some(TokenKind::Ident(name)) = tokens.get(i + 1).map(|t| &t.kind) {
                let open = match (i + 2..tokens.len()).find(|&j| punct_is(tokens.get(j), '{')) {
                    Some(j) => j,
                    None => continue,
                };
                spans.push((open..matching(tokens, open, '{', '}') + 1, name.clone()));
            }
            continue;
        }
        // impl header: skip generics, then the last plain ident at angle
        // depth 0 before `{`/`where` is the self type; a `for` keyword
        // (not HRTB `for<`) restarts the search on its right-hand side.
        let mut owner: Option<String> = None;
        let mut angle = 0isize;
        let mut in_where = false;
        let mut j = i + 1;
        let mut open = None;
        while let Some(token) = tokens.get(j) {
            match &token.kind {
                TokenKind::Punct('<') => angle += 1,
                // `->` in an impl header (e.g. `impl Fn() -> u8`) must
                // not close an angle bracket.
                TokenKind::Punct('>')
                    if !punct_is(j.checked_sub(1).and_then(|p| tokens.get(p)), '-') =>
                {
                    angle -= 1
                }
                TokenKind::Punct('{') if angle <= 0 => {
                    open = Some(j);
                    break;
                }
                TokenKind::Punct(';') if angle <= 0 => break,
                TokenKind::Ident(s) if angle <= 0 && !in_where => {
                    if s == "where" {
                        // Type is complete; scan on for the body brace.
                        in_where = true;
                    } else if s == "for" {
                        // `impl Trait for Type`: the self type is on the
                        // right-hand side. `for<'a>` is an HRTB, not that.
                        if !punct_is(tokens.get(j + 1), '<') {
                            owner = None;
                        }
                    } else if s != "dyn" && s != "mut" && s != "const" && s != "unsafe" {
                        owner = Some(s.clone());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if let (Some(open), Some(owner)) = (open, owner) {
            spans.push((open..matching(tokens, open, '{', '}') + 1, owner));
        }
    }
    spans
}

/// Finds every `fn` item in the filtered stream and records its body
/// span. Closures don't use the keyword, so they simply stay inside the
/// enclosing function's span; nested `fn` items are recorded in their
/// own right as well.
fn extract_fns(model: &mut FileModel) {
    let tokens = &model.tokens;
    let impls = impl_spans(tokens);
    let mut i = 0;
    while i < tokens.len() {
        if ident_is(tokens.get(i), "fn") {
            if let Some(TokenKind::Ident(name)) = tokens.get(i + 1).map(|t| &t.kind) {
                let line = tokens[i].line;
                let name = name.clone();
                // Innermost impl/trait block containing this fn names
                // the owner type.
                let owner = impls
                    .iter()
                    .filter(|(span, _)| span.contains(&i))
                    .min_by_key(|(span, _)| span.len())
                    .map(|(_, owner)| owner.clone());
                // Find the body `{` (or `;` for a bodyless declaration),
                // ignoring braces inside parens/brackets (const-generic
                // defaults, array-type return values).
                let mut j = i + 2;
                let mut nesting = 0isize;
                let body = loop {
                    match tokens.get(j).map(|t| &t.kind) {
                        Some(TokenKind::Punct('(' | '[')) => nesting += 1,
                        Some(TokenKind::Punct(')' | ']')) => nesting -= 1,
                        Some(TokenKind::Punct('{')) if nesting == 0 => {
                            break j..matching(tokens, j, '{', '}') + 1;
                        }
                        Some(TokenKind::Punct(';')) if nesting == 0 => break j..j,
                        Some(_) => {}
                        None => break j..j,
                    }
                    j += 1;
                };
                let header = &tokens[i..body.start.min(tokens.len())];
                let params = parse_params(header);
                let returns_buf = header_returns_buf(header);
                model.fns.push(FnItem {
                    name,
                    owner,
                    line,
                    body,
                    params,
                    returns_buf,
                    directives: Vec::new(),
                });
                // Continue *inside* the body so nested fns are found too.
                i += 2;
                continue;
            }
        }
        i += 1;
    }
}

/// Extracts [`Param`]s from one fn's header tokens (the span from the
/// `fn` keyword up to the body brace, including any `where` clause).
/// Pattern parameters (`(a, b): (u8, u8)`) and receivers are skipped —
/// the analyses only need simple named bindings.
fn parse_params(header: &[Token]) -> Vec<Param> {
    // `>` closes an angle bracket unless it is the tail of `->`.
    let closes_angle = |k: usize| !punct_is(k.checked_sub(1).and_then(|p| header.get(p)), '-');
    // The param list `(` sits outside the generic angle brackets; parens
    // inside generics (`fn f<F: Fn(u8)>(…)`) are at angle depth > 0.
    let mut angle = 0isize;
    let mut open = None;
    for (k, token) in header.iter().enumerate().skip(2) {
        match &token.kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') if closes_angle(k) => angle -= 1,
            TokenKind::Punct('(') if angle <= 0 => {
                open = Some(k);
                break;
            }
            _ => {}
        }
    }
    let Some(open) = open else { return Vec::new() };
    let close = matching(header, open, '(', ')');
    // Split the list on commas at bracket depth zero.
    let mut params = Vec::new();
    let mut depth = 0isize;
    let mut angle = 0isize;
    let mut seg_start = open + 1;
    let mut k = open + 1;
    while k <= close.min(header.len().saturating_sub(1)) {
        let at_end = k == close;
        let top_comma = depth == 0 && angle <= 0 && punct_is(header.get(k), ',') && !at_end;
        if top_comma || at_end {
            if let Some(param) = parse_param(&header[seg_start..k], header) {
                params.push(param);
            }
            seg_start = k + 1;
        } else {
            match &header[k].kind {
                TokenKind::Punct('(' | '[') => depth += 1,
                TokenKind::Punct(')' | ']') => depth -= 1,
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') if closes_angle(k) => angle -= 1,
                _ => {}
            }
        }
        k += 1;
    }
    params
}

/// True when the header declares `-> Vec<u8>` (exactly — `Result<Vec<u8>, E>`
/// and references do not count; the buffer summary needs the plain
/// owned-move shape only).
fn header_returns_buf(header: &[Token]) -> bool {
    header.windows(6).any(|w| {
        punct_is(w.first(), '-')
            && punct_is(w.get(1), '>')
            && ident_is(w.get(2), "Vec")
            && punct_is(w.get(3), '<')
            && ident_is(w.get(4), "u8")
            && punct_is(w.get(5), '>')
    })
}

/// Parses one `name: Type` parameter segment; `header` is the whole fn
/// header, searched for the `Fn`-bound of a generic type parameter.
fn parse_param(seg: &[Token], header: &[Token]) -> Option<Param> {
    let mut k = 0;
    if ident_is(seg.first(), "mut") {
        k = 1;
    }
    let name = match seg.get(k).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) if s != "self" => s.clone(),
        _ => return None,
    };
    if !punct_is(seg.get(k + 1), ':') {
        return None;
    }
    let ty = &seg[k + 2..];
    let fn_ident = |t: &Token| matches!(&t.kind, TokenKind::Ident(s) if s.starts_with("Fn"));
    let mut callable = ty.iter().any(fn_ident);
    if !callable {
        // A bare generic type (`f: F`) is callable when `F` carries an
        // `Fn` bound in the generics or where clause.
        if let [Token { kind: TokenKind::Ident(ty_name), .. }] = ty {
            for (j, token) in header.iter().enumerate() {
                let declares_bound = matches!(&token.kind, TokenKind::Ident(s) if s == ty_name)
                    && punct_is(header.get(j + 1), ':');
                if declares_bound {
                    let bound = header[j + 2..]
                        .iter()
                        .take_while(|t| !matches!(&t.kind, TokenKind::Punct(',' | '>' | '{')));
                    callable = bound.into_iter().any(fn_ident);
                    if callable {
                        break;
                    }
                }
            }
        }
    }
    let owned_buf = matches!(
        ty,
        [a, b, c, d]
            if ident_is(Some(a), "Vec")
                && punct_is(Some(b), '<')
                && ident_is(Some(c), "u8")
                && punct_is(Some(d), '>')
    );
    Some(Param { name, callable, owned_buf })
}

/// Sorts every directive comment into its scope; unknown directives and
/// fn-scoped directives with no following function become diagnostics.
fn resolve_directives(directives: &[lexer::Directive], model: &mut FileModel) {
    for d in directives {
        let text = d.text.as_str();
        if FILE_DIRECTIVES.contains(&text) {
            model.file_directives.push(text.to_string());
        } else if FN_DIRECTIVES.contains(&text) {
            // Attach to the first fn at or below the comment.
            match model.fns.iter_mut().filter(|f| f.line >= d.line).min_by_key(|f| f.line) {
                Some(item) => item.directives.push(text.to_string()),
                None => model.diagnostics.push(Diagnostic {
                    line: d.line,
                    message: format!("directive `{text}` is not followed by a function"),
                }),
            }
        } else if let Some(name) =
            text.strip_prefix("lock(").and_then(|rest| rest.strip_suffix(')'))
        {
            let name = name.trim();
            if name.is_empty() {
                model.diagnostics.push(Diagnostic {
                    line: d.line,
                    message: "lock() directive names no lock".to_string(),
                });
            } else {
                model.lock_names.insert(d.line, name.to_string());
            }
        } else if let Some(name) =
            text.strip_prefix("pool(").and_then(|rest| rest.strip_suffix(')'))
        {
            let name = name.trim();
            if name.is_empty() {
                model.diagnostics.push(Diagnostic {
                    line: d.line,
                    message: "pool() directive names no pool".to_string(),
                });
            } else {
                model.pool_names.insert(d.line, name.to_string());
            }
        } else if let Some(state) =
            text.strip_prefix("dfa-from(").and_then(|rest| rest.strip_suffix(')'))
        {
            let state = state.trim();
            if state.is_empty() {
                model.diagnostics.push(Diagnostic {
                    line: d.line,
                    message: "dfa-from() directive names no state".to_string(),
                });
            } else {
                model.dfa_from.insert(d.line, state.to_string());
            }
        } else if let Some(body) = text.strip_prefix("dfa(").and_then(|rest| rest.strip_suffix(')'))
        {
            match parse_dfa_decl(body, d.line) {
                Some(decl) => model.dfa_decls.push(decl),
                None => model.diagnostics.push(Diagnostic {
                    line: d.line,
                    message: format!("malformed dfa() directive `{text}`"),
                }),
            }
        } else {
            model.diagnostics.push(Diagnostic {
                line: d.line,
                message: format!("unknown oftt-lint directive `{text}`"),
            });
        }
    }
}

/// Parses the body of a `dfa(Enum, A => B, …)` directive: an enum name
/// followed by at least one `from => to` transition, all idents.
fn parse_dfa_decl(body: &str, line: u32) -> Option<DfaDecl> {
    let mut parts = body.split(',').map(str::trim);
    let enum_name = parts.next().filter(|s| is_ident(s))?.to_string();
    let mut transitions = Vec::new();
    for part in parts {
        let (from, to) = part.split_once("=>")?;
        let (from, to) = (from.trim(), to.trim());
        if !is_ident(from) || !is_ident(to) {
            return None;
        }
        transitions.push((from.to_string(), to.to_string()));
    }
    if transitions.is_empty() {
        return None;
    }
    Some(DfaDecl { line, enum_name, transitions })
}

fn is_ident(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime(source: &str) -> FileModel {
        scan(source, FileKind::Runtime, false)
    }

    #[test]
    fn finds_fns_with_their_bodies() {
        let model = runtime("fn a() { 1 } impl X { fn b(&self) -> u32 { 2 } }");
        let names: Vec<&str> = model.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(!model.fns[1].body.is_empty());
    }

    #[test]
    fn bodyless_trait_methods_get_empty_spans() {
        let model = runtime("trait T { fn sig(&self) -> u8; fn with_body(&self) {} }");
        assert_eq!(model.fns.len(), 2);
        assert!(model.fns[0].body.is_empty());
        assert!(!model.fns[1].body.is_empty());
    }

    #[test]
    fn cfg_test_mod_is_dropped_from_runtime_files() {
        let source = "fn real() {} #[cfg(test)] mod tests { fn fake() { panic!() } }";
        let model = runtime(source);
        let names: Vec<&str> = model.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn cfg_test_items_are_kept_in_testlike_files() {
        let source = "#[test] fn a_test() { assert!(true) }";
        let model = scan(source, FileKind::TestLike, false);
        assert_eq!(model.fns.len(), 1);
    }

    #[test]
    fn inject_bugs_blocks_are_dropped_unless_opted_in() {
        let source = r#"fn f() { #[cfg(feature = "inject_bugs")] { bad() } good() }"#;
        let dropped = runtime(source);
        let has = |m: &FileModel, name: &str| {
            m.tokens.iter().any(|t| matches!(&t.kind, TokenKind::Ident(s) if s == name))
        };
        assert!(!has(&dropped, "bad"));
        assert!(has(&dropped, "good"));
        let kept = scan(source, FileKind::Runtime, true);
        assert!(has(&kept, "bad"));
    }

    #[test]
    fn cfg_not_test_is_runtime_code() {
        let source = "#[cfg(not(test))] fn real() {}";
        let model = runtime(source);
        assert_eq!(model.fns.len(), 1);
    }

    #[test]
    fn directives_resolve_to_their_scopes() {
        let source = "\
// oftt-lint: nonblocking
// oftt-lint: role-choke-point
fn set_role() {}
fn other() {
    let g = self.x.lock(); // oftt-lint: lock(probe)
}
";
        let model = runtime(source);
        assert!(model.has_file_directive("nonblocking"));
        assert!(model.fns[0].has_directive("role-choke-point"));
        assert!(!model.fns[1].has_directive("role-choke-point"));
        assert_eq!(model.lock_name_at(5), Some("probe"));
        assert_eq!(model.lock_name_at(6), Some("probe"));
        assert_eq!(model.lock_name_at(7), None);
        assert!(model.diagnostics.is_empty());
    }

    #[test]
    fn unknown_directives_are_diagnosed() {
        let model = runtime("// oftt-lint: non-blocking\nfn f() {}");
        assert_eq!(model.diagnostics.len(), 1);
        assert!(model.diagnostics[0].message.contains("unknown oftt-lint directive"));
    }

    #[test]
    fn dangling_fn_directive_is_diagnosed() {
        let model = runtime("fn f() {}\n// oftt-lint: role-choke-point\n");
        assert_eq!(model.diagnostics.len(), 1);
        assert!(model.diagnostics[0].message.contains("not followed by a function"));
    }

    #[test]
    fn attributes_are_stripped_from_the_stream() {
        let model = runtime("#[derive(Debug, Clone)] struct S; #[inline] fn f() {}");
        assert!(!model.tokens.iter().any(|t| matches!(
            &t.kind, TokenKind::Ident(s) if s == "derive" || s == "inline"
        )));
        assert_eq!(model.fns.len(), 1);
    }

    #[test]
    fn impl_owners_attach_to_methods() {
        let model = runtime(
            "fn free() {} \
             impl Pool { fn take(&mut self) {} } \
             impl<T: Clone> fmt::Display for Shard<T> { fn fmt(&self) {} } \
             trait Handler: Send { fn on_frame(&self); } \
             unsafe impl Sync for Pool {} \
             fn ret() -> impl Iterator<Item = u8> { std::iter::empty() }",
        );
        let owners: Vec<(&str, Option<&str>)> =
            model.fns.iter().map(|f| (f.name.as_str(), f.owner.as_deref())).collect();
        assert_eq!(
            owners,
            vec![
                ("free", None),
                ("take", Some("Pool")),
                ("fmt", Some("Shard")),
                ("on_frame", Some("Handler")),
                ("ret", None),
            ]
        );
    }

    #[test]
    fn where_clauses_do_not_confuse_impl_owners() {
        let model = runtime("impl<T> Queues<T> where T: Clone + Send { fn push(&self) {} }");
        assert_eq!(model.fns[0].owner.as_deref(), Some("Queues"));
    }

    #[test]
    fn reactor_root_directive_attaches_to_fn() {
        let model = runtime("// oftt-lint: reactor-root\nfn on_frame() {}\nfn other() {}");
        assert!(model.fns[0].has_directive("reactor-root"));
        assert!(!model.fns[1].has_directive("reactor-root"));
        assert!(model.diagnostics.is_empty());
    }

    #[test]
    fn params_capture_callable_and_buffer_facts() {
        let model = runtime(
            "fn with_queue<R>(&self, dest: DestId, f: impl FnOnce(&mut Q) -> R) -> R { f() } \
             fn generic<F>(cb: F) where F: FnMut(u8) { cb(1) } \
             fn ship(mut buf: Vec<u8>, n: usize) {} \
             fn borrow(buf: &Vec<u8>) {}",
        );
        let wq = &model.fns[0].params;
        assert_eq!(wq.len(), 2);
        assert!(!wq[0].callable);
        assert!(wq[1].callable && wq[1].name == "f");
        assert!(model.fns[1].callable_param("cb"));
        let ship = &model.fns[2].params;
        assert!(ship[0].owned_buf && ship[0].name == "buf");
        assert!(!ship[1].owned_buf);
        assert!(model.fns[3].params.is_empty() || !model.fns[3].params[0].owned_buf);
    }

    #[test]
    fn pool_and_dfa_site_directives_resolve() {
        let source = "\
fn f() {
    // oftt-lint: pool(staging)
    let buf = pool.take(64);
    // oftt-lint: dfa-from(AwaitHello)
    let s = Conn::Established;
}
";
        let model = runtime(source);
        assert_eq!(model.pool_name_at(3), Some("staging"));
        assert_eq!(model.pool_name_at(2), Some("staging"));
        assert_eq!(model.pool_name_at(5), None);
        assert_eq!(model.dfa_from_at(5), Some("AwaitHello"));
        assert!(model.diagnostics.is_empty());
    }

    #[test]
    fn dfa_decl_directive_parses_and_rejects() {
        let ok = runtime("// oftt-lint: dfa(Conn, new => AwaitHello, AwaitHello => Established)\n");
        assert_eq!(ok.dfa_decls.len(), 1);
        assert_eq!(ok.dfa_decls[0].enum_name, "Conn");
        assert_eq!(
            ok.dfa_decls[0].transitions,
            vec![
                ("new".to_string(), "AwaitHello".to_string()),
                ("AwaitHello".to_string(), "Established".to_string()),
            ]
        );
        assert!(ok.diagnostics.is_empty());
        let bad = runtime("// oftt-lint: dfa(Conn)\n");
        assert_eq!(bad.dfa_decls.len(), 0);
        assert_eq!(bad.diagnostics.len(), 1);
        assert!(bad.diagnostics[0].message.contains("malformed dfa()"));
    }

    #[test]
    fn malformed_source_never_panics() {
        for source in ["fn", "fn f(", "#[cfg(test)]", "#[", "fn f() { {", "impl {"] {
            let _ = runtime(source);
            let _ = scan(source, FileKind::TestLike, false);
        }
    }
}
