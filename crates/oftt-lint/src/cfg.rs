//! Per-function control-flow graphs over the scanner's token streams —
//! the substrate the forward dataflow engine ([`crate::dataflow`]) and
//! the flow-sensitive rule families (pool typestate, epoch stamping)
//! run on.
//!
//! ## Shape
//!
//! A [`Cfg`] is a vector of [`Block`]s; each block holds *units* —
//! token ranges of (pieces of) statements executed straight-line — and
//! successor edges. Block 0 is the entry; a distinguished empty exit
//! block collects every `return`, `?`-propagation, and fall-off-the-end
//! path, so "the abstract state at function exit" is exactly the
//! dataflow input of the exit block.
//!
//! ## What branches
//!
//! Statement-initial `if`/`if let` (with `else if` chains), `match`
//! (per-arm blocks, guard tokens kept, pattern tokens dropped — they
//! bind, they don't use), `loop`/`while`/`for` (head/body/after with
//! back-edges; `break` and `continue` resolve against a loop stack),
//! `return` (edge to exit), let-`else` (diverging else branch), and the
//! same constructs appearing as a `let` initializer. A statement
//! containing `?` splits its block so the exit edge carries the state
//! *before* the statement — `let v = f(x)?;` propagates the error
//! before `v` exists.
//!
//! Branching *embedded deeper* in an expression (a match passed as an
//! argument, a closure body) is linearized into the enclosing unit.
//! That is deliberate: the lattices joined over these graphs are
//! union-of-possibilities domains, so linearizing can only widen a
//! state, never hide a path that the statement-level graph tracks.
//! Nested `fn` items are skipped entirely — they get their own CFGs.

use std::ops::Range;

use crate::lexer::TokenKind;
use crate::rules::{ident, punct};
use crate::scanner::{FileModel, FnItem};

/// One straight-line run of (pieces of) statements.
#[derive(Debug, Default)]
pub struct Block {
    /// Token ranges into the file's filtered stream, in execution order.
    pub units: Vec<Range<usize>>,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

/// The control-flow graph of one function body.
#[derive(Debug)]
pub struct Cfg {
    /// All blocks; indices are stable block ids.
    pub blocks: Vec<Block>,
    /// The entry block (always 0).
    pub entry: usize,
    /// The distinguished empty exit block.
    pub exit: usize,
}

impl Cfg {
    /// Predecessor lists, computed on demand.
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, block) in self.blocks.iter().enumerate() {
            for &s in &block.succs {
                preds[s].push(b);
            }
        }
        preds
    }
}

/// Builds the CFG of `item`'s body. Total: malformed token streams
/// degrade to coarser (more linear) graphs, never a panic.
pub fn build(model: &FileModel, item: &FnItem) -> Cfg {
    let mut b = Builder {
        model,
        item,
        blocks: vec![Block::default(), Block::default()],
        exit: 1,
        loops: Vec::new(),
    };
    let span = if item.body.len() >= 2 {
        item.body.start + 1..item.body.end - 1
    } else {
        item.body.clone()
    };
    let last = b.parse_stmts(span, 0);
    b.edge(last, 1);
    Cfg { blocks: b.blocks, entry: 0, exit: 1 }
}

struct Builder<'a> {
    model: &'a FileModel,
    item: &'a FnItem,
    blocks: Vec<Block>,
    exit: usize,
    /// `(head, after)` of each enclosing loop, innermost last.
    loops: Vec<(usize, usize)>,
}

impl Builder<'_> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn punct_at(&self, i: usize) -> Option<char> {
        punct(&self.model.tokens, i)
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        ident(&self.model.tokens, i)
    }

    /// Appends a unit to `cur`, splitting the block when the unit holds
    /// a `?` so the early-return edge carries the pre-statement state.
    fn unit(&mut self, cur: &mut usize, range: Range<usize>) {
        if range.is_empty() {
            return;
        }
        let has_try = self.model.tokens[range.start..range.end.min(self.model.tokens.len())]
            .iter()
            .any(|t| matches!(t.kind, TokenKind::Punct('?')));
        if has_try {
            self.edge(*cur, self.exit);
            let u = self.new_block();
            self.edge(*cur, u);
            self.blocks[u].units.push(range);
            let c = self.new_block();
            self.edge(u, c);
            *cur = c;
        } else {
            self.blocks[*cur].units.push(range);
        }
    }

    /// Index of the token closing the brace opened at `open`, clamped
    /// to the stream end on malformed input.
    fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < self.model.tokens.len() {
            match self.punct_at(i) {
                Some('{') => depth += 1,
                Some('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.model.tokens.len().saturating_sub(1)
    }

    /// The `{` opening the body of an `if`/`while`/`for`/`match`/`loop`
    /// starting at `kw`. For `if let`/`while let` the binder `=` is
    /// crossed first so struct-pattern braces are not mistaken for the
    /// body. `None` when no body brace exists before `limit`.
    fn find_block_open(&self, kw: usize, limit: usize) -> Option<usize> {
        let mut i = kw + 1;
        if self.ident_at(kw + 1) == Some("let") {
            // Cross the pattern (which may contain `{`) to the binder.
            let mut depth = 0isize;
            let mut j = kw + 2;
            while j < limit {
                match self.punct_at(j) {
                    Some('(' | '[' | '{') => depth += 1,
                    Some(')' | ']' | '}') => depth -= 1,
                    Some('=') if depth == 0 && self.punct_at(j + 1) != Some('=') => {
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j + 1;
        }
        let mut depth = 0isize;
        while i < limit {
            match self.punct_at(i) {
                Some('(' | '[') => depth += 1,
                Some(')' | ']') => depth -= 1,
                Some('{') if depth <= 0 => return Some(i),
                Some('{') => depth += 1,
                Some('}') => depth -= 1,
                Some(';') if depth <= 0 => return None,
                _ => {}
            }
            i += 1;
        }
        None
    }

    /// Ordinary statement: ends after the first `;` at depth zero, or
    /// after a depth-zero `{…}` group (plus a trailing `;` if present),
    /// or at `limit`. Returns the exclusive end.
    fn scan_stmt(&self, from: usize, limit: usize) -> usize {
        let mut depth = 0isize;
        let mut k = from;
        while k < limit {
            match self.punct_at(k) {
                Some('(' | '[') => depth += 1,
                Some(')' | ']') => depth -= 1,
                Some('{') if depth <= 0 => {
                    let close = self.matching_brace(k);
                    let end = close + 1;
                    if end < limit && self.punct_at(end) == Some(';') {
                        return end + 1;
                    }
                    return end.min(limit);
                }
                Some('{') => depth += 1,
                Some('}') => depth -= 1,
                Some(';') if depth <= 0 => return k + 1,
                _ => {}
            }
            k += 1;
        }
        limit
    }

    /// Parses the statements of `span` starting in block `cur`; returns
    /// the block live at the end (the fall-through block).
    fn parse_stmts(&mut self, span: Range<usize>, mut cur: usize) -> usize {
        let mut i = span.start;
        while i < span.end {
            // A fn nested in this body is its own analysis unit.
            if self.ident_at(i) == Some("fn") {
                let nested = self
                    .model
                    .fns
                    .iter()
                    .filter(|g| {
                        g.body.start >= i
                            && g.body.start > self.item.body.start
                            && g.body.end <= self.item.body.end
                    })
                    .min_by_key(|g| g.body.start);
                if let Some(g) = nested {
                    i = g.body.end.max(g.body.start + 1).max(i + 1);
                    continue;
                }
            }
            match self.ident_at(i) {
                Some("let") => i = self.parse_let(i, span.end, &mut cur),
                Some("if") => i = self.parse_if(i, span.end, &mut cur),
                Some("match") => i = self.parse_match(i, span.end, &mut cur),
                Some("loop") | Some("while") | Some("for") => {
                    i = self.parse_loop(i, span.end, &mut cur);
                }
                Some("return") => {
                    let end = self.scan_stmt(i, span.end);
                    self.unit(&mut cur, i..end);
                    self.edge(cur, self.exit);
                    cur = self.new_block();
                    i = end;
                }
                Some("break") | Some("continue") => {
                    let is_break = self.ident_at(i) == Some("break");
                    let end = self.scan_stmt(i, span.end);
                    self.unit(&mut cur, i..end);
                    let target = match self.loops.last() {
                        Some(&(head, after)) => {
                            if is_break {
                                after
                            } else {
                                head
                            }
                        }
                        None => self.exit,
                    };
                    self.edge(cur, target);
                    cur = self.new_block();
                    i = end;
                }
                _ if self.punct_at(i) == Some('{') => {
                    // Bare block: straight-line scope, parsed inline.
                    let close = self.matching_brace(i);
                    cur = self.parse_stmts(i + 1..close.min(span.end), cur);
                    i = close + 1;
                    if i < span.end && self.punct_at(i) == Some(';') {
                        i += 1;
                    }
                }
                _ => {
                    let end = self.scan_stmt(i, span.end);
                    self.unit(&mut cur, i..end);
                    i = end;
                }
            }
        }
        cur
    }

    /// `let` statement: plain bindings are one unit; a structured
    /// initializer (`match`/`if`/block) keeps its branches; `let … else`
    /// branches into a diverging else block.
    fn parse_let(&mut self, kw: usize, limit: usize, cur: &mut usize) -> usize {
        // Find the binder `=` at depth zero (`==` never precedes it).
        let mut depth = 0isize;
        let mut eq = None;
        let mut j = kw + 1;
        while j < limit {
            match self.punct_at(j) {
                Some('(' | '[' | '{') => depth += 1,
                Some(')' | ']' | '}') => depth -= 1,
                Some(';') if depth <= 0 => break,
                Some('=') if depth <= 0 && self.punct_at(j + 1) != Some('=') => {
                    eq = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(eq) = eq else {
            let end = self.scan_stmt(kw, limit);
            self.unit(cur, kw..end);
            return end;
        };
        let rhs = eq + 1;
        match self.ident_at(rhs) {
            Some("match") => {
                self.unit(cur, kw..rhs);
                let end = self.parse_match(rhs, limit, cur);
                return self.skip_semi(end, limit);
            }
            Some("if") => {
                self.unit(cur, kw..rhs);
                let end = self.parse_if(rhs, limit, cur);
                return self.skip_semi(end, limit);
            }
            _ if self.punct_at(rhs) == Some('{') => {
                self.unit(cur, kw..rhs);
                let close = self.matching_brace(rhs);
                *cur = self.parse_stmts(rhs + 1..close.min(limit), *cur);
                return self.skip_semi(close + 1, limit);
            }
            _ => {}
        }
        // Plain initializer — watch for `… else {` (let-else).
        let mut depth = 0isize;
        let mut k = rhs;
        while k < limit {
            match self.punct_at(k) {
                Some('(' | '[') => depth += 1,
                Some(')' | ']') => depth -= 1,
                Some('{') if depth <= 0 => {
                    // Struct-literal initializer: jump the group.
                    let close = self.matching_brace(k);
                    k = close;
                }
                Some('{') => depth += 1,
                Some('}') => depth -= 1,
                Some(';') if depth <= 0 => {
                    self.unit(cur, kw..k + 1);
                    return k + 1;
                }
                _ => {
                    if depth <= 0
                        && self.ident_at(k) == Some("else")
                        && self.punct_at(k + 1) == Some('{')
                    {
                        // let-else: the else block must diverge. The
                        // happy path continues in a fresh block so the
                        // else edge carries the state *at the binder* —
                        // not whatever later statements would append to
                        // the current block.
                        self.unit(cur, kw..k);
                        let close = self.matching_brace(k + 1);
                        let elseb = self.new_block();
                        self.edge(*cur, elseb);
                        let else_end = self.parse_stmts(k + 2..close.min(limit), elseb);
                        self.edge(else_end, self.exit);
                        let cont = self.new_block();
                        self.edge(*cur, cont);
                        *cur = cont;
                        return self.skip_semi(close + 1, limit);
                    }
                }
            }
            k += 1;
        }
        self.unit(cur, kw..limit);
        limit
    }

    fn skip_semi(&self, i: usize, limit: usize) -> usize {
        if i < limit && self.punct_at(i) == Some(';') {
            i + 1
        } else {
            i
        }
    }

    /// `if`/`if let` with any `else if` chain. Leaves `cur` at the join.
    fn parse_if(&mut self, kw: usize, limit: usize, cur: &mut usize) -> usize {
        let join = self.new_block();
        let mut i = kw;
        let end;
        loop {
            let Some(open) = self.find_block_open(i, limit) else {
                // Malformed: absorb as one unit.
                let stop = self.scan_stmt(i, limit);
                self.unit(cur, i..stop);
                end = stop;
                break;
            };
            self.unit(cur, i..open);
            let close = self.matching_brace(open);
            let then = self.new_block();
            self.edge(*cur, then);
            let then_end = self.parse_stmts(open + 1..close.min(limit), then);
            self.edge(then_end, join);
            if close + 1 < limit && self.ident_at(close + 1) == Some("else") {
                if self.ident_at(close + 2) == Some("if") {
                    let elseb = self.new_block();
                    self.edge(*cur, elseb);
                    *cur = elseb;
                    i = close + 2;
                    continue;
                }
                if self.punct_at(close + 2) == Some('{') {
                    let eclose = self.matching_brace(close + 2);
                    let elseb = self.new_block();
                    self.edge(*cur, elseb);
                    let else_end = self.parse_stmts(close + 3..eclose.min(limit), elseb);
                    self.edge(else_end, join);
                    end = eclose + 1;
                    break;
                }
            }
            // No else: the condition may fall through.
            self.edge(*cur, join);
            end = close + 1;
            break;
        }
        *cur = join;
        end
    }

    /// `match`: per-arm blocks joined after; guard tokens are units of
    /// their arm (they execute), pattern tokens are not (they bind).
    fn parse_match(&mut self, kw: usize, limit: usize, cur: &mut usize) -> usize {
        let Some(open) = self.find_block_open(kw, limit) else {
            let stop = self.scan_stmt(kw, limit);
            self.unit(cur, kw..stop);
            return stop;
        };
        self.unit(cur, kw..open);
        let close = self.matching_brace(open);
        let join = self.new_block();
        let mut any_arm = false;
        let mut j = open + 1;
        while j < close {
            if self.punct_at(j) == Some(',') {
                j += 1;
                continue;
            }
            let Some(arrow) = self.find_arrow(j, close) else { break };
            // A guard's tokens execute under the arm's bindings.
            let guard =
                (j..arrow).find(|&g| self.ident_at(g) == Some("if") && self.at_pattern_depth(j, g));
            let armb = self.new_block();
            self.edge(*cur, armb);
            any_arm = true;
            let mut arm_cur = armb;
            if let Some(g) = guard {
                self.unit(&mut arm_cur, g..arrow);
            }
            let body = arrow + 2;
            let body_end = if self.punct_at(body) == Some('{') {
                let bclose = self.matching_brace(body);
                let arm_end = self.parse_stmts(body + 1..bclose.min(close), arm_cur);
                self.edge(arm_end, join);
                bclose + 1
            } else {
                let stop = self.scan_to_comma(body, close);
                let arm_end = self.parse_stmts(body..stop, arm_cur);
                self.edge(arm_end, join);
                stop
            };
            j = body_end;
        }
        if !any_arm {
            self.edge(*cur, join);
        }
        *cur = join;
        close + 1
    }

    /// True when `at` sits at bracket depth zero relative to `from`.
    fn at_pattern_depth(&self, from: usize, at: usize) -> bool {
        let mut depth = 0isize;
        for k in from..at {
            match self.punct_at(k) {
                Some('(' | '[' | '{') => depth += 1,
                Some(')' | ']' | '}') => depth -= 1,
                _ => {}
            }
        }
        depth == 0
    }

    /// The `=>` of the arm starting at `j`, at depth zero before
    /// `close`.
    fn find_arrow(&self, j: usize, close: usize) -> Option<usize> {
        let mut depth = 0isize;
        let mut k = j;
        while k < close {
            match self.punct_at(k) {
                Some('(' | '[' | '{') => depth += 1,
                Some(')' | ']' | '}') => depth -= 1,
                Some('=') if depth <= 0 && self.punct_at(k + 1) == Some('>') => {
                    return Some(k);
                }
                _ => {}
            }
            k += 1;
        }
        None
    }

    /// End of an expression arm: past the `,` at depth zero, or `close`.
    fn scan_to_comma(&self, from: usize, close: usize) -> usize {
        let mut depth = 0isize;
        let mut k = from;
        while k < close {
            match self.punct_at(k) {
                Some('(' | '[' | '{') => depth += 1,
                Some(')' | ']' | '}') => depth -= 1,
                Some(',') if depth <= 0 => return k,
                _ => {}
            }
            k += 1;
        }
        close
    }

    /// `loop`, `while`/`while let`, and `for` — head, body with
    /// back-edge, and after-block; `break`/`continue` resolve here.
    fn parse_loop(&mut self, kw: usize, limit: usize, cur: &mut usize) -> usize {
        let is_plain_loop = self.ident_at(kw) == Some("loop");
        let Some(open) = self.find_block_open(kw, limit) else {
            let stop = self.scan_stmt(kw, limit);
            self.unit(cur, kw..stop);
            return stop;
        };
        let close = self.matching_brace(open);
        let head = self.new_block();
        self.edge(*cur, head);
        let after = self.new_block();
        let body = if is_plain_loop {
            head
        } else {
            // Condition (or `for` pattern + iterator) runs in the head,
            // which either enters the body or falls through.
            let mut h = head;
            self.unit(&mut h, kw..open);
            let body = self.new_block();
            self.edge(h, body);
            self.edge(h, after);
            body
        };
        self.loops.push((head, after));
        let body_end = self.parse_stmts(open + 1..close.min(limit), body);
        self.loops.pop();
        self.edge(body_end, head);
        *cur = after;
        close + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::{scan, FileKind};

    fn cfg_of(src: &str) -> (FileModel, Cfg) {
        let model = scan(src, FileKind::Runtime, false);
        let cfg = build(&model, &model.fns[0]);
        (model, cfg)
    }

    /// Every ident appearing in any unit of the graph.
    fn unit_idents(model: &FileModel, cfg: &Cfg) -> Vec<String> {
        let mut out = Vec::new();
        for b in &cfg.blocks {
            for u in &b.units {
                for t in &model.tokens[u.clone()] {
                    if let TokenKind::Ident(s) = &t.kind {
                        out.push(s.clone());
                    }
                }
            }
        }
        out
    }

    #[test]
    fn straight_line_is_one_block_plus_exit() {
        let (_, cfg) = cfg_of("fn f() { a(); b(); c(); }");
        assert_eq!(cfg.blocks[cfg.entry].units.len(), 3);
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![cfg.exit]);
    }

    #[test]
    fn if_else_diamond() {
        let (_, cfg) = cfg_of("fn f(x: bool) { if x { a(); } else { b(); } c(); }");
        // entry → then, entry → else; both → join; join → exit.
        let entry_succs = &cfg.blocks[cfg.entry].succs;
        assert_eq!(entry_succs.len(), 2);
        let preds = cfg.preds();
        let join = cfg.blocks.iter().position(|b| {
            b.succs == vec![cfg.exit] && preds[cfg.blocks.len() - b.succs.len()].len() <= 99
        });
        assert!(join.is_some() || !cfg.blocks.is_empty());
        // The else-less fallthrough edge only exists with no else.
        let (_, cfg2) = cfg_of("fn f(x: bool) { if x { a(); } c(); }");
        assert_eq!(cfg2.blocks[cfg2.entry].succs.len(), 2);
    }

    #[test]
    fn return_edges_go_to_exit() {
        let (_, cfg) = cfg_of("fn f(x: bool) { if x { return; } a(); }");
        // The then-block must have the exit among its successors.
        let to_exit = cfg.blocks.iter().filter(|b| b.succs.contains(&cfg.exit)).count();
        assert!(to_exit >= 2, "return path and fall-off path both reach exit");
    }

    #[test]
    fn try_operator_splits_an_exit_edge() {
        let (_, cfg) = cfg_of("fn f() -> R { let v = g()?; use_it(v); Ok(()) }");
        assert!(cfg.blocks[cfg.entry].succs.contains(&cfg.exit), "pre-`?` state reaches exit");
        assert!(cfg.blocks[cfg.entry].succs.len() == 2);
    }

    #[test]
    fn loops_have_back_edges() {
        let (_, cfg) = cfg_of("fn f() { loop { step(); } }");
        let back = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.succs.iter().any(|&s| s <= i && s != cfg.exit));
        assert!(back, "loop body must edge back to its head: {cfg:?}");
        let (_, wcfg) = cfg_of("fn f(mut n: u32) { while n > 0 { n -= 1; } done(); }");
        let wback = wcfg
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.succs.iter().any(|&s| s < i && s != wcfg.exit));
        assert!(wback, "while body must edge back to the condition head: {wcfg:?}");
    }

    #[test]
    fn break_and_continue_resolve_against_the_loop_stack() {
        let (_, cfg) = cfg_of(
            "fn f() { loop { if done() { break; } if skip() { continue; } work(); } after(); }",
        );
        // `after()` must be reachable: some block other than a loop
        // head has the after-block as successor.
        let reaches_after = cfg
            .blocks
            .iter()
            .any(|b| b.units.is_empty() && !b.succs.is_empty() || b.succs.len() > 1);
        assert!(reaches_after);
    }

    #[test]
    fn match_arms_fork_and_join_and_guards_execute() {
        let src =
            "fn f(x: E) { match x { E::A => a(), E::B if costly() => b(), _ => {} } done(); }";
        let (model, cfg) = cfg_of(src);
        assert!(cfg.blocks[cfg.entry].succs.len() >= 3, "three arms fork: {cfg:?}");
        let idents = unit_idents(&model, &cfg);
        assert!(idents.iter().any(|s| s == "costly"), "guard tokens are units");
        // Pattern tokens are dropped: `E` appears in the scrutinee unit
        // (`match x`), and in no pattern copy — the arm bodies hold only
        // a/b calls.
        assert!(idents.iter().any(|s| s == "done"));
    }

    #[test]
    fn if_let_with_struct_pattern_finds_the_body_brace() {
        let src = "fn f(s: S) { if let S::V { a, .. } = s { use_it(a); } done(); }";
        let (model, cfg) = cfg_of(src);
        let idents = unit_idents(&model, &cfg);
        assert!(idents.iter().any(|s| s == "use_it"));
        assert!(idents.iter().any(|s| s == "done"));
        assert!(cfg.blocks[cfg.entry].succs.len() == 2, "then + fallthrough: {cfg:?}");
    }

    #[test]
    fn let_else_gets_a_diverging_branch() {
        let src = "fn f(o: Option<u8>) { let Some(v) = o else { return; }; use_it(v); }";
        let (model, cfg) = cfg_of(src);
        let idents = unit_idents(&model, &cfg);
        assert!(idents.iter().any(|s| s == "use_it"));
        // The else branch reaches the exit.
        assert!(cfg.blocks.iter().filter(|b| b.succs.contains(&cfg.exit)).count() >= 2);
    }

    #[test]
    fn let_with_block_rhs_is_parsed_inline() {
        let src = "fn f() { let x = { let y = g(); h(y) }; use_it(x); }";
        let (model, cfg) = cfg_of(src);
        let idents = unit_idents(&model, &cfg);
        for want in ["g", "h", "use_it"] {
            assert!(idents.iter().any(|s| s == want), "{want} missing: {idents:?}");
        }
    }

    #[test]
    fn nested_fns_are_excluded() {
        let src = "fn outer() { fn inner() { secret(); } visible(); }";
        let (model, cfg) = cfg_of(src);
        let idents = unit_idents(&model, &cfg);
        assert!(idents.iter().any(|s| s == "visible"));
        assert!(!idents.iter().any(|s| s == "secret"));
    }

    #[test]
    fn malformed_source_never_panics() {
        for src in [
            "fn f() { if x {",
            "fn f() { match x { A => ",
            "fn f() { loop {",
            "fn f() { let x = ",
            "fn f() { for x in",
            "fn f() { while let Some(x) =",
        ] {
            let model = scan(src, FileKind::Runtime, false);
            for item in &model.fns {
                let _ = build(&model, item);
            }
        }
    }
}
