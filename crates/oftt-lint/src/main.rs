//! `oftt-lint` CLI: scan the workspace (or explicit files), apply the
//! baseline, and emit human text plus the `oftt-lint-v2` JSON report.

use std::path::PathBuf;
use std::process::ExitCode;

use oftt_lint::report::{self, Finding, Report};
use oftt_lint::Options;

const USAGE: &str = "\
oftt-lint: source-level static analyzer for the OFTT workspace — role
confinement, static lock-order (cross-checked against oftt-audit's
dynamic lock sites), blocking calls, API lifecycle, panic paths, an
interprocedural effect analysis (reactor-hot-path,
lock-across-blocking, transitive lock-order, annotation-drift), and
flow-sensitive dataflow over per-function CFGs (pool-buffer typestate
cross-checked against oftt-audit's dynamic pool ops, epoch stamping,
connection-DFA conformance)

USAGE:
    oftt-lint --workspace [OPTIONS]
    oftt-lint PATH... [OPTIONS]

OPTIONS:
    --root DIR               workspace root (default: current directory)
    --baseline FILE          suppress findings listed in FILE; entries
                             matching no finding are stale-baseline findings
    --write-baseline         rewrite --baseline FILE from current findings
    --json FILE              write the oftt-lint-v2 JSON report to FILE
    --dynamic-locks FILE     dynamic lock names from `oftt-audit scan
                             --export-locks` for the coverage cross-check
    --dynamic-pool-ops FILE  dynamic pool ops from `oftt-audit scan
                             --export-pool-ops` for the same cross-check
    --include-injected       scan #[cfg(feature = \"inject_bugs\")] spans too

EXIT CODE: 0 clean, 1 usage/IO error, 2 findings.";

struct Cli {
    opts: Options,
    workspace: bool,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    json: Option<PathBuf>,
}

fn parse_args(it: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli {
        opts: Options { root: PathBuf::from("."), ..Default::default() },
        workspace: false,
        baseline: None,
        write_baseline: false,
        json: None,
    };
    let mut dynamic_locks_file: Option<String> = None;
    let mut dynamic_pools_file: Option<String> = None;
    let mut it = it;
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--workspace" => cli.workspace = true,
            "--root" => cli.opts.root = PathBuf::from(value("--root")?),
            "--baseline" => cli.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--write-baseline" => cli.write_baseline = true,
            "--json" => cli.json = Some(PathBuf::from(value("--json")?)),
            "--dynamic-locks" => dynamic_locks_file = Some(value("--dynamic-locks")?),
            "--dynamic-pool-ops" => dynamic_pools_file = Some(value("--dynamic-pool-ops")?),
            "--include-injected" => cli.opts.include_injected = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            path => cli.opts.paths.push(PathBuf::from(path)),
        }
    }
    if !cli.workspace && cli.opts.paths.is_empty() {
        return Err("give --workspace or at least one PATH".to_string());
    }
    if cli.workspace && !cli.opts.paths.is_empty() {
        return Err("--workspace and explicit PATHs are mutually exclusive".to_string());
    }
    if cli.write_baseline && cli.baseline.is_none() {
        return Err("--write-baseline needs --baseline FILE to write to".to_string());
    }
    if let Some(path) = dynamic_locks_file {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read --dynamic-locks {path}: {e}"))?;
        cli.opts.dynamic_locks =
            text.lines().map(str::trim).filter(|l| !l.is_empty()).map(String::from).collect();
    }
    if let Some(path) = dynamic_pools_file {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read --dynamic-pool-ops {path}: {e}"))?;
        cli.opts.dynamic_pool_ops =
            text.lines().map(str::trim).filter(|l| !l.is_empty()).map(String::from).collect();
    }
    Ok(cli)
}

fn print_summary(report: &Report) {
    println!(
        "{} file(s) scanned; {} fn(s), {} call edge(s), fixpoint in {} pass(es); \
         {} reactor root(s) reaching {} fn(s); {} lock(s), {} acquisition edge(s); \
         {} dynamic lock site(s) cross-checked",
        report.files_scanned,
        report.functions,
        report.call_edges,
        report.fixpoint_iterations,
        report.reactor_roots,
        report.reactor_reachable,
        report.lock_names.len(),
        report.lock_edges.len(),
        report.dynamic_checked,
    );
    println!(
        "dataflow: {} CFG block(s) in {} ms; {} pool site(s), {} pooled binding(s) tracked; \
         {} DFA transition(s) checked; {} dynamic pool op(s) cross-checked",
        report.cfg_blocks,
        report.dataflow_ms,
        report.pool_sites,
        report.pool_tracked,
        report.dfa_transitions,
        report.dynamic_pool_checked,
    );
}

fn main() -> ExitCode {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(1);
        }
    };
    let mut report = oftt_lint::run_scan(&cli.opts);
    if let Some(path) = &cli.baseline {
        if cli.write_baseline {
            let text = report::render_baseline(&report.findings);
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("error: cannot write baseline {}: {e}", path.display());
                return ExitCode::from(1);
            }
            println!(
                "baseline with {} finding(s) written to {}",
                report.findings.len(),
                path.display()
            );
            return ExitCode::SUCCESS;
        }
        // A missing baseline file means an empty baseline — CI ships one
        // either way, and a fresh checkout should not fail on ENOENT.
        let text = std::fs::read_to_string(path).unwrap_or_default();
        let keys = match report::parse_baseline(&text) {
            Ok(keys) => keys,
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                return ExitCode::from(1);
            }
        };
        let (kept, suppressed, stale) =
            report::apply_baseline(std::mem::take(&mut report.findings), &keys);
        report.findings = kept;
        report.suppressed = suppressed;
        // A baseline entry nothing matched is an accepted finding that no
        // longer exists — the suppression must be deleted, not carried.
        for (rule, file, message) in stale {
            report.findings.push(Finding {
                rule: "stale-baseline",
                file: path.display().to_string(),
                line: 0,
                message: format!(
                    "baseline entry matches no current finding (fixed or reworded?): \
                     {rule}\\t{file}\\t{message}"
                ),
            });
        }
        report.findings.sort();
    }
    if let Some(path) = &cli.json {
        if let Err(e) = std::fs::write(path, report::to_json(&report)) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(1);
        }
    }
    print_summary(&report);
    if report.suppressed > 0 {
        println!("{} finding(s) suppressed by the baseline", report.suppressed);
    }
    if report.findings.is_empty() {
        println!("no findings");
        return ExitCode::SUCCESS;
    }
    println!("\n{} finding(s):", report.findings.len());
    for finding in &report.findings {
        println!("  {finding}");
    }
    ExitCode::from(2)
}
