//! Snapshot: the real workspace lints clean. This is the negative half
//! of the analyzer's contract (`fixtures.rs` is the positive half) and
//! the test that makes an accidental new violation — a role store
//! outside a choke point, a blocking call on an annotated path — fail
//! `cargo test` before it ever reaches the CI lint stage.

use std::path::PathBuf;

use oftt_lint::{run_scan, Options};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

#[test]
fn workspace_scan_reports_zero_findings() {
    let root = workspace_root();
    let report = run_scan(&Options { root, ..Options::default() });
    assert!(
        report.findings.is_empty(),
        "the workspace must lint clean; new findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Coverage floor: the walk found the real tree, not an empty dir.
    assert!(report.files_scanned >= 40, "only {} files scanned", report.files_scanned);
    // The static lock graph is non-vacuous: the instrumented probe locks
    // and the FTIM-side probe annotations are all visible statically.
    assert!(report.lock_names.contains("probe"), "{:?}", report.lock_names);
    assert!(report.lock_names.contains("ftim-probe"), "{:?}", report.lock_names);
    assert!(!report.lock_edges.is_empty(), "no nested acquisitions found");
}

#[test]
fn injected_bug_spans_contain_the_seeded_deadlock() {
    let root = workspace_root();
    let report = run_scan(&Options { root, include_injected: true, ..Options::default() });
    // The inject_bugs feature seeds a real lock-order inversion in the
    // engine; scanning those spans must surface it as a cycle.
    assert!(
        report.findings.iter().any(|f| f.rule == "lock-order" && f.message.contains("diag")),
        "expected the seeded diag/probe inversion, got:\n{:#?}",
        report.findings
    );
}
