//! Snapshot: the real workspace lints clean modulo the checked-in
//! baseline. This is the negative half of the analyzer's contract
//! (`fixtures.rs` is the positive half) and the test that makes an
//! accidental new violation — a role store outside a choke point, a
//! blocking call on an annotated path, an allocation on the reactor hot
//! path — fail `cargo test` before it ever reaches the CI lint stage.

use std::path::PathBuf;

use oftt_lint::report::{apply_baseline, parse_baseline};
use oftt_lint::{run_scan, Options};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

#[test]
fn workspace_scan_reports_zero_findings_beyond_the_baseline() {
    let root = workspace_root();
    let baseline_text =
        std::fs::read_to_string(root.join("lint-baseline.txt")).expect("lint-baseline.txt");
    let baseline = parse_baseline(&baseline_text).expect("well-formed baseline");
    let report = run_scan(&Options { root, ..Options::default() });
    let (kept, suppressed, stale) = apply_baseline(report.findings, &baseline);
    assert!(
        kept.is_empty(),
        "the workspace must lint clean modulo the baseline; new findings:\n{}",
        kept.iter()
            .map(|f| format!("  {}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The baseline is live, not a graveyard: every entry must still
    // suppress something, and a key may suppress several findings (same
    // message, different lines), so the count is a floor.
    assert!(stale.is_empty(), "stale baseline entries — prune them:\n{stale:#?}");
    assert!(
        suppressed >= baseline.len(),
        "baseline has {} entries but only {suppressed} fired — prune the stale ones",
        baseline.len()
    );
    // The flow-sensitive layer is non-vacuous: CFGs cover the workspace
    // and the typestate families actually tracked the transport's pools
    // and connection DFA.
    assert!(report.cfg_blocks >= 2000, "only {} CFG blocks built", report.cfg_blocks);
    assert!(report.pool_sites >= 4, "only {} static pool sites", report.pool_sites);
    assert!(report.pool_tracked >= 2, "only {} pooled bindings tracked", report.pool_tracked);
    assert!(report.dfa_transitions >= 3, "only {} DFA transitions checked", report.dfa_transitions);
    // Coverage floor: the walk found the real tree, not an empty dir.
    assert!(report.files_scanned >= 40, "only {} files scanned", report.files_scanned);
    // The interprocedural layer is non-vacuous: the call graph covers
    // the workspace and the annotated reactor roots reach a real
    // subtree of the transport.
    assert!(report.functions >= 1000, "only {} functions indexed", report.functions);
    assert!(report.call_edges >= 2000, "only {} call edges resolved", report.call_edges);
    assert!(report.fixpoint_iterations >= 2, "fixpoint converged suspiciously fast");
    assert!(report.reactor_roots >= 7, "only {} reactor roots", report.reactor_roots);
    assert!(
        report.reactor_reachable >= 40,
        "roots reach only {} fns — annotations detached?",
        report.reactor_reachable
    );
    // The static lock graph is non-vacuous: the instrumented probe locks
    // and the FTIM-side probe annotations are all visible statically.
    assert!(report.lock_names.contains("probe"), "{:?}", report.lock_names);
    assert!(report.lock_names.contains("ftim-probe"), "{:?}", report.lock_names);
    assert!(!report.lock_edges.is_empty(), "no nested acquisitions found");
}

#[test]
fn injected_bug_spans_contain_the_seeded_deadlock() {
    let root = workspace_root();
    let report = run_scan(&Options { root, include_injected: true, ..Options::default() });
    // The inject_bugs feature seeds a real lock-order inversion in the
    // engine; scanning those spans must surface it as a cycle.
    assert!(
        report.findings.iter().any(|f| f.rule == "lock-order" && f.message.contains("diag")),
        "expected the seeded diag/probe inversion, got:\n{:#?}",
        report.findings
    );
}
