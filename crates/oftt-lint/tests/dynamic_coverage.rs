//! Static ⊇ dynamic, end to end: run a real (small-budget) oftt-audit
//! sweep, collect every lock base name it observed, and require the
//! static acquisition graph to cover all of them. This is what keeps
//! the static lock-order verdict non-vacuous — if the interpreter ever
//! stops seeing a lock the runtime actually takes, this test fails
//! rather than the cycle check silently passing on an empty graph.

use std::path::PathBuf;

use oftt_audit::sweep::audit_sweep;
use oftt_check::{ExploreConfig, ScenarioKind};
use oftt_lint::{run_scan, Options};

#[test]
fn static_lock_graph_covers_every_dynamic_lock_site() {
    let config = ExploreConfig { seeds: vec![1, 2], budget: 40, ..ExploreConfig::default() };
    let mut dynamic = std::collections::BTreeSet::new();
    for kind in [ScenarioKind::PairFailover, ScenarioKind::PartitionedStartup] {
        dynamic.extend(audit_sweep(kind, &config).lock_sites);
    }
    assert!(!dynamic.is_empty(), "the sweep observed no lock sites at all");

    let root =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("root");
    let report = run_scan(&Options {
        root,
        dynamic_locks: dynamic.iter().cloned().collect(),
        ..Options::default()
    });
    assert_eq!(report.dynamic_checked, dynamic.len());
    assert!(
        report.dynamic_uncovered.is_empty(),
        "dynamic lock sites missing from the static graph: {:?} (static: {:?})",
        report.dynamic_uncovered,
        report.lock_names
    );
}
