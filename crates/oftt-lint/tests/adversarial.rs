//! Lexer/scanner totality under hostile input: malformed Rust must come
//! back as diagnostics (surfaced as findings), never as a panic. The
//! analyzer runs over every file in the tree unconditionally, so "crash
//! on weird source" would make the whole lint stage flaky.

use oftt_lint::scan_source;
use oftt_lint::scanner::FileKind;

fn scan(source: &str) -> Vec<oftt_lint::report::Finding> {
    scan_source("hostile.rs", source, FileKind::Runtime, false).1
}

#[test]
fn unterminated_string_is_a_diagnostic() {
    let findings = scan("fn f() { let s = \"never closed; }");
    assert!(findings.iter().any(|f| f.rule == "lex"));
}

#[test]
fn unterminated_raw_string_is_a_diagnostic() {
    let findings = scan("fn f() { let s = r#\"still open\" }");
    assert!(findings.iter().any(|f| f.rule == "lex"));
}

#[test]
fn unterminated_block_comment_is_a_diagnostic() {
    let findings = scan("fn f() {} /* outer /* nested */ still open");
    assert!(findings.iter().any(|f| f.rule == "lex"));
}

#[test]
fn unterminated_char_literal_is_a_diagnostic() {
    // `'x` alone would be a valid lifetime token; a backslash escape
    // commits the lexer to a char literal, which then never closes.
    let findings = scan("fn f() { let c = '\\x41 }");
    assert!(findings.iter().any(|f| f.rule == "lex"), "{findings:?}");
}

#[test]
fn unknown_directive_is_a_loud_diagnostic() {
    let findings = scan("// oftt-lint: non-blocking\nfn f() {}");
    assert!(
        findings.iter().any(|f| f.rule == "directive"),
        "a typoed directive must fail loudly, not silently not-apply"
    );
}

#[test]
fn unbalanced_braces_never_panic() {
    for source in
        ["fn f() { { { {", "} } } fn g() {}", "fn f(]) -> ) {", "#[cfg(test)", "impl } for { fn"]
    {
        let _ = scan(source);
    }
}

#[test]
fn deeply_nested_input_never_panics() {
    let mut source = String::from("fn f() ");
    source.push_str(&"{".repeat(4000));
    source.push_str(&"}".repeat(4000));
    let _ = scan(&source);
}

#[test]
fn printable_ascii_soup_never_panics() {
    // Deterministic pseudo-random soup over the full punctuation set —
    // every byte the lexer special-cases, in arbitrary orders.
    let alphabet: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
    let mut state = 0x9e3779b97f4a7c15u64;
    for len in [1usize, 7, 63, 511] {
        let mut source = String::new();
        for _ in 0..len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            source.push(alphabet[(state >> 33) as usize % alphabet.len()]);
        }
        let _ = scan(&source);
    }
}

#[test]
fn multibyte_utf8_never_panics() {
    for source in ["fn f() { 'λ' }", "// λλλ\nfn λ() {}", "fn f() { \"日本語\" }", "'日"] {
        let _ = scan(source);
    }
}

#[test]
fn clean_source_has_no_diagnostics() {
    let findings = scan("fn f(x: u8) -> u8 { x + 1 }");
    assert!(findings.is_empty(), "{findings:?}");
}
