//! Each seeded-defect fixture under `fixtures/` must fire exactly its
//! own rule family — the positive half of the analyzer's contract (the
//! negative half, zero findings on the real tree, is
//! `workspace_clean.rs`).

use std::path::PathBuf;

use oftt_lint::{run_scan, Options};

fn scan_fixture(name: &str) -> oftt_lint::report::Report {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let path = root.join("fixtures").join(name);
    assert!(path.is_file(), "missing fixture {}", path.display());
    run_scan(&Options { root, paths: vec![path], ..Options::default() })
}

fn rules_fired(report: &oftt_lint::report::Report) -> Vec<&str> {
    let mut rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn role_leak_fixture_fires_role_confinement() {
    let report = scan_fixture("role_leak.rs");
    assert_eq!(rules_fired(&report), ["role-confinement"]);
    // Both the `.role =` and the `.term +=` store are caught.
    assert_eq!(report.findings.len(), 2);
    assert!(report.findings.iter().all(|f| f.message.contains("sneak_promote")));
}

#[test]
fn lock_cycle_fixture_fires_lock_order() {
    let report = scan_fixture("lock_cycle.rs");
    assert_eq!(rules_fired(&report), ["lock-order"]);
    let cycle = &report.findings[0];
    assert!(cycle.message.contains("alpha"), "{}", cycle.message);
    assert!(cycle.message.contains("beta"), "{}", cycle.message);
    // Both orderings made it into the static graph.
    assert!(report.lock_edges.contains(&("alpha".into(), "beta".into())));
    assert!(report.lock_edges.contains(&("beta".into(), "alpha".into())));
}

#[test]
fn blocking_fixture_fires_nonblocking() {
    let report = scan_fixture("blocking.rs");
    assert_eq!(rules_fired(&report), ["nonblocking"]);
    let names: Vec<&str> =
        report.findings.iter().map(|f| f.message.split('`').nth(1).unwrap_or("")).collect();
    assert_eq!(names, ["sleep", "recv"]);
}

#[test]
fn lifecycle_fixture_fires_api_lifecycle() {
    let report = scan_fixture("lifecycle.rs");
    assert_eq!(rules_fired(&report), ["api-lifecycle"]);
    assert_eq!(report.findings.len(), 2);
    assert!(report.findings[0].message.contains("after `watchdog_delete`"));
    assert!(report.findings[1].message.contains("before `initialize`"));
}

#[test]
fn panics_fixture_fires_no_panic() {
    let report = scan_fixture("panics.rs");
    assert_eq!(rules_fired(&report), ["no-panic"]);
    // Index, panic!, unwrap — in line order.
    assert_eq!(report.findings.len(), 3);
}

#[test]
fn hot_blocking_fixture_fires_reactor_hot_path() {
    let report = scan_fixture("hot_blocking.rs");
    assert_eq!(rules_fired(&report), ["reactor-hot-path"]);
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert!(f.message.contains("blocking call `sleep`"), "{}", f.message);
    // The witness chain spells the full path from the root.
    assert!(f.message.contains("on_frame → step → nap"), "{}", f.message);
}

#[test]
fn hot_panic_fixture_fires_reactor_hot_path() {
    let report = scan_fixture("hot_panic.rs");
    assert_eq!(rules_fired(&report), ["reactor-hot-path"]);
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert!(f.message.contains("panic path `index`"), "{}", f.message);
    assert!(f.message.contains("on_frame → decode"), "{}", f.message);
}

#[test]
fn guard_block_fixture_fires_lock_across_blocking() {
    let report = scan_fixture("guard_block.rs");
    assert_eq!(rules_fired(&report), ["lock-across-blocking"]);
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert!(f.message.contains("`state`"), "{}", f.message);
    assert!(f.message.contains("`persist`"), "{}", f.message);
    // The blocking ground is named even though it is two calls away.
    assert!(f.message.contains("sleep"), "{}", f.message);
}

#[test]
fn transitive_cycle_fixture_fires_lock_order() {
    let report = scan_fixture("transitive_cycle.rs");
    assert_eq!(rules_fired(&report), ["lock-order"]);
    let cycle = &report.findings[0];
    assert!(cycle.message.contains("outer"), "{}", cycle.message);
    assert!(cycle.message.contains("inner"), "{}", cycle.message);
    // No single function nests the pair: both edges are call-derived.
    assert!(report.lock_edges.contains(&("outer".into(), "inner".into())));
    assert!(report.lock_edges.contains(&("inner".into(), "outer".into())));
}

#[test]
fn use_after_recycle_fixture_fires_pool_typestate() {
    let report = scan_fixture("use_after_recycle.rs");
    assert_eq!(rules_fired(&report), ["pool-typestate"]);
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert!(f.message.contains("`buf` used after it may already be recycled"), "{}", f.message);
}

#[test]
fn double_recycle_fixture_fires_pool_typestate() {
    let report = scan_fixture("double_recycle.rs");
    assert_eq!(rules_fired(&report), ["pool-typestate"]);
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert!(f.message.contains("recycled again"), "{}", f.message);
    assert!(f.message.contains("double-inserted"), "{}", f.message);
}

#[test]
fn leak_on_error_path_fixture_fires_pool_typestate() {
    let report = scan_fixture("leak_on_error_path.rs");
    assert_eq!(rules_fired(&report), ["pool-typestate"]);
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert!(f.message.contains("may reach function exit without ship or recycle"), "{}", f.message);
    // The happy path ships — only the `?` edge leaks, and the dataflow
    // still sees it.
    assert!(f.message.contains("`buf`"), "{}", f.message);
}

#[test]
fn unstamped_epoch_fixture_fires_epoch_stamping() {
    let report = scan_fixture("unstamped_epoch.rs");
    assert_eq!(rules_fired(&report), ["epoch-stamping"]);
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert!(f.message.contains("without an epoch stamp"), "{}", f.message);
    assert!(f.message.contains("StampedFrame"), "{}", f.message);
}

#[test]
fn dfa_violation_fixture_fires_conn_dfa() {
    let report = scan_fixture("dfa_violation.rs");
    assert_eq!(rules_fired(&report), ["conn-dfa"]);
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert!(f.message.contains("`new => Established`"), "{}", f.message);
    // The declared AwaitHello construction in the same file is silent.
    assert_eq!(report.dfa_transitions, 2);
}

#[test]
fn fixtures_are_invisible_to_the_workspace_walk() {
    assert_eq!(oftt_lint::classify("crates/oftt-lint/fixtures/lock_cycle.rs"), None);
}
