//! `oftt-audit` CLI: sweep-audit schedules for races, lock-order
//! inversions, and stale reads, or lint a single run's API call stream.

use std::process::ExitCode;
use std::time::Instant;

use ds_sim::prelude::SimDuration;
use oftt_audit::{audit_sweep, lint};
use oftt_check::{run_scenario, CheckOptions, ExploreConfig, ScenarioKind};

const USAGE: &str = "\
oftt-audit: happens-before race/lock-order analyzer and OFTT API-lifecycle
linter over the model checker's deterministic traces

USAGE:
    oftt-audit scan [OPTIONS]     audit every distinct schedule of a sweep
    oftt-audit lint [OPTIONS]     lint one run's API call sequence

OPTIONS (scan):
    --scenario NAME        pair-failover (default) | partitioned-startup
    --budget N             max simulation runs (default 600)
    --seeds N              sweep seeds 1..=N (default 8)
    --window-us MICROS     tie window in microseconds (default 500)
    --export-locks FILE    write the base names of every dynamically
                           observed lock site (one per line) for
                           oftt-lint's static-coverage cross-check
    --export-pool-ops FILE write every dynamically observed pooled-buffer
                           operation (`pool_name:op`, one per line) for
                           oftt-lint's pool-lifecycle cross-check

OPTIONS (lint):
    --scenario NAME        pair-failover (default) | partitioned-startup
    --seed N               schedule seed (default 1)

EXIT CODE: 0 clean, 1 usage error, 2 findings.";

struct Args {
    scenario: ScenarioKind,
    budget: usize,
    seeds: u64,
    window_us: u64,
    seed: u64,
    export_locks: Option<String>,
    export_pool_ops: Option<String>,
}

fn parse_args(it: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        scenario: ScenarioKind::PairFailover,
        budget: 600,
        seeds: 8,
        window_us: 500,
        seed: 1,
        export_locks: None,
        export_pool_ops: None,
    };
    let mut it = it;
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--scenario" => {
                let v = value("--scenario")?;
                args.scenario = ScenarioKind::parse(&v).ok_or(format!("unknown scenario {v:?}"))?;
            }
            "--budget" => args.budget = value("--budget")?.parse().map_err(|e| format!("{e}"))?,
            "--seeds" => args.seeds = value("--seeds")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--window-us" => {
                args.window_us = value("--window-us")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--export-locks" => args.export_locks = Some(value("--export-locks")?),
            "--export-pool-ops" => args.export_pool_ops = Some(value("--export-pool-ops")?),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if args.seeds == 0 || args.budget == 0 {
        return Err("--seeds and --budget must be at least 1".to_string());
    }
    Ok(args)
}

fn scan_mode(args: &Args) -> ExitCode {
    let config = ExploreConfig {
        seeds: (1..=args.seeds).collect(),
        budget: args.budget,
        opts: CheckOptions {
            tie_window: SimDuration::from_micros(args.window_us),
            ..Default::default()
        },
        ..Default::default()
    };
    println!(
        "auditing {} (budget {} runs, seeds 1..={}, window {}µs)",
        args.scenario.name(),
        config.budget,
        args.seeds,
        args.window_us
    );
    let started = Instant::now();
    let report = audit_sweep(args.scenario, &config);
    println!(
        "{} runs, {} distinct schedules, {} choice points, {:.1}s",
        report.explore.runs,
        report.explore.distinct,
        report.explore.choice_points,
        started.elapsed().as_secs_f64()
    );
    if let Some(path) = &args.export_locks {
        let mut text = String::new();
        for site in &report.lock_sites {
            text.push_str(site);
            text.push('\n');
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(1);
        }
        println!("{} dynamic lock site(s) exported to {path}", report.lock_sites.len());
    }
    if let Some(path) = &args.export_pool_ops {
        let mut text = String::new();
        for op in &report.pool_ops {
            text.push_str(op);
            text.push('\n');
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(1);
        }
        println!("{} dynamic pool op(s) exported to {path}", report.pool_ops.len());
    }
    if !report.explore.counterexamples.is_empty() {
        println!(
            "note: {} protocol-invariant counterexample(s) also found — run oftt-check",
            report.explore.counterexamples.len()
        );
    }
    if report.findings.is_empty() {
        println!("no races, lock-order inversions, stale reads, or lint findings");
        return ExitCode::SUCCESS;
    }
    println!("\n{} finding(s):", report.findings.len());
    for finding in &report.findings {
        println!("  {finding}");
    }
    ExitCode::from(2)
}

fn lint_mode(args: &Args) -> ExitCode {
    println!("linting one {} run (seed {})", args.scenario.name(), args.seed);
    let result = run_scenario(args.scenario, args.seed, &[], &CheckOptions::default());
    let findings = lint::lint_api_usage(&result.events, &result.causality.api_calls);
    println!(
        "{} API call(s) from {} trace event(s)",
        result.causality.api_calls.len(),
        result.events.len()
    );
    if findings.is_empty() {
        println!("no lifecycle violations");
        return ExitCode::SUCCESS;
    }
    println!("\n{} finding(s):", findings.len());
    for finding in &findings {
        println!("  {finding}");
    }
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut it = std::env::args().skip(1);
    let mode = it.next();
    let args = match parse_args(it) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(1);
        }
    };
    match mode.as_deref() {
        Some("scan") => scan_mode(&args),
        Some("lint") => lint_mode(&args),
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: expected a subcommand (scan | lint), got {other:?}\n\n{USAGE}");
            ExitCode::from(1)
        }
    }
}
