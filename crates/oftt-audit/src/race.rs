//! Race-candidate detection: conflicting accesses unordered by
//! happens-before.
//!
//! Two access records conflict when they touch the same object, at least
//! one is a write, and they come from different actors. A conflicting pair
//! whose vector clocks are concurrent is a race candidate: no message
//! chain, spawn, or program-order edge separates the two accesses, so the
//! schedule explorer could legally have run them in either order against
//! the same shared state.
//!
//! Object naming keeps the clean sweep quiet without masking bugs:
//! checkpoint objects are origin-qualified and `(term, seq)`-versioned
//! (written exactly once, read under the shipping message's clock), and
//! store/queue/role objects are node-local with all remote interest
//! flowing through messages. Any concurrent cross-actor conflict is
//! therefore a genuine protocol breach, not naming noise.

use std::collections::{BTreeMap, BTreeSet};

use ds_sim::causality::{AccessRecord, CausalityLog};
use ds_sim::prelude::AccessKind;

use crate::Finding;

/// Scans one run's access records for race candidates. Each (object,
/// actor-pair) is reported at most once — the first concurrent conflict
/// found in log order.
pub fn find_races(log: &CausalityLog) -> Vec<Finding> {
    let mut by_object: BTreeMap<&str, Vec<&AccessRecord>> = BTreeMap::new();
    for access in &log.accesses {
        by_object.entry(access.object.as_str()).or_default().push(access);
    }
    let mut out = Vec::new();
    let mut reported: BTreeSet<(&str, &str, &str)> = BTreeSet::new();
    for (object, accesses) in by_object {
        // A single-actor object cannot race with itself.
        let actors: BTreeSet<&str> = accesses.iter().map(|a| a.actor.as_str()).collect();
        if actors.len() < 2 {
            continue;
        }
        for (i, a) in accesses.iter().enumerate() {
            for b in accesses.iter().skip(i + 1) {
                if a.actor == b.actor {
                    continue;
                }
                if a.kind == AccessKind::Read && b.kind == AccessKind::Read {
                    continue;
                }
                if !a.clock.concurrent(&b.clock) {
                    continue;
                }
                let (first, second) =
                    if a.actor.as_str() <= b.actor.as_str() { (*a, *b) } else { (*b, *a) };
                if reported.insert((object, first.actor.as_str(), second.actor.as_str())) {
                    out.push(Finding {
                        analyzer: "race",
                        at: a.at.max(b.at),
                        detail: format!(
                            "race candidate on {object}: {} {} ({}) is concurrent with \
                             {} {} ({})",
                            first.actor,
                            first.kind,
                            first.detail,
                            second.actor,
                            second.kind,
                            second.detail
                        ),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_sim::prelude::{CausalityTracker, SimTime};

    /// Builds a log through the tracker so clocks come from the real
    /// tick/join machinery.
    fn two_actor_log(ordered: bool) -> CausalityLog {
        let mut t = CausalityTracker::new();
        t.set_recording(true);
        t.begin("writer");
        t.record_access(SimTime::from_secs(1), "obj", AccessKind::Write, "w");
        let writer_clock = t.current_clock().unwrap();
        t.begin("reader");
        if ordered {
            // Simulate a message from writer to reader.
            t.join(&writer_clock);
        }
        t.record_access(SimTime::from_secs(2), "obj", AccessKind::Read, "r");
        t.take_log()
    }

    #[test]
    fn concurrent_write_read_is_a_race() {
        let findings = find_races(&two_actor_log(false));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].detail.contains("obj"));
    }

    #[test]
    fn message_ordered_accesses_are_clean() {
        assert!(find_races(&two_actor_log(true)).is_empty());
    }

    #[test]
    fn concurrent_reads_are_not_a_race() {
        let mut t = CausalityTracker::new();
        t.set_recording(true);
        t.begin("a");
        t.record_access(SimTime::from_secs(1), "obj", AccessKind::Read, "r1");
        t.begin("b");
        t.record_access(SimTime::from_secs(2), "obj", AccessKind::Read, "r2");
        assert!(find_races(&t.take_log()).is_empty());
    }

    #[test]
    fn same_actor_accesses_are_not_a_race() {
        let mut t = CausalityTracker::new();
        t.set_recording(true);
        t.begin("a");
        t.record_access(SimTime::from_secs(1), "obj", AccessKind::Write, "w1");
        t.begin("a");
        t.record_access(SimTime::from_secs(2), "obj", AccessKind::Write, "w2");
        assert!(find_races(&t.take_log()).is_empty());
    }

    #[test]
    fn each_object_pair_is_reported_once() {
        let mut t = CausalityTracker::new();
        t.set_recording(true);
        for round in 0..3 {
            t.begin("a");
            t.record_access(SimTime::from_secs(round), "obj", AccessKind::Write, "w");
            t.begin("b");
            t.record_access(SimTime::from_secs(round), "obj", AccessKind::Write, "w");
        }
        // Every cross-round pair is concurrent, but one finding suffices.
        assert_eq!(find_races(&t.take_log()).len(), 1);
    }
}
