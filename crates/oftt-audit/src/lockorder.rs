//! Lock-order inversion detection over the instrumented `parking_lot`
//! shim sites.
//!
//! Replaying each actor's lock events against a held-set builds the
//! global lock-acquisition graph: acquiring `B` while holding `A` adds
//! the edge `A → B`. Like a kernel lockdep, edges from *all* actors are
//! merged into one graph — even a single actor alternating between
//! `A → B` and `B → A` call paths is an inversion, because under the
//! toolkit's real (multi-threaded NT) deployment another thread can run
//! the opposite path concurrently and deadlock. Any cycle in the merged
//! graph is reported once.

use std::collections::{BTreeMap, BTreeSet};

use ds_sim::causality::CausalityLog;
use ds_sim::prelude::SimTime;

use crate::Finding;

/// The acquisition graph: `edges[a]` holds every lock acquired while `a`
/// was held, with the time the edge was first observed.
#[derive(Debug, Default)]
struct LockGraph<'a> {
    edges: BTreeMap<&'a str, BTreeMap<&'a str, SimTime>>,
}

fn build_graph(log: &CausalityLog) -> LockGraph<'_> {
    let mut graph = LockGraph::default();
    let mut held: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for event in &log.locks {
        let stack = held.entry(event.actor.as_str()).or_default();
        if event.acquired {
            for outer in stack.iter() {
                if *outer != event.lock.as_str() {
                    graph
                        .edges
                        .entry(outer)
                        .or_default()
                        .entry(event.lock.as_str())
                        .or_insert(event.at);
                }
            }
            stack.push(event.lock.as_str());
        } else if let Some(pos) = stack.iter().rposition(|l| *l == event.lock.as_str()) {
            stack.remove(pos);
        }
    }
    graph
}

/// Tarjan's strongly-connected components over the lock graph. Any SCC
/// with more than one lock contains a cycle — an inversion.
fn cyclic_components<'a>(graph: &LockGraph<'a>) -> Vec<Vec<&'a str>> {
    struct State<'a> {
        index: BTreeMap<&'a str, usize>,
        lowlink: BTreeMap<&'a str, usize>,
        on_stack: BTreeSet<&'a str>,
        stack: Vec<&'a str>,
        next: usize,
        sccs: Vec<Vec<&'a str>>,
    }
    fn visit<'a>(node: &'a str, graph: &LockGraph<'a>, st: &mut State<'a>) {
        st.index.insert(node, st.next);
        st.lowlink.insert(node, st.next);
        st.next += 1;
        st.stack.push(node);
        st.on_stack.insert(node);
        if let Some(succs) = graph.edges.get(node) {
            for succ in succs.keys() {
                if !st.index.contains_key(succ) {
                    visit(succ, graph, st);
                    let low = st.lowlink[succ].min(st.lowlink[node]);
                    st.lowlink.insert(node, low);
                } else if st.on_stack.contains(succ) {
                    let low = st.index[succ].min(st.lowlink[node]);
                    st.lowlink.insert(node, low);
                }
            }
        }
        if st.lowlink[node] == st.index[node] {
            let mut component = Vec::new();
            while let Some(top) = st.stack.pop() {
                st.on_stack.remove(top);
                component.push(top);
                if top == node {
                    break;
                }
            }
            if component.len() > 1 {
                component.sort_unstable();
                st.sccs.push(component);
            }
        }
    }
    let mut st = State {
        index: BTreeMap::new(),
        lowlink: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        next: 0,
        sccs: Vec::new(),
    };
    let nodes: Vec<&str> = graph
        .edges
        .iter()
        .flat_map(|(a, succs)| std::iter::once(*a).chain(succs.keys().copied()))
        .collect();
    for node in nodes {
        if !st.index.contains_key(node) {
            visit(node, graph, &mut st);
        }
    }
    st.sccs
}

/// Scans one run's lock events for acquisition-order cycles. Each cyclic
/// component is reported once, listing the locks involved.
pub fn find_lock_inversions(log: &CausalityLog) -> Vec<Finding> {
    let graph = build_graph(log);
    cyclic_components(&graph)
        .into_iter()
        .map(|component| {
            let at = component
                .iter()
                .flat_map(|a| {
                    graph.edges.get(a).into_iter().flat_map(|succs| {
                        succs.iter().filter(|(b, _)| component.contains(b)).map(|(_, at)| *at)
                    })
                })
                .min()
                .unwrap_or(SimTime::ZERO);
            Finding {
                analyzer: "lock-order",
                at,
                detail: format!(
                    "lock-order inversion: {{{}}} are acquired in conflicting orders",
                    component.join(", ")
                ),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_sim::prelude::CausalityTracker;

    fn lock_seq(ops: &[(&str, &str, bool)]) -> CausalityLog {
        let mut t = CausalityTracker::new();
        t.set_recording(true);
        for (i, (actor, lock, acquired)) in ops.iter().enumerate() {
            t.begin(actor);
            t.record_lock(SimTime::from_secs(i as u64), lock, *acquired);
        }
        t.take_log()
    }

    #[test]
    fn opposite_orders_form_an_inversion() {
        let log = lock_seq(&[
            ("x", "a", true),
            ("x", "b", true),
            ("x", "b", false),
            ("x", "a", false),
            ("y", "b", true),
            ("y", "a", true),
            ("y", "a", false),
            ("y", "b", false),
        ]);
        let findings = find_lock_inversions(&log);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].detail.contains("a, b"));
    }

    #[test]
    fn consistent_nesting_is_clean() {
        let log = lock_seq(&[
            ("x", "a", true),
            ("x", "b", true),
            ("x", "b", false),
            ("x", "a", false),
            ("y", "a", true),
            ("y", "b", true),
            ("y", "b", false),
            ("y", "a", false),
        ]);
        assert!(find_lock_inversions(&log).is_empty());
    }

    #[test]
    fn non_nested_locks_are_clean() {
        let log =
            lock_seq(&[("x", "a", true), ("x", "a", false), ("x", "b", true), ("x", "b", false)]);
        assert!(find_lock_inversions(&log).is_empty());
    }

    #[test]
    fn three_lock_cycle_is_found() {
        let log = lock_seq(&[
            ("x", "a", true),
            ("x", "b", true),
            ("x", "b", false),
            ("x", "a", false),
            ("x", "b", true),
            ("x", "c", true),
            ("x", "c", false),
            ("x", "b", false),
            ("x", "c", true),
            ("x", "a", true),
            ("x", "a", false),
            ("x", "c", false),
        ]);
        let findings = find_lock_inversions(&log);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].detail.contains("a, b, c"));
    }
}
