//! Stale-read hazard detection over the checkpoint serve path.
//!
//! When a restarting FTIM asks its peer for state, the peer serves either
//! its live image (active side) or its checkpoint store (backup side).
//! Serving *old* state is not automatically wrong — the server may simply
//! not have newer state yet. The hazard is serving state older than a
//! checkpoint position whose acknowledgement the server *causally knew
//! about* at serve time: the ack's vector clock is dominated by the serve's
//! clock, yet the served position is behind the acked one. A restart fed
//! from such a serve silently rolls back state the protocol had already
//! confirmed as replicated.

use oftt_check::parse::{Event, EventKind};

use crate::Finding;

/// Scans one run's parsed events for stale serves. Runs recorded without
/// vector clocks pass vacuously.
pub fn find_stale_serves(events: &[Event]) -> Vec<Finding> {
    let mut acks: Vec<((u64, u64), &ds_sim::prelude::VectorClock)> = Vec::new();
    let mut out = Vec::new();
    for ev in events {
        let Some(clock) = &ev.clock else { continue };
        match &ev.kind {
            EventKind::CkptAcked { term, seq, .. } => {
                acks.push(((*term, *seq), clock));
            }
            EventKind::CkptServed { ep, term, seq, .. } => {
                let served = (*term, *seq);
                if let Some((newer, _)) =
                    acks.iter().find(|(pos, ack)| *pos > served && ack.le(clock))
                {
                    out.push(Finding {
                        analyzer: "stale-read",
                        at: ev.at,
                        detail: format!(
                            "{ep} served stale image ({term},{seq}) while causally aware of \
                             the ack for ({},{})",
                            newer.0, newer.1
                        ),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_sim::prelude::{SimDuration, SimTime, VectorClock};

    fn clock_of(pairs: &[(u32, u64)]) -> VectorClock {
        let mut c = VectorClock::new();
        for &(actor, n) in pairs {
            for _ in 0..n {
                c.tick(actor);
            }
        }
        c
    }

    fn acked(ms: u64, term: u64, seq: u64, pairs: &[(u32, u64)]) -> Event {
        Event {
            at: SimTime::ZERO + SimDuration::from_millis(ms),
            kind: EventKind::CkptAcked { ep: "node0/ct".into(), term, seq },
            clock: Some(clock_of(pairs)),
        }
    }

    fn served(ms: u64, term: u64, seq: u64, pairs: &[(u32, u64)]) -> Event {
        Event {
            at: SimTime::ZERO + SimDuration::from_millis(ms),
            kind: EventKind::CkptServed { ep: "node1/ct".into(), term, seq, crc: 1 },
            clock: Some(clock_of(pairs)),
        }
    }

    #[test]
    fn serving_behind_a_known_ack_is_flagged() {
        // Ack for (1,5) at clock {0:2}; the serve of (1,3) has clock
        // {0:2,1:1} — it causally knew about the newer ack.
        let events = vec![acked(1, 1, 5, &[(0, 2)]), served(2, 1, 3, &[(0, 2), (1, 1)])];
        let findings = find_stale_serves(&events);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].detail.contains("(1,5)"));
    }

    #[test]
    fn serving_without_causal_knowledge_is_clean() {
        // Same positions, but the serve's clock is concurrent with the
        // ack's — the server could not have known.
        let events = vec![acked(1, 1, 5, &[(0, 2)]), served(2, 1, 3, &[(1, 1)])];
        assert!(find_stale_serves(&events).is_empty());
    }

    #[test]
    fn serving_at_or_past_the_acked_position_is_clean() {
        let events = vec![
            acked(1, 1, 5, &[(0, 2)]),
            served(2, 1, 5, &[(0, 2), (1, 1)]),
            served(3, 1, 7, &[(0, 2), (1, 2)]),
        ];
        assert!(find_stale_serves(&events).is_empty());
    }

    #[test]
    fn unclocked_runs_pass_vacuously() {
        let events = vec![Event {
            at: SimTime::from_secs(1),
            kind: EventKind::CkptServed { ep: "node1/ct".into(), term: 1, seq: 1, crc: 1 },
            clock: None,
        }];
        assert!(find_stale_serves(&events).is_empty());
    }
}
