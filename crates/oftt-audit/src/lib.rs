//! # oftt-audit — happens-before race/lock-order analyzer and OFTT
//! API-lifecycle linter over deterministic traces
//!
//! oftt-check answers "does the failover protocol keep its promises under
//! every explored interleaving?". This crate answers the complementary
//! question: "does the *implementation* touch shared state safely, take
//! its locks consistently, and use the OFTT API legally while doing so?"
//!
//! Every checked run records a causality log alongside its trace: each
//! scheduler dispatch ticks the handling actor's vector clock, message
//! deliveries and spawns join the sender's clock, and the instrumented
//! access sites (checkpoint `VarStore` reads/writes, `msgq` queue
//! mutations, engine role transitions, watchdog table operations) emit
//! typed, clocked records. Four post-hoc analyzers consume that log:
//!
//! * [`race`] — **race candidates**: two accesses to the same object, at
//!   least one a write, from different actors, whose vector clocks are
//!   concurrent (neither happens-before the other).
//! * [`lockorder`] — **lock-order inversions**: cycles in the global
//!   lock-acquisition graph built from the instrumented `parking_lot`
//!   shim sites (acquire-while-holding adds an edge).
//! * [`stale`] — **stale-read hazards**: a node serving a checkpoint
//!   image older than a position whose acknowledgement it causally knew
//!   about at serve time.
//! * [`lint`] — **API-lifecycle linter**: a per-actor DFA over the OFTT
//!   call sequence flagging save-before-initialize, checkpoint calls from
//!   the backup role, watchdog set/reset/delete on nonexistent or deleted
//!   entries, and watchdogs leaked across a deactivation.
//!
//! [`sweep`] rides oftt-check's POR-pruned schedule exploration
//! ([`oftt_check::explore_with`]) so every analyzer sees every distinct
//! interleaving the model checker sees.
//!
//! ## Usage
//!
//! ```text
//! cargo run -p oftt-audit --release -- scan --scenario pair-failover --budget 600
//! cargo run -p oftt-audit --release -- lint --scenario partitioned-startup --seed 3
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ds_sim::prelude::SimTime;

pub mod lint;
pub mod lockorder;
pub mod race;
pub mod stale;
pub mod sweep;

pub use sweep::{analyze_run, audit_sweep, lock_site_names, AuditReport};

/// One analyzer finding, tied to the point in the run where it became
/// observable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which analyzer raised it: `race`, `lock-order`, `stale-read`, or
    /// `lint`.
    pub analyzer: &'static str,
    /// When the finding became observable.
    pub at: SimTime,
    /// Human-readable description with the offending values.
    pub detail: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {} at {}", self.analyzer, self.detail, self.at)
    }
}
