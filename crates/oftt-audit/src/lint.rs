//! OFTT API-lifecycle linter: a per-application DFA over the recorded
//! middleware call sequence.
//!
//! The toolkit reports misuse through return codes (`WatchdogError`), but
//! a control application is free to ignore them — the classic NT-era
//! failure mode the paper's API surface invites. The linter replays every
//! application's call stream against a model of the legal lifecycle and
//! flags:
//!
//! * checkpoint calls (`save`, `sel_save`) before `initialize`;
//! * `save` issued while the component holds the backup role;
//! * `watchdog_set` / `watchdog_reset` / `watchdog_delete` on a watchdog
//!   that does not exist or was already deleted (the ignored `NotFound`);
//! * watchdogs still live when the component deactivates — a leak, since
//!   nothing will ever feed them again.
//!
//! Process lifecycle events from the parsed trace (`ServiceStart`,
//! `ServiceKill`, `NodeDown`) reset the per-actor model: a fresh
//! incarnation starts from a blank slate. Watchdog membership resyncs
//! from the recorded `ok=` outcome, so the model never drifts from the
//! toolkit's actual table even across restore paths.

use std::collections::{BTreeMap, BTreeSet};

use ds_sim::causality::ApiEvent;
use oftt_check::parse::{Event, EventKind};

use crate::Finding;

/// Checkpoint calls that are illegal before `initialize`. Shared with
/// `oftt-lint`, whose static call-order rule enforces the same table at
/// source level so the two linters cannot drift apart.
pub const CHECKPOINT_CALLS: &[&str] = &["save", "sel_save"];

/// Calls after which a watchdog name exists (creation and restore both
/// count — a duplicate `watchdog_create` after a restore is legal).
pub const WATCHDOG_CREATE_CALLS: &[&str] = &["watchdog_create", "watchdog_restore"];

/// Calls that require the named watchdog to exist.
pub const WATCHDOG_USE_CALLS: &[&str] = &["watchdog_set", "watchdog_reset"];

/// The call that removes a watchdog; any later use of the same name
/// without re-creation is the ignored-`NotFound` misuse.
pub const WATCHDOG_DELETE_CALL: &str = "watchdog_delete";

/// Per-application lifecycle model.
#[derive(Debug, Default)]
struct AppState {
    initialized: bool,
    watchdogs: BTreeSet<String>,
}

/// Extracts `key=value` from a space-separated detail string.
fn field<'a>(detail: &'a str, key: &str) -> Option<&'a str> {
    detail
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
}

fn node_of(ep: &str) -> &str {
    ep.split('/').next().unwrap_or(ep)
}

fn apply_reset(states: &mut BTreeMap<String, AppState>, event: &Event) {
    match &event.kind {
        EventKind::ServiceStart { ep } | EventKind::ServiceKill { ep } => {
            states.remove(ep);
        }
        EventKind::NodeDown { node } => {
            states.retain(|actor, _| node_of(actor) != node);
        }
        _ => {}
    }
}

fn apply_call(states: &mut BTreeMap<String, AppState>, call: &ApiEvent, out: &mut Vec<Finding>) {
    let state = states.entry(call.actor.clone()).or_default();
    let mut flag = |detail: String| {
        out.push(Finding { analyzer: "lint", at: call.at, detail });
    };
    let name = call.call.as_str();
    if name == "initialize" {
        state.initialized = true;
        state.watchdogs.clear();
    } else if CHECKPOINT_CALLS.contains(&name) {
        if !state.initialized {
            flag(format!("{} called {} before initialize", call.actor, call.call));
        }
        if name == "save" && field(&call.detail, "role") == Some("backup") {
            flag(format!("{} requested a checkpoint save while role=backup", call.actor));
        }
    } else if WATCHDOG_CREATE_CALLS.contains(&name) {
        // ok=false on a create means AlreadyExists (legal after a
        // restore); either way the watchdog exists afterwards.
        if let Some(wd) = field(&call.detail, "name") {
            state.watchdogs.insert(wd.to_string());
        }
    } else if WATCHDOG_USE_CALLS.contains(&name) {
        let Some(wd) = field(&call.detail, "name") else { return };
        if field(&call.detail, "ok") == Some("false") {
            flag(format!("{} {} on nonexistent or deleted watchdog '{wd}'", call.actor, call.call));
        } else {
            // The toolkit accepted it, so it exists — resync.
            state.watchdogs.insert(wd.to_string());
        }
    } else if name == WATCHDOG_DELETE_CALL {
        let Some(wd) = field(&call.detail, "name") else { return };
        if field(&call.detail, "ok") == Some("false") {
            flag(format!(
                "{} watchdog_delete on nonexistent or deleted watchdog '{wd}'",
                call.actor
            ));
        }
        state.watchdogs.remove(wd);
    } else if name == "deactivate" && !state.watchdogs.is_empty() {
        let leaked: Vec<&str> = state.watchdogs.iter().map(String::as_str).collect();
        flag(format!("{} deactivated with live watchdogs: {}", call.actor, leaked.join(", ")));
        state.watchdogs.clear();
    }
}

/// Replays the API call stream (merged with lifecycle resets from the
/// parsed trace) through the per-application DFA and returns every
/// violation. On equal timestamps lifecycle resets are applied before
/// calls, matching the scheduler's spawn-then-dispatch order.
pub fn lint_api_usage(events: &[Event], api_calls: &[ApiEvent]) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut states: BTreeMap<String, AppState> = BTreeMap::new();
    let (mut ei, mut ai) = (0, 0);
    while ei < events.len() || ai < api_calls.len() {
        let take_event =
            ei < events.len() && (ai >= api_calls.len() || events[ei].at <= api_calls[ai].at);
        if take_event {
            apply_reset(&mut states, &events[ei]);
            ei += 1;
        } else {
            apply_call(&mut states, &api_calls[ai], &mut out);
            ai += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_sim::prelude::{SimTime, VectorClock};

    fn call(ms: u64, actor: &str, name: &str, detail: &str) -> ApiEvent {
        ApiEvent {
            at: SimTime::from_millis(ms),
            actor: actor.to_string(),
            call: name.to_string(),
            detail: detail.to_string(),
            clock: VectorClock::new(),
        }
    }

    fn reset_event(ms: u64, kind: EventKind) -> Event {
        Event { at: SimTime::from_millis(ms), kind, clock: None }
    }

    /// The hand-written misuse fixture: one call sequence tripping every
    /// rule exactly once.
    #[test]
    fn misuse_fixture_trips_every_rule() {
        let api = vec![
            call(1, "node0/app", "save", "role=primary active=true"),
            call(2, "node0/app", "initialize", "service=app"),
            call(3, "node0/app", "watchdog_set", "name=ghost ok=false"),
            call(4, "node0/app", "watchdog_create", "name=wd ok=true"),
            call(5, "node0/app", "watchdog_delete", "name=wd ok=true"),
            call(6, "node0/app", "watchdog_reset", "name=wd ok=false"),
            call(7, "node0/app", "watchdog_delete", "name=wd ok=false"),
            call(8, "node0/app", "watchdog_create", "name=leak ok=true"),
            call(9, "node0/app", "save", "role=backup active=false"),
            call(10, "node0/app", "deactivate", "demoted"),
        ];
        let findings = lint_api_usage(&[], &api);
        let details: Vec<&str> = findings.iter().map(|f| f.detail.as_str()).collect();
        assert_eq!(
            details,
            vec![
                "node0/app called save before initialize",
                "node0/app watchdog_set on nonexistent or deleted watchdog 'ghost'",
                "node0/app watchdog_reset on nonexistent or deleted watchdog 'wd'",
                "node0/app watchdog_delete on nonexistent or deleted watchdog 'wd'",
                "node0/app requested a checkpoint save while role=backup",
                "node0/app deactivated with live watchdogs: leak",
            ]
        );
    }

    #[test]
    fn legal_lifecycle_is_clean() {
        let api = vec![
            call(1, "node0/app", "initialize", "service=app"),
            call(2, "node0/app", "watchdog_create", "name=wd ok=true"),
            call(3, "node0/app", "watchdog_set", "name=wd ok=true"),
            call(4, "node0/app", "watchdog_reset", "name=wd ok=true"),
            call(5, "node0/app", "save", "role=primary active=true"),
            call(6, "node0/app", "watchdog_delete", "name=wd ok=true"),
            call(7, "node0/app", "deactivate", "demoted"),
        ];
        assert!(lint_api_usage(&[], &api).is_empty());
    }

    #[test]
    fn restore_then_duplicate_create_is_tolerated() {
        let api = vec![
            call(1, "node0/app", "initialize", "service=app"),
            call(2, "node0/app", "watchdog_restore", "name=wd"),
            call(3, "node0/app", "watchdog_create", "name=wd ok=false"),
            call(4, "node0/app", "watchdog_set", "name=wd ok=true"),
        ];
        assert!(lint_api_usage(&[], &api).is_empty());
    }

    #[test]
    fn service_kill_resets_the_model() {
        let api = vec![
            call(1, "node0/app", "initialize", "service=app"),
            call(2, "node0/app", "watchdog_create", "name=wd ok=true"),
            // killed at t=3; the new incarnation reinitializes and
            // deactivates without ever owning a watchdog.
            call(5, "node0/app", "initialize", "service=app"),
            call(6, "node0/app", "deactivate", "demoted"),
        ];
        let events = vec![
            reset_event(3, EventKind::ServiceKill { ep: "node0/app".into() }),
            reset_event(4, EventKind::ServiceStart { ep: "node0/app".into() }),
        ];
        assert!(lint_api_usage(&events, &api).is_empty());
    }

    #[test]
    fn node_down_resets_every_service_on_the_node() {
        let api = vec![
            call(1, "node0/app", "initialize", "service=app"),
            call(2, "node0/app", "watchdog_create", "name=wd ok=true"),
            call(3, "node1/app", "initialize", "service=app"),
            call(4, "node1/app", "watchdog_create", "name=wd ok=true"),
            call(10, "node0/app", "initialize", "service=app"),
            call(11, "node0/app", "deactivate", "rebooted"),
            // node1 was untouched by the node0 crash: its leak still counts.
            call(12, "node1/app", "deactivate", "demoted"),
        ];
        let events = vec![reset_event(5, EventKind::NodeDown { node: "node0".into() })];
        let findings = lint_api_usage(&events, &api);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].detail.starts_with("node1/app deactivated"));
    }

    #[test]
    fn resets_apply_before_calls_on_equal_timestamps() {
        let api = vec![
            call(5, "node0/app", "initialize", "service=app"),
            call(5, "node0/app", "watchdog_create", "name=wd ok=true"),
            call(6, "node0/app", "watchdog_set", "name=wd ok=true"),
        ];
        let events = vec![reset_event(5, EventKind::ServiceStart { ep: "node0/app".into() })];
        assert!(lint_api_usage(&events, &api).is_empty());
    }
}
