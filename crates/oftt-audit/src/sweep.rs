//! Sweep driver: runs every analyzer over every distinct schedule of an
//! oftt-check exploration.
//!
//! The audit rides [`oftt_check::explore_with`] so it sees exactly the
//! POR-pruned schedule set the model checker sees — the same frontier,
//! budget, and dedup. Findings recur across schedules (the same racy pair
//! exists in most interleavings), so the report dedups them by
//! `(analyzer, detail)` across the whole sweep and keeps the first
//! occurrence.

use std::collections::BTreeSet;

use ds_sim::causality::CausalityLog;
use oftt_check::{explore_with, ExploreConfig, ExploreReport, RunResult, ScenarioKind};

use crate::{lint, lockorder, race, stale, Finding};

/// Everything one audit sweep produces.
#[derive(Debug)]
pub struct AuditReport {
    /// The underlying exploration statistics (runs, distinct schedules,
    /// protocol-invariant counterexamples).
    pub explore: ExploreReport,
    /// Deduplicated analyzer findings across every distinct schedule.
    pub findings: Vec<Finding>,
    /// Base names of every lock site observed dynamically across the
    /// sweep (the text before the first `:` of each instrumented lock
    /// name). `oftt-lint`'s static acquisition graph must cover all of
    /// them — the static ⊇ dynamic cross-validation.
    pub lock_sites: BTreeSet<String>,
    /// Every pooled-buffer operation observed dynamically across the
    /// sweep, as `pool_name:op` strings (`ckpt_staging:take`). The flow-
    /// sensitive linter's static pool-lifecycle sites must cover all of
    /// them — the same static ⊇ dynamic cross-validation as locks.
    pub pool_ops: BTreeSet<String>,
}

/// The base names of every lock event in one run's causality log. Lock
/// names are instance-qualified (`probe:node0/engine`); the base name is
/// the part before the first `:`, which is what a source-level analyzer
/// can see.
pub fn lock_site_names(log: &CausalityLog) -> BTreeSet<String> {
    log.locks
        .iter()
        .map(|event| {
            let name = event.lock.as_str();
            name.split(':').next().unwrap_or(name).to_string()
        })
        .collect()
}

/// Every `pool_name:op` string recorded through `observe_api("pool", …)`
/// in one run's causality log. The detail string is already in the shape
/// the source-level analyzer names its static sites with.
pub fn pool_op_names(log: &CausalityLog) -> BTreeSet<String> {
    log.api_calls
        .iter()
        .filter(|call| call.call == "pool")
        .map(|call| call.detail.clone())
        .collect()
}

/// Runs all four analyzers over a single run's artifacts.
pub fn analyze_run(result: &RunResult) -> Vec<Finding> {
    let mut out = race::find_races(&result.causality);
    out.extend(lockorder::find_lock_inversions(&result.causality));
    out.extend(stale::find_stale_serves(&result.events));
    out.extend(lint::lint_api_usage(&result.events, &result.causality.api_calls));
    out
}

/// Explores `kind` under `config` and audits every distinct schedule.
pub fn audit_sweep(kind: ScenarioKind, config: &ExploreConfig) -> AuditReport {
    let mut findings = Vec::new();
    let mut seen: BTreeSet<(&'static str, String)> = BTreeSet::new();
    let mut lock_sites = BTreeSet::new();
    let mut pool_ops = BTreeSet::new();
    let explore = explore_with(kind, config, |result| {
        for finding in analyze_run(result) {
            if seen.insert((finding.analyzer, finding.detail.clone())) {
                findings.push(finding);
            }
        }
        lock_sites.extend(lock_site_names(&result.causality));
        pool_ops.extend(pool_op_names(&result.causality));
    });
    AuditReport { explore, findings, lock_sites, pool_ops }
}
