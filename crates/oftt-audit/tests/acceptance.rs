//! Acceptance tests for the auditor.
//!
//! Without `inject_bugs`: the full pair-failover sweep and the
//! partitioned-startup sweep must come back with zero findings — the
//! middleware as shipped is race-free, lock-order consistent, and uses its
//! own API legally under every explored interleaving.
//!
//! With `--features inject_bugs`: the three seeded defects (a cross-node
//! checkpoint-store peek, a probe/diag lock inversion, a premature
//! watchdog delete) must each be detected.

#[cfg(not(feature = "inject_bugs"))]
mod clean {
    use oftt_audit::audit_sweep;
    use oftt_check::{ExploreConfig, ScenarioKind};

    /// The headline target: the default 600-run pair-failover sweep (the
    /// same one oftt-check certifies) carries zero audit findings.
    #[test]
    fn pair_failover_sweep_has_no_findings() {
        let report = audit_sweep(ScenarioKind::PairFailover, &ExploreConfig::default());
        assert!(report.explore.distinct >= 500, "sweep too small: {}", report.explore.distinct);
        assert!(
            report.findings.is_empty(),
            "expected a clean audit, got:\n{}",
            render(&report.findings)
        );
    }

    /// Partitioned startup exercises the transient dual-primary window —
    /// the natural home of stale serves and lifecycle confusion.
    #[test]
    fn partitioned_startup_sweep_has_no_findings() {
        let config = ExploreConfig { budget: 100, ..Default::default() };
        let report = audit_sweep(ScenarioKind::PartitionedStartup, &config);
        assert!(report.explore.distinct >= 50, "sweep too small: {}", report.explore.distinct);
        assert!(
            report.findings.is_empty(),
            "expected a clean audit, got:\n{}",
            render(&report.findings)
        );
    }

    fn render(findings: &[oftt_audit::Finding]) -> String {
        findings.iter().map(|f| format!("  {f}\n")).collect()
    }
}

#[cfg(feature = "inject_bugs")]
mod seeded {
    use oftt_audit::analyze_run;
    use oftt_check::{run_scenario, CheckOptions, ScenarioKind};

    /// Defect (a): the engine's debug peek at the *peer's* checkpoint
    /// store races the peer FTIM's installs — no message chain orders the
    /// two, on any schedule.
    #[test]
    fn seeded_cross_node_peek_is_flagged_as_a_race() {
        let detected = (1..=3).any(|seed| {
            let result =
                run_scenario(ScenarioKind::PairFailover, seed, &[], &CheckOptions::default());
            analyze_run(&result)
                .iter()
                .any(|f| f.analyzer == "race" && f.detail.contains("ckpt-store:"))
        });
        assert!(detected, "the injected cross-node store peek must show up as a race");
    }

    /// Defect (b): `tick` locks probe→diag while `send_status` locks
    /// diag→probe; the acquisition graph has a 2-cycle.
    #[test]
    fn seeded_probe_diag_inversion_is_flagged() {
        let result = run_scenario(ScenarioKind::PairFailover, 1, &[], &CheckOptions::default());
        let found = analyze_run(&result).iter().any(|f| {
            f.analyzer == "lock-order" && f.detail.contains("diag:") && f.detail.contains("probe:")
        });
        assert!(found, "the injected probe/diag inversion must be reported");
    }

    /// Defect (c): the deadman is deleted right after arming, so every
    /// later feed-driven reset is a use-after-delete.
    #[test]
    fn seeded_watchdog_use_after_delete_is_flagged() {
        let result = run_scenario(ScenarioKind::PairFailover, 1, &[], &CheckOptions::default());
        let found = analyze_run(&result).iter().any(|f| {
            f.analyzer == "lint"
                && f.detail.contains("watchdog_reset on nonexistent or deleted watchdog 'deadman'")
        });
        assert!(found, "the injected premature watchdog delete must be reported");
    }
}
