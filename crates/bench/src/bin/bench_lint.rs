//! Emits `BENCH_lint.json`: throughput and coverage of the oftt-lint
//! interprocedural effect analysis over the real workspace.
//!
//! ```text
//! cargo run -p bench --release --bin bench-lint      # writes BENCH_lint.json
//! BENCH_LINT_RUNS=10 ... bench-lint                  # more timing samples
//! BENCH_OUT=/tmp/l.json ... bench-lint               # alternate path
//! ```
//!
//! The scan runs end to end (walk, lex, scan, call-graph construction,
//! effect fixpoint, CFG construction, the flow-sensitive dataflow
//! families, every syntactic rule family) `runs` times against the
//! workspace root; the fastest wall time is reported, the way the other
//! bench arms report their best cell. Findings are counted *after* the
//! checked-in `lint-baseline.txt` is applied, so the acceptance verdict
//! the validator enforces — zero non-baselined findings, zero stale
//! baseline entries — matches what CI enforces on the tree. The v2
//! schema adds the typestate-coverage counters (`cfg_blocks`,
//! `dataflow_ms`, `pool_sites`, `pool_tracked`, `dfa_transitions`) so
//! the validator can prove the flow-sensitive stage actually ran over
//! the real tree rather than vacuously passing.

use std::time::Instant;

use oftt_lint::report::{apply_baseline, parse_baseline};
use oftt_lint::{run_scan, Options};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

fn main() {
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_lint.json".into());
    let runs = env_usize("BENCH_LINT_RUNS", 3);
    let root = std::env::current_dir().expect("cwd");
    assert!(
        root.join("lint-baseline.txt").is_file(),
        "run from the workspace root (lint-baseline.txt not found in {})",
        root.display()
    );
    let baseline_text =
        std::fs::read_to_string(root.join("lint-baseline.txt")).expect("read lint-baseline.txt");
    let baseline = parse_baseline(&baseline_text).expect("well-formed baseline");

    let mut best_ms = u128::MAX;
    let mut last = None;
    for _ in 0..runs {
        let started = Instant::now();
        let report = run_scan(&Options { root: root.clone(), ..Options::default() });
        best_ms = best_ms.min(started.elapsed().as_millis());
        last = Some(report);
    }
    let report = last.expect("at least one run");
    let (kept, suppressed, stale) = apply_baseline(report.findings, &baseline);
    let files_per_sec = report.files_scanned as f64 / (best_ms.max(1) as f64 / 1000.0);

    println!(
        "lint: {} files {} fns {} edges, fixpoint x{}, {} roots -> {} reachable, \
         {} CFG block(s) in {} ms, {} pool site(s)/{} tracked, {} DFA transition(s), \
         {} finding(s) ({} suppressed, {} stale)  best {} ms  {:.0} files/s",
        report.files_scanned,
        report.functions,
        report.call_edges,
        report.fixpoint_iterations,
        report.reactor_roots,
        report.reactor_reachable,
        report.cfg_blocks,
        report.dataflow_ms,
        report.pool_sites,
        report.pool_tracked,
        report.dfa_transitions,
        kept.len(),
        suppressed,
        stale.len(),
        best_ms,
        files_per_sec,
    );
    for f in &kept {
        eprintln!("  non-baselined: {}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    for (rule, file, message) in &stale {
        eprintln!("  stale baseline entry: [{rule}] {file}: {message}");
    }

    let doc = format!(
        "{{\n  \"schema\": \"oftt-bench-lint-v2\",\n  \
         \"runs\": {runs},\n  \
         \"files_scanned\": {},\n  \
         \"functions\": {},\n  \
         \"call_edges\": {},\n  \
         \"fixpoint_iterations\": {},\n  \
         \"reactor_roots\": {},\n  \
         \"reactor_reachable\": {},\n  \
         \"cfg_blocks\": {},\n  \
         \"dataflow_ms\": {},\n  \
         \"pool_sites\": {},\n  \
         \"pool_tracked\": {},\n  \
         \"dfa_transitions\": {},\n  \
         \"findings\": {},\n  \
         \"suppressed\": {},\n  \
         \"stale_baseline\": {},\n  \
         \"elapsed_ms\": {best_ms},\n  \
         \"files_per_sec\": {files_per_sec:.0}\n}}\n",
        report.files_scanned,
        report.functions,
        report.call_edges,
        report.fixpoint_iterations,
        report.reactor_roots,
        report.reactor_reachable,
        report.cfg_blocks,
        report.dataflow_ms,
        report.pool_sites,
        report.pool_tracked,
        report.dfa_transitions,
        kept.len(),
        suppressed,
        stale.len(),
    );
    std::fs::write(&out_path, doc).expect("write bench artifact");
    println!("wrote {out_path}");
}
