//! Emits `BENCH_wire.json`: the socket runtime's three headline numbers.
//!
//! ```text
//! cargo run -p bench --release --bin bench-wire      # writes BENCH_wire.json
//! BENCH_SAMPLES=200 BENCH_KILLS=5 ... bench-wire     # reduced run
//! BENCH_OUT=/tmp/w.json ... bench-wire               # alternate path
//! ```
//!
//! 1. **rtt** — p50/p99 round-trip latency of a 256-byte frame between
//!    two in-process [`WireNet`]s over loopback TCP (codec + supervisor +
//!    socket both ways).
//! 2. **checkpoint** — the full OFTT pair over sockets with the bench's
//!    acceptance workload (10k designated variables, 64 B each, 1% write
//!    locality per checkpoint period), measuring sustained checkpoint and
//!    ack throughput. The write queue must never shed a data frame.
//! 3. **failover** — real `oftt-node` process pairs; each cycle forms a
//!    pair, establishes checkpoint flow, SIGKILLs the primary, and times
//!    the survivor's promotion. Every cycle uses fresh processes and
//!    fresh ports so each kill is an independent sample.

use std::sync::Arc;
use std::time::{Duration, Instant};

use comsim::buf::Bytes;
use ds_net::endpoint::{Endpoint, NodeId};
use ds_net::message::Envelope;
use ds_net::process::{Process, ProcessEnv, ProcessEnvExt};
use oftt::config::{engine_endpoint, OfttConfig, Pair, RecoveryRule};
use oftt::engine::{Engine, EngineProbe};
use oftt::ftim::{FtProcess, FtimProbe};
use oftt::role::Role;
use oftt_wire::app::{LoadApp, LoadConfig, LoadView};
use oftt_wire::codec::{WireCodec, WirePing};
use oftt_wire::harness::{free_port, pair_config, write_config, ChildNode};
use oftt_wire::runtime::WireNet;
use oftt_wire::supervisor::WireConfig;
use parking_lot::Mutex;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

fn wait_for(cond: impl Fn() -> bool, timeout: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn wire_config(node: NodeId, listen_port: u16, peer: NodeId, peer_port: u16) -> WireConfig {
    let mut config = WireConfig::loopback(node);
    config.listen = format!("127.0.0.1:{listen_port}");
    config.peers = vec![(peer, format!("127.0.0.1:{peer_port}"))];
    config.seed = 7 + u64::from(node.0);
    config
}

// ---------------------------------------------------------------- phase 1

/// Sends one ping at a time and records each round trip's wall latency.
struct TimedPinger {
    target: Endpoint,
    limit: usize,
    sent_at: Instant,
    rtts_ns: Arc<Mutex<Vec<u64>>>,
}

impl Process for TimedPinger {
    fn on_start(&mut self, env: &mut dyn ProcessEnv) {
        self.sent_at = Instant::now();
        env.send_msg(self.target.clone(), WirePing { seq: 0, pad: Bytes::from(vec![0u8; 256]) });
    }
    fn on_message(&mut self, envelope: Envelope, env: &mut dyn ProcessEnv) {
        if let Some(ping) = envelope.body.downcast_ref::<WirePing>() {
            let rtt = self.sent_at.elapsed().as_nanos() as u64;
            let mut rtts = self.rtts_ns.lock();
            rtts.push(rtt);
            if rtts.len() < self.limit {
                drop(rtts);
                self.sent_at = Instant::now();
                env.send_msg(
                    self.target.clone(),
                    WirePing { seq: ping.seq + 1, pad: Bytes::from(vec![0u8; 256]) },
                );
            }
        }
    }
}

struct Echo;

impl Process for Echo {
    fn on_message(&mut self, envelope: Envelope, env: &mut dyn ProcessEnv) {
        if let Some(ping) = envelope.body.downcast_ref::<WirePing>() {
            env.send_msg(envelope.from.clone(), ping.clone());
        }
    }
}

struct RttStats {
    samples: usize,
    p50_us: f64,
    p99_us: f64,
}

fn bench_rtt(samples: usize) -> RttStats {
    let (na, nb) = (NodeId(0), NodeId(1));
    let (port_a, port_b) = (free_port(), free_port());
    let codec = Arc::new(WireCodec::standard());
    let mut a =
        WireNet::new(1, wire_config(na, port_a, nb, port_b), Arc::clone(&codec)).expect("net a");
    let mut b = WireNet::new(2, wire_config(nb, port_b, na, port_a), codec).expect("net b");

    let rtts = Arc::new(Mutex::new(Vec::with_capacity(samples)));
    {
        let rtts = Arc::clone(&rtts);
        let target = Endpoint::new(nb, "echo");
        a.register(
            Endpoint::new(na, "pinger"),
            Box::new(move || {
                Box::new(TimedPinger {
                    target: target.clone(),
                    limit: samples,
                    sent_at: Instant::now(),
                    rtts_ns: rtts.clone(),
                })
            }),
        );
    }
    b.register(Endpoint::new(nb, "echo"), Box::new(|| Box::new(Echo)));
    assert!(
        wait_for(|| a.connected(nb) && b.connected(na), Duration::from_secs(10)),
        "rtt phase: link must form"
    );
    b.start(&Endpoint::new(nb, "echo"));
    a.start(&Endpoint::new(na, "pinger"));
    assert!(
        wait_for(|| rtts.lock().len() >= samples, Duration::from_secs(120)),
        "rtt phase: volleys must complete (got {})",
        rtts.lock().len()
    );
    a.shutdown();
    b.shutdown();

    let mut sorted = rtts.lock().clone();
    sorted.sort_unstable();
    RttStats {
        samples,
        p50_us: percentile(&sorted, 50.0) as f64 / 1000.0,
        p99_us: percentile(&sorted, 99.0) as f64 / 1000.0,
    }
}

// ---------------------------------------------------------------- phase 2

struct CkptStats {
    vars: usize,
    var_bytes: usize,
    dirty_pct: f64,
    duration_ms: u64,
    ckpts_acked: u64,
    ckpts_per_sec: f64,
    ckpt_bytes_per_sec: f64,
    backpressure_drops: u64,
    heartbeats_shed: u64,
}

struct BenchNode {
    net: WireNet,
    engine: Arc<Mutex<EngineProbe>>,
    ftim: Arc<Mutex<FtimProbe>>,
    view: Arc<Mutex<LoadView>>,
}

fn bench_node(
    node: NodeId,
    listen_port: u16,
    peer: NodeId,
    peer_port: u16,
    load: LoadConfig,
) -> BenchNode {
    let mut config = OfttConfig::new(Pair::new(node.min(peer), node.max(peer)));
    config.heartbeat_period = ds_sim::prelude::SimDuration::from_millis(50);
    config.component_timeout = ds_sim::prelude::SimDuration::from_millis(400);
    config.peer_timeout = ds_sim::prelude::SimDuration::from_millis(400);
    config.fail_safe_timeout = ds_sim::prelude::SimDuration::from_millis(250);
    config.checkpoint_period = ds_sim::prelude::SimDuration::from_millis(100);
    config.startup_timeout = ds_sim::prelude::SimDuration::from_millis(500);

    let mut net = WireNet::new(
        u64::from(node.0) + 40,
        wire_config(node, listen_port, peer, peer_port),
        Arc::new(WireCodec::standard()),
    )
    .expect("wire net");
    let engine = Arc::new(Mutex::new(EngineProbe::default()));
    {
        let engine_config = config.clone();
        let probe = Arc::clone(&engine);
        net.register(
            engine_endpoint(node),
            Box::new(move || Box::new(Engine::new(engine_config.clone(), probe.clone()))),
        );
    }
    let ftim = Arc::new(Mutex::new(FtimProbe::default()));
    let view = Arc::new(Mutex::new(LoadView::default()));
    {
        let ftim = Arc::clone(&ftim);
        let view = Arc::clone(&view);
        net.register(
            Endpoint::new(node, "app"),
            Box::new(move || {
                Box::new(FtProcess::new(
                    config.clone(),
                    RecoveryRule::LocalRestart { max_attempts: 1 },
                    LoadApp::new(load, view.clone()),
                    ftim.clone(),
                ))
            }),
        );
    }
    net.start(&engine_endpoint(node));
    net.start(&Endpoint::new(node, "app"));
    BenchNode { net, engine, ftim, view }
}

fn bench_checkpoint_flow(run_for: Duration) -> CkptStats {
    // The acceptance workload: 10k vars × 64 B, 1% of them rewritten per
    // 100 ms checkpoint period (20 ms ticks × 20 vars = 100 vars/period).
    let load = LoadConfig {
        vars: 10_000,
        var_bytes: 64,
        dirty_per_tick: 20,
        tick_period: Duration::from_millis(20),
    };
    let (na, nb) = (NodeId(0), NodeId(1));
    let (port_a, port_b) = (free_port(), free_port());
    let mut nodes =
        vec![bench_node(na, port_a, nb, port_b, load), bench_node(nb, port_b, na, port_a, load)];
    assert!(
        wait_for(
            || {
                let roles: Vec<_> = nodes.iter().map(|n| n.engine.lock().current_role()).collect();
                matches!(
                    (roles[0], roles[1]),
                    (Some(Role::Primary), Some(Role::Backup))
                        | (Some(Role::Backup), Some(Role::Primary))
                )
            },
            Duration::from_secs(15)
        ),
        "checkpoint phase: pair must form"
    );
    let primary = usize::from(nodes[0].engine.lock().current_role() != Some(Role::Primary));
    assert!(
        wait_for(|| nodes[primary].view.lock().ticks > 5, Duration::from_secs(10)),
        "checkpoint phase: load must start ticking"
    );

    // Measure from a steady-state baseline.
    let base = {
        let p = nodes[primary].ftim.lock();
        (p.ckpts_sent, p.ckpt_bytes_sent, p.last_acked)
    };
    let started = Instant::now();
    std::thread::sleep(run_for);
    let elapsed = started.elapsed();
    let (sent, bytes, acked) = {
        let p = nodes[primary].ftim.lock();
        (p.ckpts_sent - base.0, p.ckpt_bytes_sent - base.1, p.last_acked)
    };
    assert!(acked > base.2, "checkpoint phase: the peer must keep acknowledging");
    let health = nodes[primary].net.health();
    let backpressure_drops: u64 = health.iter().map(|h| h.dropped_frames).sum();
    let heartbeats_shed: u64 = health.iter().map(|h| h.dropped_heartbeats).sum();

    for node in &mut nodes {
        node.net.shutdown();
    }
    let secs = elapsed.as_secs_f64();
    CkptStats {
        vars: load.vars,
        var_bytes: load.var_bytes,
        // 5 ticks per 100 ms checkpoint period × dirty_per_tick vars.
        dirty_pct: 100.0 * (load.dirty_per_tick as f64 * 5.0) / load.vars as f64,
        duration_ms: elapsed.as_millis() as u64,
        ckpts_acked: sent,
        ckpts_per_sec: sent as f64 / secs,
        ckpt_bytes_per_sec: bytes as f64 / secs,
        backpressure_drops,
        heartbeats_shed,
    }
}

// ---------------------------------------------------------------- phase 3

struct FailoverStats {
    kills: usize,
    detection_ms: Vec<u64>,
}

fn one_kill_cycle(dir: &std::path::Path, cycle: usize) -> u64 {
    let (na, nb) = (NodeId(0), NodeId(1));
    let (port_a, port_b) = (free_port(), free_port());
    let seed = 1000 + cycle as u64 * 2;
    let config_a = write_config(
        dir,
        &format!("a{cycle}.toml"),
        &pair_config(na, port_a, nb, port_b, na, 200, seed),
    );
    let config_b = write_config(
        dir,
        &format!("b{cycle}.toml"),
        &pair_config(nb, port_b, na, port_a, na, 200, seed + 1),
    );
    let mut children = vec![
        ChildNode::spawn(na, &config_a).expect("spawn a"),
        ChildNode::spawn(nb, &config_b).expect("spawn b"),
    ];
    for child in &children {
        assert!(
            child.wait_for_line(|l| l.starts_with("READY"), Duration::from_secs(10)).is_some(),
            "cycle {cycle}: node never READY"
        );
    }
    let deadline = Duration::from_secs(15);
    let primary = if children[0].wait_for_line(|l| l.contains("role=primary"), deadline).is_some() {
        0
    } else {
        assert!(
            children[1].find_line(|l| l.contains("role=primary")).is_some(),
            "cycle {cycle}: no primary"
        );
        1
    };
    let backup = 1 - primary;
    assert!(
        children[backup].wait_for_line(|l| l.contains("role=backup"), deadline).is_some(),
        "cycle {cycle}: no backup"
    );
    assert!(
        children[backup]
            .wait_for_line(|l| l.contains("ckpt installed"), Duration::from_secs(10))
            .is_some(),
        "cycle {cycle}: checkpoint flow never established"
    );

    let killed_at = Instant::now();
    children[primary].kill();
    assert!(
        children[backup]
            .wait_for_line(|l| l.contains("role=primary"), Duration::from_secs(10))
            .is_some(),
        "cycle {cycle}: backup never promoted"
    );
    let detection = killed_at.elapsed().as_millis() as u64;
    children[backup].kill();
    detection
}

fn bench_failover(kills: usize) -> FailoverStats {
    let dir = std::env::temp_dir().join(format!("bench-wire-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut detection_ms = Vec::with_capacity(kills);
    for cycle in 0..kills {
        let ms = one_kill_cycle(&dir, cycle);
        println!("bench-wire: kill {:>2}/{kills}: promotion in {ms} ms", cycle + 1);
        detection_ms.push(ms);
    }
    let _ = std::fs::remove_dir_all(&dir);
    FailoverStats { kills, detection_ms }
}

// ------------------------------------------------------------------ main

fn main() {
    let samples = env_usize("BENCH_SAMPLES", 2000);
    let kills = env_usize("BENCH_KILLS", 20);
    let ckpt_secs = env_usize("BENCH_CKPT_SECS", 3);
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_wire.json".into());

    println!("bench-wire: phase 1/3 — frame round-trip latency ({samples} volleys)");
    let rtt = bench_rtt(samples);
    println!(
        "bench-wire: rtt p50={:.1}us p99={:.1}us over {} volleys",
        rtt.p50_us, rtt.p99_us, rtt.samples
    );

    println!("bench-wire: phase 2/3 — checkpoint throughput over sockets ({ckpt_secs}s)");
    let ckpt = bench_checkpoint_flow(Duration::from_secs(ckpt_secs as u64));
    println!(
        "bench-wire: {} vars @ {:.1}% locality: {:.1} ckpts/s, {:.0} B/s, {} data frames shed",
        ckpt.vars,
        ckpt.dirty_pct,
        ckpt.ckpts_per_sec,
        ckpt.ckpt_bytes_per_sec,
        ckpt.backpressure_drops
    );

    println!("bench-wire: phase 3/3 — failover under SIGKILL ({kills} kills)");
    let failover = bench_failover(kills);
    let mut sorted = failover.detection_ms.clone();
    sorted.sort_unstable();
    let (p50, p99, max) =
        (percentile(&sorted, 50.0), percentile(&sorted, 99.0), *sorted.last().unwrap_or(&0));
    println!(
        "bench-wire: failover p50={p50}ms p99={p99}ms max={max}ms over {} kills",
        failover.kills
    );

    let doc = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"oftt-bench-wire-v1\",\n",
            "  \"rtt\": {{\n",
            "    \"samples\": {},\n",
            "    \"p50_us\": {:.2},\n",
            "    \"p99_us\": {:.2}\n",
            "  }},\n",
            "  \"checkpoint\": {{\n",
            "    \"vars\": {},\n",
            "    \"var_bytes\": {},\n",
            "    \"dirty_pct\": {:.2},\n",
            "    \"duration_ms\": {},\n",
            "    \"ckpts_acked\": {},\n",
            "    \"ckpts_per_sec\": {:.2},\n",
            "    \"ckpt_bytes_per_sec\": {:.0},\n",
            "    \"backpressure_drops\": {},\n",
            "    \"heartbeats_shed\": {}\n",
            "  }},\n",
            "  \"failover\": {{\n",
            "    \"kills\": {},\n",
            "    \"detection_ms_p50\": {},\n",
            "    \"detection_ms_p99\": {},\n",
            "    \"detection_ms_max\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        rtt.samples,
        rtt.p50_us,
        rtt.p99_us,
        ckpt.vars,
        ckpt.var_bytes,
        ckpt.dirty_pct,
        ckpt.duration_ms,
        ckpt.ckpts_acked,
        ckpt.ckpts_per_sec,
        ckpt.ckpt_bytes_per_sec,
        ckpt.backpressure_drops,
        ckpt.heartbeats_shed,
        failover.kills,
        p50,
        p99,
        max,
    );
    std::fs::write(&out_path, &doc).expect("write bench artifact");
    println!("wrote {out_path}");
}
