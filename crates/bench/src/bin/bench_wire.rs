//! Emits `BENCH_wire.json` (schema `oftt-bench-wire-v2`): the socket
//! runtime's headline numbers.
//!
//! ```text
//! cargo run -p bench --release --bin bench-wire      # writes BENCH_wire.json
//! BENCH_SAMPLES=200 BENCH_KILLS=5 ... bench-wire     # reduced run
//! BENCH_SAT_CONNS=64 BENCH_SAT_SECS=1 ... bench-wire # reduced saturation
//! BENCH_OUT=/tmp/w.json ... bench-wire               # alternate path
//! ```
//!
//! 1. **rtt** — p50/p99 round-trip latency of a 256-byte frame between
//!    two in-process [`WireNet`]s over loopback TCP (codec + supervisor +
//!    socket both ways).
//! 2. **checkpoint** — the full OFTT pair over sockets with the bench's
//!    acceptance workload (10k designated variables, 64 B each, 1% write
//!    locality per checkpoint period), measuring sustained checkpoint and
//!    ack throughput at the protocol's own pace. This is the latency row;
//!    the write queue must never shed a data frame.
//! 3. **checkpoint_stream** — one simulated application streaming
//!    acceptance-sized delta checkpoints through the reactor at max rate
//!    with a send window, acked per checkpoint: the single-link ceiling.
//! 4. **saturation** — hundreds of simulated applications doing the same
//!    concurrently against one supervisor with a fixed reactor thread
//!    count: aggregate ckpts/s, bytes/s, and p50/p99 ack RTT under load.
//! 5. **digest** — the Fletcher-32 variable digest, reference
//!    byte-at-a-time loop vs. the chunked production path, in MB/s.
//! 6. **failover** — real `oftt-node` process pairs; each cycle forms a
//!    pair, establishes checkpoint flow, SIGKILLs the primary, and times
//!    the survivor's promotion. Every cycle uses fresh processes and
//!    fresh ports so each kill is an independent sample.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use comsim::buf::Bytes;
use ds_net::endpoint::{Endpoint, NodeId};
use ds_net::message::Envelope;
use ds_net::process::{Process, ProcessEnv, ProcessEnvExt};
use ds_net::transport::TransportEvent;
use ds_sim::prelude::SimTime;
use ds_sim::trace::TraceCategory;
use oftt::checkpoint::{fold_digests, var_digest, var_digest_reference};
use oftt::checkpoint::{Checkpoint, CheckpointPayload, VarSet};
use oftt::config::{engine_endpoint, OfttConfig, Pair, RecoveryRule};
use oftt::engine::{Engine, EngineProbe};
use oftt::ftim::{FtProcess, FtimProbe};
use oftt::messages::FtimPeerMsg;
use oftt::role::Role;
use oftt_wire::app::{LoadApp, LoadConfig, LoadView};
use oftt_wire::codec::{WireCodec, WirePing};
use oftt_wire::frame::FrameClass;
use oftt_wire::harness::{free_port, pair_config, write_config, ChildNode, RawPeer};
use oftt_wire::runtime::WireNet;
use oftt_wire::supervisor::{Supervisor, WireConfig, WireHandler};
use parking_lot::Mutex;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

fn wait_for(cond: impl Fn() -> bool, timeout: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn wire_config(node: NodeId, listen_port: u16, peer: NodeId, peer_port: u16) -> WireConfig {
    let mut config = WireConfig::loopback(node);
    config.listen = format!("127.0.0.1:{listen_port}");
    config.peers = vec![(peer, format!("127.0.0.1:{peer_port}"))];
    config.seed = 7 + u64::from(node.0);
    config
}

// ---------------------------------------------------------------- phase 1

/// Sends one ping at a time and records each round trip's wall latency.
struct TimedPinger {
    target: Endpoint,
    limit: usize,
    sent_at: Instant,
    rtts_ns: Arc<Mutex<Vec<u64>>>,
}

impl Process for TimedPinger {
    fn on_start(&mut self, env: &mut dyn ProcessEnv) {
        self.sent_at = Instant::now();
        env.send_msg(self.target.clone(), WirePing { seq: 0, pad: Bytes::from(vec![0u8; 256]) });
    }
    fn on_message(&mut self, envelope: Envelope, env: &mut dyn ProcessEnv) {
        if let Some(ping) = envelope.body.downcast_ref::<WirePing>() {
            let rtt = self.sent_at.elapsed().as_nanos() as u64;
            let mut rtts = self.rtts_ns.lock();
            rtts.push(rtt);
            if rtts.len() < self.limit {
                drop(rtts);
                self.sent_at = Instant::now();
                env.send_msg(
                    self.target.clone(),
                    WirePing { seq: ping.seq + 1, pad: Bytes::from(vec![0u8; 256]) },
                );
            }
        }
    }
}

struct Echo;

impl Process for Echo {
    fn on_message(&mut self, envelope: Envelope, env: &mut dyn ProcessEnv) {
        if let Some(ping) = envelope.body.downcast_ref::<WirePing>() {
            env.send_msg(envelope.from.clone(), ping.clone());
        }
    }
}

struct RttStats {
    samples: usize,
    p50_us: f64,
    p99_us: f64,
}

fn bench_rtt(samples: usize) -> RttStats {
    let (na, nb) = (NodeId(0), NodeId(1));
    let (port_a, port_b) = (free_port(), free_port());
    let codec = Arc::new(WireCodec::standard());
    let mut a =
        WireNet::new(1, wire_config(na, port_a, nb, port_b), Arc::clone(&codec)).expect("net a");
    let mut b = WireNet::new(2, wire_config(nb, port_b, na, port_a), codec).expect("net b");

    let rtts = Arc::new(Mutex::new(Vec::with_capacity(samples)));
    {
        let rtts = Arc::clone(&rtts);
        let target = Endpoint::new(nb, "echo");
        a.register(
            Endpoint::new(na, "pinger"),
            Box::new(move || {
                Box::new(TimedPinger {
                    target: target.clone(),
                    limit: samples,
                    sent_at: Instant::now(),
                    rtts_ns: rtts.clone(),
                })
            }),
        );
    }
    b.register(Endpoint::new(nb, "echo"), Box::new(|| Box::new(Echo)));
    assert!(
        wait_for(|| a.connected(nb) && b.connected(na), Duration::from_secs(10)),
        "rtt phase: link must form"
    );
    b.start(&Endpoint::new(nb, "echo"));
    a.start(&Endpoint::new(na, "pinger"));
    assert!(
        wait_for(|| rtts.lock().len() >= samples, Duration::from_secs(120)),
        "rtt phase: volleys must complete (got {})",
        rtts.lock().len()
    );
    a.shutdown();
    b.shutdown();

    let mut sorted = rtts.lock().clone();
    sorted.sort_unstable();
    RttStats {
        samples,
        p50_us: percentile(&sorted, 50.0) as f64 / 1000.0,
        p99_us: percentile(&sorted, 99.0) as f64 / 1000.0,
    }
}

// ---------------------------------------------------------------- phase 2

struct CkptStats {
    vars: usize,
    var_bytes: usize,
    dirty_pct: f64,
    duration_ms: u64,
    ckpts_acked: u64,
    ckpts_per_sec: f64,
    ckpt_bytes_per_sec: f64,
    backpressure_drops: u64,
    heartbeats_shed: u64,
}

struct BenchNode {
    net: WireNet,
    engine: Arc<Mutex<EngineProbe>>,
    ftim: Arc<Mutex<FtimProbe>>,
    view: Arc<Mutex<LoadView>>,
}

fn bench_node(
    node: NodeId,
    listen_port: u16,
    peer: NodeId,
    peer_port: u16,
    load: LoadConfig,
) -> BenchNode {
    let mut config = OfttConfig::new(Pair::new(node.min(peer), node.max(peer)));
    config.heartbeat_period = ds_sim::prelude::SimDuration::from_millis(50);
    config.component_timeout = ds_sim::prelude::SimDuration::from_millis(400);
    config.peer_timeout = ds_sim::prelude::SimDuration::from_millis(400);
    config.fail_safe_timeout = ds_sim::prelude::SimDuration::from_millis(250);
    config.checkpoint_period = ds_sim::prelude::SimDuration::from_millis(100);
    config.startup_timeout = ds_sim::prelude::SimDuration::from_millis(500);

    let mut net = WireNet::new(
        u64::from(node.0) + 40,
        wire_config(node, listen_port, peer, peer_port),
        Arc::new(WireCodec::standard()),
    )
    .expect("wire net");
    let engine = Arc::new(Mutex::new(EngineProbe::default()));
    {
        let engine_config = config.clone();
        let probe = Arc::clone(&engine);
        net.register(
            engine_endpoint(node),
            Box::new(move || Box::new(Engine::new(engine_config.clone(), probe.clone()))),
        );
    }
    let ftim = Arc::new(Mutex::new(FtimProbe::default()));
    let view = Arc::new(Mutex::new(LoadView::default()));
    {
        let ftim = Arc::clone(&ftim);
        let view = Arc::clone(&view);
        net.register(
            Endpoint::new(node, "app"),
            Box::new(move || {
                Box::new(FtProcess::new(
                    config.clone(),
                    RecoveryRule::LocalRestart { max_attempts: 1 },
                    LoadApp::new(load, view.clone()),
                    ftim.clone(),
                ))
            }),
        );
    }
    net.start(&engine_endpoint(node));
    net.start(&Endpoint::new(node, "app"));
    BenchNode { net, engine, ftim, view }
}

fn bench_checkpoint_flow(run_for: Duration) -> CkptStats {
    // The acceptance workload: 10k vars × 64 B, 1% of them rewritten per
    // 100 ms checkpoint period (20 ms ticks × 20 vars = 100 vars/period).
    let load = LoadConfig {
        vars: 10_000,
        var_bytes: 64,
        dirty_per_tick: 20,
        tick_period: Duration::from_millis(20),
    };
    let (na, nb) = (NodeId(0), NodeId(1));
    let (port_a, port_b) = (free_port(), free_port());
    let mut nodes =
        vec![bench_node(na, port_a, nb, port_b, load), bench_node(nb, port_b, na, port_a, load)];
    assert!(
        wait_for(
            || {
                let roles: Vec<_> = nodes.iter().map(|n| n.engine.lock().current_role()).collect();
                matches!(
                    (roles[0], roles[1]),
                    (Some(Role::Primary), Some(Role::Backup))
                        | (Some(Role::Backup), Some(Role::Primary))
                )
            },
            Duration::from_secs(15)
        ),
        "checkpoint phase: pair must form"
    );
    let primary = usize::from(nodes[0].engine.lock().current_role() != Some(Role::Primary));
    assert!(
        wait_for(|| nodes[primary].view.lock().ticks > 5, Duration::from_secs(10)),
        "checkpoint phase: load must start ticking"
    );

    // Measure from a steady-state baseline.
    let base = {
        let p = nodes[primary].ftim.lock();
        (p.ckpts_sent, p.ckpt_bytes_sent, p.last_acked)
    };
    let started = Instant::now();
    std::thread::sleep(run_for);
    let elapsed = started.elapsed();
    let (sent, bytes, acked) = {
        let p = nodes[primary].ftim.lock();
        (p.ckpts_sent - base.0, p.ckpt_bytes_sent - base.1, p.last_acked)
    };
    assert!(acked > base.2, "checkpoint phase: the peer must keep acknowledging");
    let health = nodes[primary].net.health();
    let backpressure_drops: u64 = health.iter().map(|h| h.dropped_frames).sum();
    let heartbeats_shed: u64 = health.iter().map(|h| h.dropped_heartbeats).sum();

    for node in &mut nodes {
        node.net.shutdown();
    }
    let secs = elapsed.as_secs_f64();
    CkptStats {
        vars: load.vars,
        var_bytes: load.var_bytes,
        // 5 ticks per 100 ms checkpoint period × dirty_per_tick vars.
        dirty_pct: 100.0 * (load.dirty_per_tick as f64 * 5.0) / load.vars as f64,
        duration_ms: elapsed.as_millis() as u64,
        ckpts_acked: sent,
        ckpts_per_sec: sent as f64 / secs,
        ckpt_bytes_per_sec: bytes as f64 / secs,
        backpressure_drops,
        heartbeats_shed,
    }
}

// ----------------------------------------------------------- phases 3 & 4

struct SatStats {
    conns: usize,
    window: usize,
    io_threads: usize,
    ckpt_wire_bytes: u64,
    duration_ms: u64,
    ckpts_acked: u64,
    ckpts_per_sec: f64,
    bytes_per_sec: f64,
    rtt_p50_us: f64,
    rtt_p99_us: f64,
    protocol_errors: u64,
    pool_hit_pct: f64,
}

/// Acks every decoded checkpoint straight back to its sender.
struct AckHandler {
    sup: OnceLock<Arc<Supervisor>>,
    decode_misses: AtomicU64,
}

impl WireHandler for AckHandler {
    fn deliver(&self, envelope: Envelope) {
        let seq = match envelope.body.downcast_ref::<FtimPeerMsg>() {
            Some(FtimPeerMsg::Ckpt(ckpt)) => ckpt.seq,
            _ => {
                self.decode_misses.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let from = envelope.from.node;
        if let Some(sup) = self.sup.get() {
            let ack = Envelope::new(
                Endpoint::new(NodeId(0), "ack"),
                Endpoint::new(from, "app"),
                WirePing { seq, pad: Bytes::from(Vec::new()) },
            );
            sup.send_envelope(from, &ack);
        }
    }
    fn peer_event(&self, _event: TransportEvent) {}
    fn record(&self, _category: TraceCategory, _message: String) {}
}

#[derive(Default)]
struct ClientResult {
    acked: u64,
    rtts_ns: Vec<u64>,
    errors: u64,
}

/// One simulated application: stream windowed delta checkpoints at max
/// rate, timing each checkpoint's ack. Acks come back in send order
/// (per-link FIFO end to end), so a timestamp queue matches them up.
fn stream_client(
    idx: usize,
    addr: &str,
    codec: &WireCodec,
    stop: &AtomicBool,
    window: usize,
    vars: usize,
    var_bytes: usize,
) -> ClientResult {
    let node = NodeId(1 + idx as u16);
    let mut result = ClientResult::default();
    let mut peer = match RawPeer::connect(addr, node, 1) {
        Ok(peer) => peer,
        Err(_) => {
            result.errors += 1;
            return result;
        }
    };
    peer.set_read_timeout(Some(Duration::from_millis(200)));

    let mut set = VarSet::new();
    for v in 0..vars {
        set.insert(format!("v{v:04}"), Bytes::from(vec![idx as u8; var_bytes]));
    }
    let crc = fold_digests(set.iter().map(|(n, b)| var_digest(n, b.as_slice())));
    let mut seq = 0u64;
    let mut in_flight: VecDeque<Instant> = VecDeque::with_capacity(window);
    let send_next = |peer: &mut RawPeer, seq: u64| -> bool {
        let ckpt = Checkpoint::with_crc(
            1,
            seq,
            SimTime::from_millis(seq),
            CheckpointPayload::Delta(set.clone()),
            crc,
        );
        let envelope = Envelope::new(
            Endpoint::new(node, "app"),
            Endpoint::new(NodeId(0), "ckpt"),
            FtimPeerMsg::Ckpt(ckpt),
        );
        peer.send_envelope(codec, &envelope).is_ok()
    };

    for _ in 0..window {
        if !send_next(&mut peer, seq) {
            result.errors += 1;
            return result;
        }
        in_flight.push_back(Instant::now());
        seq += 1;
    }
    while !stop.load(Ordering::Relaxed) {
        match peer.recv() {
            Ok(frame) if frame.header.class == FrameClass::Data => {
                if let Some(sent_at) = in_flight.pop_front() {
                    result.rtts_ns.push(sent_at.elapsed().as_nanos() as u64);
                }
                result.acked += 1;
                if !send_next(&mut peer, seq) {
                    result.errors += 1;
                    break;
                }
                in_flight.push_back(Instant::now());
                seq += 1;
            }
            Ok(_) => {} // heartbeat or duplicate handshake: not an ack
            Err(oftt_wire::frame::ReadError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) => {}
            Err(_) => {
                result.errors += 1;
                break;
            }
        }
    }
    result
}

/// `conns` windowed checkpoint streams against one supervisor with a
/// fixed reactor thread count. With `conns == 1` this is the single-link
/// ceiling (the `checkpoint_stream` cell); with hundreds it is the
/// saturation cell.
fn bench_saturation(conns: usize, window: usize, io_threads: usize, run_for: Duration) -> SatStats {
    // Acceptance-sized delta: 1% of 10k vars x 64 B per checkpoint.
    let (vars, var_bytes) = (100, 64);
    let codec = Arc::new(WireCodec::standard());
    let handler = Arc::new(AckHandler { sup: OnceLock::new(), decode_misses: AtomicU64::new(0) });
    let mut config = WireConfig::loopback(NodeId(0));
    config.accept_unknown = true;
    config.io_threads = io_threads;
    config.queue_limit = 4 * window.max(64);
    let sup = Arc::new(
        Supervisor::start(config, Arc::clone(&codec), handler.clone()).expect("supervisor"),
    );
    let _ = handler.sup.set(Arc::clone(&sup));
    let addr = sup.local_addr().to_string();

    // The wire size of one checkpoint, for the bytes/s aggregate.
    let mut sample = VarSet::new();
    for v in 0..vars {
        sample.insert(format!("v{v:04}"), Bytes::from(vec![0u8; var_bytes]));
    }
    let ckpt_wire_bytes =
        Checkpoint::new(1, 0, SimTime::from_millis(0), CheckpointPayload::Delta(sample))
            .wire_size();

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let clients: Vec<_> = (0..conns)
        .map(|idx| {
            let addr = addr.clone();
            let codec = Arc::clone(&codec);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                stream_client(idx, &addr, &codec, &stop, window, vars, var_bytes)
            })
        })
        .collect();
    std::thread::sleep(run_for);
    stop.store(true, Ordering::SeqCst);
    let elapsed = started.elapsed();

    let mut acked = 0u64;
    let mut errors = 0u64;
    let mut rtts: Vec<u64> = Vec::new();
    for client in clients {
        let result = client.join().expect("client thread");
        acked += result.acked;
        errors += result.errors;
        rtts.extend(result.rtts_ns);
    }
    // Backpressure sheds are protocol errors here (the bounded queues are
    // sized for the window); frames purged when a client hangs up at the
    // end of the run are not — that loss is the disconnect itself.
    errors += handler.decode_misses.load(Ordering::Relaxed);
    errors += sup.health().iter().map(|h| h.dropped_frames).sum::<u64>();
    let fixed_threads = sup.io_threads();
    let pool = sup.pool_stats();
    sup.shutdown();

    rtts.sort_unstable();
    let secs = elapsed.as_secs_f64();
    SatStats {
        conns,
        window,
        io_threads: fixed_threads,
        ckpt_wire_bytes,
        duration_ms: elapsed.as_millis() as u64,
        ckpts_acked: acked,
        ckpts_per_sec: acked as f64 / secs,
        bytes_per_sec: acked as f64 * ckpt_wire_bytes as f64 / secs,
        rtt_p50_us: percentile(&rtts, 50.0) as f64 / 1000.0,
        rtt_p99_us: percentile(&rtts, 99.0) as f64 / 1000.0,
        protocol_errors: errors,
        pool_hit_pct: pool.hit_pct(),
    }
}

// ---------------------------------------------------------------- phase 5

struct DigestStats {
    payload_mb: f64,
    reference_mb_per_sec: f64,
    optimized_mb_per_sec: f64,
    speedup: f64,
}

/// The Fletcher-32 variable digest: definitional byte-at-a-time loop
/// vs. the chunked, deferred-modulo production path.
fn bench_digest() -> DigestStats {
    const MB: usize = 1024 * 1024;
    let payload = vec![0xA7u8; 8 * MB];
    let passes = 8usize;
    let total_mb = (passes * payload.len()) as f64 / MB as f64;

    let mut fold = 0u32;
    let started = Instant::now();
    for _ in 0..passes {
        fold ^= var_digest_reference("var", std::hint::black_box(&payload));
    }
    let reference_secs = started.elapsed().as_secs_f64();

    let mut fast_fold = 0u32;
    let started = Instant::now();
    for _ in 0..passes {
        fast_fold ^= var_digest("var", std::hint::black_box(&payload));
    }
    let optimized_secs = started.elapsed().as_secs_f64();
    assert_eq!(fold, fast_fold, "digest paths must agree");

    let reference = total_mb / reference_secs;
    let optimized = total_mb / optimized_secs;
    DigestStats {
        payload_mb: total_mb,
        reference_mb_per_sec: reference,
        optimized_mb_per_sec: optimized,
        speedup: optimized / reference,
    }
}

// ---------------------------------------------------------------- phase 6

struct FailoverStats {
    kills: usize,
    detection_ms: Vec<u64>,
}

fn one_kill_cycle(dir: &std::path::Path, cycle: usize) -> u64 {
    let (na, nb) = (NodeId(0), NodeId(1));
    let (port_a, port_b) = (free_port(), free_port());
    let seed = 1000 + cycle as u64 * 2;
    let config_a = write_config(
        dir,
        &format!("a{cycle}.toml"),
        &pair_config(na, port_a, nb, port_b, na, 200, seed),
    );
    let config_b = write_config(
        dir,
        &format!("b{cycle}.toml"),
        &pair_config(nb, port_b, na, port_a, na, 200, seed + 1),
    );
    let mut children = vec![
        ChildNode::spawn(na, &config_a).expect("spawn a"),
        ChildNode::spawn(nb, &config_b).expect("spawn b"),
    ];
    for child in &children {
        assert!(
            child.wait_for_line(|l| l.starts_with("READY"), Duration::from_secs(10)).is_some(),
            "cycle {cycle}: node never READY"
        );
    }
    let deadline = Duration::from_secs(15);
    let primary = if children[0].wait_for_line(|l| l.contains("role=primary"), deadline).is_some() {
        0
    } else {
        assert!(
            children[1].find_line(|l| l.contains("role=primary")).is_some(),
            "cycle {cycle}: no primary"
        );
        1
    };
    let backup = 1 - primary;
    assert!(
        children[backup].wait_for_line(|l| l.contains("role=backup"), deadline).is_some(),
        "cycle {cycle}: no backup"
    );
    assert!(
        children[backup]
            .wait_for_line(|l| l.contains("ckpt installed"), Duration::from_secs(10))
            .is_some(),
        "cycle {cycle}: checkpoint flow never established"
    );

    let killed_at = Instant::now();
    children[primary].kill();
    assert!(
        children[backup]
            .wait_for_line(|l| l.contains("role=primary"), Duration::from_secs(10))
            .is_some(),
        "cycle {cycle}: backup never promoted"
    );
    let detection = killed_at.elapsed().as_millis() as u64;
    children[backup].kill();
    detection
}

fn bench_failover(kills: usize) -> FailoverStats {
    let dir = std::env::temp_dir().join(format!("bench-wire-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut detection_ms = Vec::with_capacity(kills);
    for cycle in 0..kills {
        let ms = one_kill_cycle(&dir, cycle);
        println!("bench-wire: kill {:>2}/{kills}: promotion in {ms} ms", cycle + 1);
        detection_ms.push(ms);
    }
    let _ = std::fs::remove_dir_all(&dir);
    FailoverStats { kills, detection_ms }
}

// ------------------------------------------------------------------ main

fn sat_json(name: &str, sat: &SatStats) -> String {
    format!(
        concat!(
            "  \"{}\": {{\n",
            "    \"conns\": {},\n",
            "    \"window\": {},\n",
            "    \"io_threads\": {},\n",
            "    \"ckpt_wire_bytes\": {},\n",
            "    \"duration_ms\": {},\n",
            "    \"ckpts_acked\": {},\n",
            "    \"ckpts_per_sec\": {:.2},\n",
            "    \"bytes_per_sec\": {:.0},\n",
            "    \"rtt_p50_us\": {:.2},\n",
            "    \"rtt_p99_us\": {:.2},\n",
            "    \"protocol_errors\": {},\n",
            "    \"pool_hit_pct\": {:.1}\n",
            "  }}"
        ),
        name,
        sat.conns,
        sat.window,
        sat.io_threads,
        sat.ckpt_wire_bytes,
        sat.duration_ms,
        sat.ckpts_acked,
        sat.ckpts_per_sec,
        sat.bytes_per_sec,
        sat.rtt_p50_us,
        sat.rtt_p99_us,
        sat.protocol_errors,
        sat.pool_hit_pct,
    )
}

/// CI's reduced saturation gate: stream + saturation cells only, with
/// the acceptance floor (≥ 100× the paced v1 ship rate) and the
/// zero-protocol-error invariant asserted in-process.
fn saturation_smoke() {
    let conns = env_usize("BENCH_SAT_CONNS", 128);
    let secs = env_usize("BENCH_SAT_SECS", 2);
    const FLOOR_BYTES_PER_SEC: f64 = 7_860_000.0;

    println!("bench-wire: saturation smoke — 1 link at max rate");
    let stream = bench_saturation(1, 32, 2, Duration::from_secs(1));
    println!(
        "bench-wire: stream {:.2} MB/s, ack p50={:.0}us p99={:.0}us, {} protocol errors",
        stream.bytes_per_sec / (1024.0 * 1024.0),
        stream.rtt_p50_us,
        stream.rtt_p99_us,
        stream.protocol_errors
    );
    println!("bench-wire: saturation smoke — {conns} streaming apps ({secs}s)");
    let sat = bench_saturation(conns, 8, 4, Duration::from_secs(secs as u64));
    println!(
        "bench-wire: saturation {:.2} MB/s over {} conns / {} io threads, {} protocol errors",
        sat.bytes_per_sec / (1024.0 * 1024.0),
        sat.conns,
        sat.io_threads,
        sat.protocol_errors
    );

    assert_eq!(sat.io_threads, 4, "reactor thread count must stay fixed under load");
    assert_eq!(
        stream.protocol_errors + sat.protocol_errors,
        0,
        "saturation must complete with zero protocol errors"
    );
    assert!(
        sat.bytes_per_sec >= FLOOR_BYTES_PER_SEC,
        "saturation {:.0} B/s below the {FLOOR_BYTES_PER_SEC:.0} B/s acceptance floor",
        sat.bytes_per_sec
    );
    println!("bench-wire: saturation smoke passed");
}

fn main() {
    if std::env::args().any(|a| a == "--saturation-smoke") {
        saturation_smoke();
        return;
    }
    let samples = env_usize("BENCH_SAMPLES", 2000);
    let kills = env_usize("BENCH_KILLS", 20);
    let ckpt_secs = env_usize("BENCH_CKPT_SECS", 3);
    let sat_conns = env_usize("BENCH_SAT_CONNS", 400);
    let sat_secs = env_usize("BENCH_SAT_SECS", 3);
    let stream_secs = env_usize("BENCH_STREAM_SECS", 2);
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_wire.json".into());

    println!("bench-wire: phase 1/6 — frame round-trip latency ({samples} volleys)");
    let rtt = bench_rtt(samples);
    println!(
        "bench-wire: rtt p50={:.1}us p99={:.1}us over {} volleys",
        rtt.p50_us, rtt.p99_us, rtt.samples
    );

    println!("bench-wire: phase 2/6 — paced checkpoint flow over sockets ({ckpt_secs}s)");
    let ckpt = bench_checkpoint_flow(Duration::from_secs(ckpt_secs as u64));
    println!(
        "bench-wire: {} vars @ {:.1}% locality: {:.1} ckpts/s, {:.0} B/s, {} data frames shed",
        ckpt.vars,
        ckpt.dirty_pct,
        ckpt.ckpts_per_sec,
        ckpt.ckpt_bytes_per_sec,
        ckpt.backpressure_drops
    );

    println!("bench-wire: phase 3/6 — max-rate checkpoint stream, one link ({stream_secs}s)");
    let stream = bench_saturation(1, 32, 2, Duration::from_secs(stream_secs as u64));
    println!(
        "bench-wire: stream {:.0} ckpts/s, {:.2} MB/s, ack p50={:.0}us p99={:.0}us",
        stream.ckpts_per_sec,
        stream.bytes_per_sec / (1024.0 * 1024.0),
        stream.rtt_p50_us,
        stream.rtt_p99_us
    );

    println!("bench-wire: phase 4/6 — saturation, {sat_conns} streaming apps ({sat_secs}s)");
    let saturation = bench_saturation(sat_conns, 8, 4, Duration::from_secs(sat_secs as u64));
    println!(
        "bench-wire: saturation {:.0} ckpts/s, {:.2} MB/s over {} conns / {} io threads, \
         ack p50={:.0}us p99={:.0}us, {} protocol errors",
        saturation.ckpts_per_sec,
        saturation.bytes_per_sec / (1024.0 * 1024.0),
        saturation.conns,
        saturation.io_threads,
        saturation.rtt_p50_us,
        saturation.rtt_p99_us,
        saturation.protocol_errors
    );

    println!("bench-wire: phase 5/6 — Fletcher-32 digest micro-bench");
    let digest = bench_digest();
    println!(
        "bench-wire: digest reference {:.0} MB/s, optimized {:.0} MB/s ({:.1}x)",
        digest.reference_mb_per_sec, digest.optimized_mb_per_sec, digest.speedup
    );

    println!("bench-wire: phase 6/6 — failover under SIGKILL ({kills} kills)");
    let failover = bench_failover(kills);
    let mut sorted = failover.detection_ms.clone();
    sorted.sort_unstable();
    let (p50, p99, max) =
        (percentile(&sorted, 50.0), percentile(&sorted, 99.0), *sorted.last().unwrap_or(&0));
    println!(
        "bench-wire: failover p50={p50}ms p99={p99}ms max={max}ms over {} kills",
        failover.kills
    );

    let doc = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"oftt-bench-wire-v2\",\n",
            "  \"rtt\": {{\n",
            "    \"samples\": {},\n",
            "    \"p50_us\": {:.2},\n",
            "    \"p99_us\": {:.2}\n",
            "  }},\n",
            "  \"checkpoint\": {{\n",
            "    \"vars\": {},\n",
            "    \"var_bytes\": {},\n",
            "    \"dirty_pct\": {:.2},\n",
            "    \"duration_ms\": {},\n",
            "    \"ckpts_acked\": {},\n",
            "    \"ckpts_per_sec\": {:.2},\n",
            "    \"ckpt_bytes_per_sec\": {:.0},\n",
            "    \"backpressure_drops\": {},\n",
            "    \"heartbeats_shed\": {}\n",
            "  }},\n",
            "{},\n",
            "{},\n",
            "  \"digest\": {{\n",
            "    \"payload_mb\": {:.0},\n",
            "    \"reference_mb_per_sec\": {:.1},\n",
            "    \"optimized_mb_per_sec\": {:.1},\n",
            "    \"speedup\": {:.2}\n",
            "  }},\n",
            "  \"failover\": {{\n",
            "    \"kills\": {},\n",
            "    \"detection_ms_p50\": {},\n",
            "    \"detection_ms_p99\": {},\n",
            "    \"detection_ms_max\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        rtt.samples,
        rtt.p50_us,
        rtt.p99_us,
        ckpt.vars,
        ckpt.var_bytes,
        ckpt.dirty_pct,
        ckpt.duration_ms,
        ckpt.ckpts_acked,
        ckpt.ckpts_per_sec,
        ckpt.ckpt_bytes_per_sec,
        ckpt.backpressure_drops,
        ckpt.heartbeats_shed,
        sat_json("checkpoint_stream", &stream),
        sat_json("saturation", &saturation),
        digest.payload_mb,
        digest.reference_mb_per_sec,
        digest.optimized_mb_per_sec,
        digest.speedup,
        failover.kills,
        p50,
        p99,
        max,
    );
    std::fs::write(&out_path, &doc).expect("write bench artifact");
    println!("wrote {out_path}");
}
