//! Regenerates every experiment table in EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p bench --release --bin oftt-experiments            # all
//! cargo run -p bench --release --bin oftt-experiments e1 e5 e7   # subset
//! ```

use ds_sim::prelude::{Samples, SimDuration};
use oftt::config::{CheckpointMode, StartupFallback};
use oftt_harness::experiments::{
    run_checkpoint_experiment, run_detection_experiment, run_diverter_experiment,
    run_failure_experiment, run_startup_experiment, CheckpointParams, DetectionParams,
    FailureClass, StartupParams,
};
use oftt_harness::metrics::FailoverAggregate;
use oftt_harness::report::{pct, secs, Table};
use oftt_harness::scenario::ScenarioParams;

const SEEDS: u64 = 10;

fn e1_to_e4() {
    let mut table = Table::new(
        "E1–E4 (paper §4, Fig. 3): failover under the four failure classes — 10 seeds each",
        &[
            "failure class",
            "recovered",
            "detect mean",
            "detect p95",
            "recover mean",
            "recover p95",
            "events lost (mean)",
            "dual-active runs",
        ],
    );
    for class in FailureClass::all() {
        let mut agg = FailoverAggregate::default();
        for seed in 0..SEEDS {
            let params = ScenarioParams { seed: 1000 + seed, ..Default::default() };
            agg.push(&run_failure_experiment(class, &params));
        }
        let mut recovery = std::mem::take(&mut agg.recovery_s);
        let mut detection = std::mem::take(&mut agg.detection_s);
        table.row(&[
            class.label().to_string(),
            format!("{}/{}", agg.recovered, agg.total),
            secs(detection.mean()),
            secs(detection.p95()),
            secs(recovery.mean()),
            secs(recovery.p95()),
            format!("{:.1}", agg.lost.mean()),
            format!("{}", agg.dual_active),
        ]);
    }
    println!("{table}");
}

fn e5() {
    let mut table = Table::new(
        "E5 (paper §2.2.2, refs [10,11]): checkpoint policy vs shipped traffic (60 s primary uptime)",
        &[
            "state",
            "dirty/tick",
            "mode",
            "ckpts",
            "fulls",
            "KB shipped",
            "KB/s",
            "ticks lost at crash",
            "restore ok",
        ],
    );
    let shapes = [
        (64usize, 1024usize, 2usize, "64 KiB"),
        (64, 1024, 64, "64 KiB"),
        (1024, 1024, 8, "1 MiB"),
    ];
    for (vars, bytes, dirty, label) in shapes {
        for (mode, mode_label) in [
            (CheckpointMode::Full, "full"),
            (CheckpointMode::Selective { refresh_every: 64 }, "selective"),
        ] {
            let mut kb = Samples::new();
            let mut lost = Samples::new();
            let mut ckpts = 0;
            let mut fulls = 0;
            let mut ok = 0;
            for seed in 0..SEEDS {
                let outcome = run_checkpoint_experiment(&CheckpointParams {
                    seed: 2000 + seed,
                    var_count: vars,
                    var_bytes: bytes,
                    dirty_per_tick: dirty,
                    mode,
                    period: SimDuration::from_millis(1000),
                });
                kb.push(outcome.bytes_sent as f64 / 1024.0);
                lost.push(outcome.lost.max(0) as f64);
                ckpts += outcome.ckpts_sent;
                fulls += outcome.fulls_sent;
                if outcome.recovered_state_ok {
                    ok += 1;
                }
            }
            table.row(&[
                label.to_string(),
                format!("{dirty}/{vars}"),
                mode_label.to_string(),
                format!("{:.0}", ckpts as f64 / SEEDS as f64),
                format!("{:.0}", fulls as f64 / SEEDS as f64),
                format!("{:.0}", kb.mean()),
                format!("{:.1}", kb.mean() / 60.0),
                format!("{:.1}", lost.mean()),
                format!("{ok}/{SEEDS}"),
            ]);
        }
    }
    println!("{table}");
}

fn e5b() {
    // Figure-style series: state lost at a crash vs checkpoint period.
    let mut table = Table::new(
        "E5b (paper §2.1 'checkpointed … periodically'): state rolled back at a crash vs checkpoint period (selective mode, 10 seeds)",
        &["checkpoint period", "app ticks lost mean (1 tick = 250 ms)", "ticks lost p95", "KB/s shipped"],
    );
    for period_ms in [250u64, 500, 1000, 2000, 4000] {
        let mut lost = Samples::new();
        let mut kbps = Samples::new();
        for seed in 0..SEEDS {
            let outcome = run_checkpoint_experiment(&CheckpointParams {
                seed: 2500 + seed,
                var_count: 64,
                var_bytes: 1024,
                dirty_per_tick: 4,
                mode: CheckpointMode::Selective { refresh_every: 64 },
                period: SimDuration::from_millis(period_ms),
            });
            lost.push(outcome.lost.max(0) as f64);
            kbps.push(outcome.bytes_per_sec / 1024.0);
        }
        table.row(&[
            format!("{period_ms} ms"),
            format!("{:.1}", lost.mean()),
            format!("{:.1}", lost.p95()),
            format!("{:.1}", kbps.mean()),
        ]);
    }
    println!("{table}");
}

fn e6() {
    let mut table = Table::new(
        "E6 (paper §2.2.1): heartbeat/timeout tuning vs detection latency and false switchovers (4 sim-minutes, 10 seeds)",
        &[
            "heartbeat",
            "timeout",
            "link loss",
            "detect mean",
            "detect p95",
            "false switchovers (total)",
        ],
    );
    let grid = [
        (100u64, 400u64, 0.0),
        (250, 1000, 0.0),
        (500, 3000, 0.0),
        (250, 600, 0.10),
        (250, 1000, 0.10),
        (250, 3000, 0.10),
    ];
    for (hb, to, loss) in grid {
        let mut detect = Samples::new();
        let mut false_sw = 0;
        for seed in 0..SEEDS {
            let outcome = run_detection_experiment(&DetectionParams {
                seed: 3000 + seed,
                heartbeat: SimDuration::from_millis(hb),
                timeout: SimDuration::from_millis(to),
                loss,
                inject_fault: true,
            });
            if let Some(d) = outcome.detection_latency {
                detect.push(d.as_secs_f64());
            }
            false_sw += outcome.false_switchovers;
        }
        table.row(&[
            format!("{hb} ms"),
            format!("{to} ms"),
            pct(loss),
            secs(detect.mean()),
            secs(detect.p95()),
            format!("{false_sw}"),
        ]);
    }
    println!("{table}");
}

fn e7() {
    let mut table = Table::new(
        "E7 (paper §3.2): startup non-determinism — original single-try logic vs the shipped retry fix (20 seeds)",
        &[
            "stagger (max)",
            "retries",
            "fallback",
            "partitioned",
            "pairs formed",
            "startup shutdowns",
            "dual primary",
            "formation mean",
        ],
    );
    let cases = [
        (8u64, 0u32, StartupFallback::ShutDown, false),
        (8, 5, StartupFallback::ShutDown, false),
        (2, 0, StartupFallback::ShutDown, false),
        (2, 5, StartupFallback::ShutDown, false),
        (1, 2, StartupFallback::ShutDown, true),
        (1, 2, StartupFallback::BecomePrimary, true),
    ];
    for (stagger, retries, fallback, partitioned) in cases {
        let runs = 20;
        let mut formed = 0;
        let mut shutdowns = 0;
        let mut dual = 0;
        let mut formation = Samples::new();
        for seed in 0..runs {
            let outcome = run_startup_experiment(&StartupParams {
                seed: 4000 + seed,
                stagger: SimDuration::from_secs(stagger),
                retries,
                startup_timeout: SimDuration::from_secs(3),
                fallback,
                partitioned,
            });
            if outcome.pair_formed {
                formed += 1;
            }
            shutdowns += outcome.startup_shutdowns;
            if outcome.dual_primary {
                dual += 1;
            }
            if let Some(t) = outcome.formation_time {
                formation.push(t.as_secs_f64());
            }
        }
        table.row(&[
            format!("{stagger} s"),
            format!("{retries}"),
            format!("{fallback:?}"),
            format!("{partitioned}"),
            format!("{formed}/{runs}"),
            format!("{shutdowns}"),
            format!("{dual}/{runs}"),
            if formation.is_empty() { "-".into() } else { secs(formation.mean()) },
        ]);
    }
    println!("{table}");
}

fn e8() {
    let mut table = Table::new(
        "E8 (paper §2.2.3): message diverter across a primary crash — retargeting vs fixed destination (10 seeds)",
        &[
            "diverter",
            "emitted (mean)",
            "processed (mean)",
            "lost (mean)",
            "loss",
            "retransmissions (mean)",
        ],
    );
    for (retarget, label) in [(true, "retargeting (OFTT)"), (false, "fixed destination")] {
        let mut emitted = Samples::new();
        let mut processed = Samples::new();
        let mut lost = Samples::new();
        let mut rtx = Samples::new();
        for seed in 0..SEEDS {
            let outcome = run_diverter_experiment(5000 + seed, retarget);
            emitted.push(outcome.emitted as f64);
            processed.push(outcome.processed as f64);
            lost.push(outcome.lost.max(0) as f64);
            rtx.push(outcome.retransmissions as f64);
        }
        table.row(&[
            label.to_string(),
            format!("{:.0}", emitted.mean()),
            format!("{:.0}", processed.mean()),
            format!("{:.1}", lost.mean()),
            pct(lost.mean() / emitted.mean().max(1.0)),
            format!("{:.0}", rtx.mean()),
        ]);
    }
    println!("{table}");
}

fn e9() {
    use oftt_harness::experiments::run_config_experiment;
    use oftt_harness::scenario_fig1::ReferenceConfig;
    let mut table = Table::new(
        "E9 (paper Fig. 1): reference configurations under primary-node crashes (10 seeds each)",
        &[
            "configuration",
            "pair struck",
            "survived",
            "samples before (mean)",
            "samples after (mean)",
        ],
    );
    for (config, label) in [
        (ReferenceConfig::ControlWithRemoteMonitoring, "1a: remote monitoring"),
        (ReferenceConfig::IntegratedMonitoringAndControl, "1b: integrated"),
    ] {
        for (hit_server, target) in [(true, "OPC server pair"), (false, "monitor pair")] {
            if config == ReferenceConfig::IntegratedMonitoringAndControl && !hit_server {
                continue; // pairs coincide
            }
            let mut survived = 0;
            let mut before = Samples::new();
            let mut after = Samples::new();
            for seed in 0..SEEDS {
                let outcome = run_config_experiment(config, hit_server, 6000 + seed);
                if outcome.survived {
                    survived += 1;
                }
                before.push(outcome.samples_before as f64);
                after.push(outcome.samples_after as f64);
            }
            table.row(&[
                label.to_string(),
                target.to_string(),
                format!("{survived}/{SEEDS}"),
                format!("{:.0}", before.mean()),
                format!("{:.0}", after.mean()),
            ]);
        }
    }
    println!("{table}");
}

fn e10() {
    use oftt_harness::experiments::run_rpc_experiment;
    let mut table = Table::new(
        "E10 (paper §3.3): client-visible outage when an OPC server dies — bare DCOM vs OFTT (10 seeds)",
        &["client", "max sample gap mean", "max sample gap p95", "samples (mean)"],
    );
    for (with_oftt, label) in
        [(false, "bare (pinned, operator restart @30 s)"), (true, "OFTT pair + rebinding client")]
    {
        let mut gaps = Samples::new();
        let mut samples = Samples::new();
        for seed in 0..SEEDS {
            let outcome = run_rpc_experiment(with_oftt, 7000 + seed);
            gaps.push(outcome.max_gap.as_secs_f64());
            samples.push(outcome.samples as f64);
        }
        table.row(&[
            label.to_string(),
            secs(gaps.mean()),
            secs(gaps.p95()),
            format!("{:.0}", samples.mean()),
        ]);
    }
    println!("{table}");
}

fn e11() {
    use oftt_harness::experiments::run_link_redundancy_experiment;
    let mut table = Table::new(
        "E11 (paper §2.1): dual vs single Ethernet under a path failure at t=60 s (repaired t=90 s; 10 seeds)",
        &["pair interconnect", "spurious switchovers", "events lost (mean)", "loss"],
    );
    for (dual, label) in [(true, "dual Ethernet"), (false, "single Ethernet")] {
        let mut spurious = 0;
        let mut lost = Samples::new();
        let mut emitted = Samples::new();
        for seed in 0..SEEDS {
            let outcome = run_link_redundancy_experiment(dual, 8000 + seed);
            if outcome.spurious_switchover {
                spurious += 1;
            }
            lost.push(outcome.lost.max(0) as f64);
            emitted.push(outcome.emitted as f64);
        }
        table.row(&[
            label.to_string(),
            format!("{spurious}/{SEEDS}"),
            format!("{:.1}", lost.mean()),
            pct(lost.mean() / emitted.mean().max(1.0)),
        ]);
    }
    println!("{table}");
}

fn e12() {
    use ds_sim::prelude::SimTime;
    use oftt_harness::experiments::run_availability_experiment;
    let mut table = Table::new(
        "E12 (paper §1 motivation): availability under recurring faults — 1 simulated hour, MTTF 5 min, operator MTTR 2 min (5 seeds)",
        &["system", "availability mean", "availability min", "faults (mean)"],
    );
    let duration = SimTime::from_secs(3_600);
    let mttf = SimDuration::from_secs(300);
    let mttr = SimDuration::from_secs(120);
    for (with_oftt, label) in [(true, "OFTT pair"), (false, "single node + operator repair")] {
        let mut availability = Samples::new();
        let mut faults = Samples::new();
        for seed in 0..5u64 {
            let outcome = run_availability_experiment(with_oftt, 9000 + seed, duration, mttf, mttr);
            availability.push(outcome.availability);
            faults.push(outcome.faults as f64);
        }
        table.row(&[
            label.to_string(),
            pct(availability.mean()),
            pct(availability.min()),
            format!("{:.1}", faults.mean()),
        ]);
    }
    println!("{table}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|s| s.to_lowercase()).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");
    if want("e1") || want("e2") || want("e3") || want("e4") {
        e1_to_e4();
    }
    if want("e5") {
        e5();
        e5b();
    }
    if want("e6") {
        e6();
    }
    if want("e7") {
        e7();
    }
    if want("e8") {
        e8();
    }
    if want("e9") {
        e9();
    }
    if want("e10") {
        e10();
    }
    if want("e11") {
        e11();
    }
    if want("e12") {
        e12();
    }
}
