//! Emits `BENCH_verify.json`: throughput of the oftt-verify exhaustive
//! checker and the trace-refinement pipeline.
//!
//! ```text
//! cargo run -p bench --release --bin bench-verify    # writes BENCH_verify.json
//! BENCH_REFINE_RUNS=50 ... bench-verify              # larger refinement batch
//! BENCH_OUT=/tmp/v.json ... bench-verify             # alternate path
//! ```
//!
//! 1. **cells** — one exhaustive exploration per budget tier
//!    (`crash-and-cut`: one crash plus one partition; `default`: the
//!    CLI's full fault budget), each followed by the fair-lasso search.
//!    Every tier must come back clean: zero violations, no lasso.
//! 2. **refinement** — live `pair-failover` runs are exported, projected
//!    onto the abstract observables, and checked for trace inclusion
//!    against the crash-and-cut graph; the cell reports end-to-end
//!    exports-per-second with zero tolerated failures.

use std::time::Instant;

use oftt::transition::Defects;
use oftt_check::{run_scenario, CheckOptions, ScenarioKind, TraceExport};
use oftt_verify::explore::{explore, Explored};
use oftt_verify::liveness::find_persistent_dual_primary;
use oftt_verify::model::{AbsState, Bounds, Budgets};
use oftt_verify::refine::refine_export;

const STATE_CAP: usize = 10_000_000;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

struct Tier {
    name: &'static str,
    budgets: Budgets,
}

fn tiers() -> Vec<Tier> {
    vec![
        Tier {
            name: "crash-and-cut",
            budgets: Budgets { crashes: 1, partitions: 1, distress: 0, advances: 0, hangs: 0 },
        },
        Tier { name: "default", budgets: Budgets::default() },
    ]
}

fn explore_tier(tier: &Tier, bounds: &Bounds) -> (Explored, bool, u128) {
    let started = Instant::now();
    let ex = explore(AbsState::initial(tier.budgets), bounds, &Defects::default(), STATE_CAP);
    let lasso = find_persistent_dual_primary(&ex).is_some();
    (ex, lasso, started.elapsed().as_millis())
}

fn main() {
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_verify.json".into());
    let refine_runs = env_usize("BENCH_REFINE_RUNS", 20);
    let bounds = Bounds::default();

    let mut cells_json = Vec::new();
    let mut refine_graph: Option<Explored> = None;
    for tier in tiers() {
        let (ex, lasso, elapsed_ms) = explore_tier(&tier, &bounds);
        assert!(!ex.capped, "{}: state cap hit; raise STATE_CAP", tier.name);
        let states_per_sec = ex.states.len() as f64 / (elapsed_ms.max(1) as f64 / 1000.0);
        println!(
            "{:>13}: {:>9} states {:>10} transitions {:>8} reduced  lasso={}  {:>7} ms  {:>9.0} states/s",
            tier.name,
            ex.states.len(),
            ex.transitions,
            ex.por_reduced,
            lasso,
            elapsed_ms,
            states_per_sec,
        );
        cells_json.push(format!(
            r#"    {{ "name": "{}", "states": {}, "transitions": {}, "por_reduced": {}, "truncated": {}, "violations": {}, "lasso": {}, "elapsed_ms": {}, "states_per_sec": {:.0} }}"#,
            tier.name,
            ex.states.len(),
            ex.transitions,
            ex.por_reduced,
            ex.truncated,
            ex.violations.len(),
            lasso,
            elapsed_ms,
            states_per_sec,
        ));
        if tier.name == "crash-and-cut" {
            refine_graph = Some(ex);
        }
    }

    let graph = refine_graph.expect("the crash-and-cut tier always runs");
    let opts = CheckOptions::default();
    let started = Instant::now();
    let mut observations = 0usize;
    let mut failures = 0usize;
    for seed in 1..=refine_runs as u64 {
        let run = run_scenario(ScenarioKind::PairFailover, seed, &[], &opts);
        let export = TraceExport::from_run(ScenarioKind::PairFailover, &opts, &run);
        match refine_export(&graph, &export, &bounds) {
            Ok(n) => observations += n,
            Err(e) => {
                failures += 1;
                eprintln!("refinement failure at seed {seed}: {e}");
            }
        }
    }
    let refine_ms = started.elapsed().as_millis();
    let exports_per_sec = refine_runs as f64 / (refine_ms.max(1) as f64 / 1000.0);
    println!(
        "   refinement: {refine_runs} exports {observations} observations \
         {failures} failures  {refine_ms} ms  {exports_per_sec:.1} exports/s"
    );

    let doc = format!(
        "{{\n  \"schema\": \"oftt-bench-verify-v1\",\n  \"cells\": [\n{}\n  ],\n  \
         \"refinement\": {{ \"exports\": {refine_runs}, \"observations\": {observations}, \
         \"failures\": {failures}, \"elapsed_ms\": {refine_ms}, \
         \"exports_per_sec\": {exports_per_sec:.1} }}\n}}\n",
        cells_json.join(",\n"),
    );
    std::fs::write(&out_path, doc).expect("write bench artifact");
    println!("wrote {out_path}");
}
