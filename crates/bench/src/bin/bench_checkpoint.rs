//! Emits `BENCH_checkpoint.json`: per-period cost of the checkpoint data
//! path, full-image vs dirty-tracked, across a state-size × write-locality
//! grid.
//!
//! ```text
//! cargo run -p bench --release --bin bench-checkpoint   # writes BENCH_checkpoint.json
//! BENCH_SAMPLES=1 ... bench-checkpoint                  # CI smoke mode
//! BENCH_OUT=/tmp/b.json ... bench-checkpoint            # alternate path
//! ```
//!
//! Each cell simulates a primary whose application mutates `dirty_pct`% of
//! its variables per checkpoint period, and measures the end-to-end
//! per-period cost — snapshot, checksum, wire sizing, and backup-store
//! install — for both paths:
//!
//! * **full**: rebuild and checksum the whole image every period (the
//!   pre-dirty-tracking data path);
//! * **dirty**: digest-gated [`VarStore`] walkthrough of only the touched
//!   variables, `take_dirty` delta, cached-digest crc, delta install.
//!
//! After the timed periods the dirty path's backup store is compared
//! against a reference image (`restore_ok`) — speed means nothing if the
//! merged image drifted.

use std::time::Instant;

use comsim::buf::Bytes;
use ds_sim::prelude::SimTime;
use oftt::checkpoint::{
    checksum, AcceptOutcome, Checkpoint, CheckpointPayload, CheckpointStore, VarSet, VarStore,
};

/// One point of the grid.
struct Cell {
    vars: usize,
    var_bytes: usize,
    dirty_pct: usize,
}

const GRID: &[Cell] = &[
    Cell { vars: 100, var_bytes: 64, dirty_pct: 10 },
    Cell { vars: 1_000, var_bytes: 64, dirty_pct: 10 },
    Cell { vars: 1_000, var_bytes: 256, dirty_pct: 1 },
    Cell { vars: 10_000, var_bytes: 64, dirty_pct: 1 },
    Cell { vars: 10_000, var_bytes: 64, dirty_pct: 10 },
];

/// Steady-state periods timed per sample.
const PERIODS: u64 = 16;

fn var_name(i: usize) -> String {
    format!("var{i:05}")
}

/// The simulated application state: `vars` buffers that mutate in place.
struct AppState {
    state: Vec<Vec<u8>>,
    names: Vec<String>,
    dirty_per_period: usize,
    cursor: usize,
}

impl AppState {
    fn new(cell: &Cell) -> Self {
        AppState {
            state: (0..cell.vars).map(|i| vec![(i & 0xFF) as u8; cell.var_bytes]).collect(),
            names: (0..cell.vars).map(var_name).collect(),
            dirty_per_period: ((cell.vars * cell.dirty_pct) / 100).max(1),
            cursor: 0,
        }
    }

    /// Mutates the next window of variables; returns the touched indices.
    /// A rotating window models write locality without ever re-writing a
    /// variable to its previous contents (which the digest gate would —
    /// correctly — elide).
    fn tick(&mut self, period: u64) -> std::ops::Range<usize> {
        let start = self.cursor;
        for off in 0..self.dirty_per_period {
            let i = (start + off) % self.state.len();
            let var = &mut self.state[i];
            var[0] = var[0].wrapping_add(1);
            let j = 1 % var.len();
            var[j] = (period & 0xFF) as u8;
        }
        self.cursor = (self.cursor + self.dirty_per_period) % self.state.len();
        start..start + self.dirty_per_period
    }

    fn image(&self) -> VarSet {
        self.names
            .iter()
            .zip(&self.state)
            .map(|(n, b)| (n.clone(), Bytes::copy_from_slice(b)))
            .collect()
    }
}

/// Full path: every period rebuilds, checksums, sizes, and installs the
/// complete image. Returns `(total_ns, wire_bytes_per_period)`.
fn run_full(cell: &Cell) -> (u64, u64) {
    let mut app = AppState::new(cell);
    let mut backup = CheckpointStore::new();
    let mut wire = 0u64;
    let started = Instant::now();
    for period in 1..=PERIODS {
        app.tick(period);
        let ckpt = Checkpoint::new(
            1,
            period,
            SimTime::from_millis(period),
            CheckpointPayload::Full(app.image()),
        );
        wire += ckpt.wire_size();
        assert_eq!(backup.offer(&ckpt), AcceptOutcome::Installed);
    }
    let ns = started.elapsed().as_nanos() as u64;
    (ns, wire / PERIODS)
}

/// Dirty path: an untimed priming full, then per-period digest-gated
/// walkthroughs of only the touched variables shipping deltas. Returns the
/// final backup store for the restore-equality check.
fn run_dirty(cell: &Cell) -> (u64, u64, CheckpointStore, VarSet) {
    let mut app = AppState::new(cell);
    let mut store = VarStore::new();
    let mut backup = CheckpointStore::new();
    // Prime: the first checkpoint of a term is always full.
    for (i, name) in app.names.iter().enumerate() {
        store.set(name.clone(), Bytes::copy_from_slice(&app.state[i]));
    }
    store.clear_dirty();
    let full = Checkpoint::with_crc(
        1,
        1,
        SimTime::ZERO,
        CheckpointPayload::Full(store.image(None)),
        store.image_crc(None),
    );
    assert_eq!(backup.offer(&full), AcceptOutcome::Installed);
    let mut wire = 0u64;
    let started = Instant::now();
    for period in 2..=PERIODS + 1 {
        let touched = app.tick(period);
        for off in touched {
            let i = off % app.state.len();
            store.set(app.names[i].clone(), Bytes::copy_from_slice(&app.state[i]));
        }
        let delta = store.take_dirty(None);
        let crc = store.crc_of(&delta);
        let ckpt = Checkpoint::with_crc(
            1,
            period,
            SimTime::from_millis(period),
            CheckpointPayload::Delta(delta),
            crc,
        );
        wire += ckpt.wire_size();
        assert_eq!(backup.offer(&ckpt), AcceptOutcome::Installed);
    }
    let ns = started.elapsed().as_nanos() as u64;
    (ns, wire / PERIODS, backup, app.image())
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn main() {
    let samples: usize = std::env::var("BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5);
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_checkpoint.json".into());

    let mut cells_json = Vec::new();
    for cell in GRID {
        let mut full_ns = Vec::new();
        let mut dirty_ns = Vec::new();
        let mut full_wire = 0u64;
        let mut dirty_wire = 0u64;
        let mut restore_ok = true;
        for _ in 0..samples {
            let (ns, wire) = run_full(cell);
            full_ns.push(ns);
            full_wire = wire;
            let (ns, wire, backup, reference) = run_dirty(cell);
            dirty_ns.push(ns);
            dirty_wire = wire;
            restore_ok &= backup.vars() == &reference && backup.image_crc() == checksum(&reference);
        }
        let full_med = median(full_ns) / PERIODS;
        let dirty_med = (median(dirty_ns) / PERIODS).max(1);
        let speedup = full_med as f64 / dirty_med as f64;
        let wire_ratio = full_wire as f64 / dirty_wire.max(1) as f64;
        println!(
            "vars={:>6} var_bytes={:>4} dirty={:>3}%  full={:>10} ns/p {:>9} B/p   dirty={:>9} ns/p {:>7} B/p   speedup={:>7.1}x wire_ratio={:>7.1}x restore_ok={}",
            cell.vars,
            cell.var_bytes,
            cell.dirty_pct,
            full_med,
            full_wire,
            dirty_med,
            dirty_wire,
            speedup,
            wire_ratio,
            restore_ok,
        );
        cells_json.push(format!(
            concat!(
                "    {{\n",
                "      \"vars\": {},\n",
                "      \"var_bytes\": {},\n",
                "      \"dirty_pct\": {},\n",
                "      \"full\": {{\"ns_per_period\": {}, \"wire_bytes_per_period\": {}}},\n",
                "      \"dirty\": {{\"ns_per_period\": {}, \"wire_bytes_per_period\": {}}},\n",
                "      \"speedup\": {:.2},\n",
                "      \"wire_ratio\": {:.2},\n",
                "      \"restore_ok\": {}\n",
                "    }}"
            ),
            cell.vars,
            cell.var_bytes,
            cell.dirty_pct,
            full_med,
            full_wire,
            dirty_med,
            dirty_wire,
            speedup,
            wire_ratio,
            restore_ok,
        ));
    }

    let doc = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"oftt-bench-checkpoint-v1\",\n",
            "  \"samples\": {},\n",
            "  \"periods_per_sample\": {},\n",
            "  \"cells\": [\n{}\n  ]\n",
            "}}\n"
        ),
        samples,
        PERIODS,
        cells_json.join(",\n"),
    );
    std::fs::write(&out_path, &doc).expect("write bench artifact");
    println!("wrote {out_path}");
}
