//! Validates a `BENCH_checkpoint.json` artifact against the
//! `oftt-bench-checkpoint-v1` schema — CI's guard against schema drift and
//! against the dirty path quietly losing its edge.
//!
//! ```text
//! cargo run -p bench --release --bin bench-validate [path]
//! ```
//!
//! Exit 0 on a well-formed artifact whose 10k-vars / 1%-locality cell
//! clears the acceptance thresholds (speedup ≥ 5×, wire ratio ≥ 20×,
//! restore equality holds in every cell); exit 1 with a diagnostic
//! otherwise.

use bench::json::{parse, Json};

fn require<'a>(obj: &'a Json, key: &str, errors: &mut Vec<String>) -> Option<&'a Json> {
    let v = obj.get(key);
    if v.is_none() {
        errors.push(format!("missing key {key:?}"));
    }
    v
}

fn require_number(obj: &Json, key: &str, errors: &mut Vec<String>) -> Option<f64> {
    let v = require(obj, key, errors)?;
    let n = v.as_f64();
    if n.is_none() {
        errors.push(format!("key {key:?} is not a number"));
    }
    n
}

fn validate_path_cost(cell: &Json, key: &str, errors: &mut Vec<String>) {
    let Some(path) = require(cell, key, errors) else { return };
    if path.as_object().is_none() {
        errors.push(format!("key {key:?} is not an object"));
        return;
    }
    require_number(path, "ns_per_period", errors);
    require_number(path, "wire_bytes_per_period", errors);
}

fn validate(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    if doc.as_object().is_none() {
        return vec!["top level is not an object".into()];
    }
    match require(doc, "schema", &mut errors).and_then(Json::as_str) {
        Some("oftt-bench-checkpoint-v1") => {}
        Some(other) => errors.push(format!("unknown schema {other:?}")),
        None => errors.push("schema is not a string".into()),
    }
    require_number(doc, "samples", &mut errors);
    require_number(doc, "periods_per_sample", &mut errors);
    let Some(cells) = require(doc, "cells", &mut errors).and_then(Json::as_array) else {
        errors.push("cells is not an array".into());
        return errors;
    };
    if cells.is_empty() {
        errors.push("cells is empty".into());
    }
    let mut acceptance_cell_seen = false;
    for (i, cell) in cells.iter().enumerate() {
        let mut cell_errors = Vec::new();
        let vars = require_number(cell, "vars", &mut cell_errors);
        let dirty_pct = require_number(cell, "dirty_pct", &mut cell_errors);
        require_number(cell, "var_bytes", &mut cell_errors);
        validate_path_cost(cell, "full", &mut cell_errors);
        validate_path_cost(cell, "dirty", &mut cell_errors);
        let speedup = require_number(cell, "speedup", &mut cell_errors);
        let wire_ratio = require_number(cell, "wire_ratio", &mut cell_errors);
        match require(cell, "restore_ok", &mut cell_errors).and_then(Json::as_bool) {
            Some(true) => {}
            Some(false) => cell_errors.push("restore_ok is false: merged image diverged".into()),
            None => cell_errors.push("restore_ok is not a boolean".into()),
        }
        // The acceptance cell: 10k variables at 1% write locality must
        // show the dirty path ≥5× faster and ≥20× lighter on the wire.
        if vars == Some(10_000.0) && dirty_pct == Some(1.0) {
            acceptance_cell_seen = true;
            if let Some(s) = speedup {
                if s < 5.0 {
                    cell_errors.push(format!("speedup {s:.2} below the 5x acceptance floor"));
                }
            }
            if let Some(w) = wire_ratio {
                if w < 20.0 {
                    cell_errors.push(format!("wire_ratio {w:.2} below the 20x acceptance floor"));
                }
            }
        }
        errors.extend(cell_errors.into_iter().map(|e| format!("cells[{i}]: {e}")));
    }
    if !acceptance_cell_seen {
        errors.push("no acceptance cell (vars=10000, dirty_pct=1) in the grid".into());
    }
    errors
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_checkpoint.json".into());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench-validate: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc = match parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench-validate: {path} is not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    let errors = validate(&doc);
    if errors.is_empty() {
        println!("bench-validate: {path} conforms to oftt-bench-checkpoint-v1");
    } else {
        for e in &errors {
            eprintln!("bench-validate: {path}: {e}");
        }
        std::process::exit(1);
    }
}
