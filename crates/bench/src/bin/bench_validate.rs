//! Validates bench artifacts against their declared schema — CI's guard
//! against schema drift and against the measured properties quietly
//! regressing. Dispatches on the top-level `"schema"` string:
//!
//! * `oftt-bench-checkpoint-v1` (`BENCH_checkpoint.json`) — the 10k-vars /
//!   1%-locality cell must clear the acceptance thresholds (speedup ≥ 5×,
//!   wire ratio ≥ 20×, restore equality in every cell);
//! * `oftt-bench-wire-v1` (`BENCH_wire.json`) — the socket runtime must
//!   show the acceptance workload (10k vars at 1% locality) with zero
//!   data-frame sheds, ≥ 20 SIGKILL failover samples, and promotion p99
//!   inside the 3 s detection budget;
//! * `oftt-bench-verify-v1` (`BENCH_verify.json`) — every exploration
//!   tier must come back clean (zero violations, no lasso, not capped),
//!   the `default` tier must exhaust a ≥ 10⁶-state space at ≥ 10k
//!   states/s, and the refinement batch must include every export.
//!
//! ```text
//! cargo run -p bench --release --bin bench-validate [path]
//! ```

use bench::json::{parse, Json};

fn require<'a>(obj: &'a Json, key: &str, errors: &mut Vec<String>) -> Option<&'a Json> {
    let v = obj.get(key);
    if v.is_none() {
        errors.push(format!("missing key {key:?}"));
    }
    v
}

fn require_number(obj: &Json, key: &str, errors: &mut Vec<String>) -> Option<f64> {
    let v = require(obj, key, errors)?;
    let n = v.as_f64();
    if n.is_none() {
        errors.push(format!("key {key:?} is not a number"));
    }
    n
}

fn validate_path_cost(cell: &Json, key: &str, errors: &mut Vec<String>) {
    let Some(path) = require(cell, key, errors) else { return };
    if path.as_object().is_none() {
        errors.push(format!("key {key:?} is not an object"));
        return;
    }
    require_number(path, "ns_per_period", errors);
    require_number(path, "wire_bytes_per_period", errors);
}

fn validate(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    if doc.as_object().is_none() {
        return vec!["top level is not an object".into()];
    }
    match require(doc, "schema", &mut errors).and_then(Json::as_str) {
        Some("oftt-bench-checkpoint-v1") => errors.extend(validate_checkpoint(doc)),
        Some("oftt-bench-wire-v1") => errors.extend(validate_wire(doc)),
        Some("oftt-bench-verify-v1") => errors.extend(validate_verify(doc)),
        Some(other) => errors.push(format!("unknown schema {other:?}")),
        None => errors.push("schema is not a string".into()),
    }
    errors
}

fn validate_checkpoint(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    require_number(doc, "samples", &mut errors);
    require_number(doc, "periods_per_sample", &mut errors);
    let Some(cells) = require(doc, "cells", &mut errors).and_then(Json::as_array) else {
        errors.push("cells is not an array".into());
        return errors;
    };
    if cells.is_empty() {
        errors.push("cells is empty".into());
    }
    let mut acceptance_cell_seen = false;
    for (i, cell) in cells.iter().enumerate() {
        let mut cell_errors = Vec::new();
        let vars = require_number(cell, "vars", &mut cell_errors);
        let dirty_pct = require_number(cell, "dirty_pct", &mut cell_errors);
        require_number(cell, "var_bytes", &mut cell_errors);
        validate_path_cost(cell, "full", &mut cell_errors);
        validate_path_cost(cell, "dirty", &mut cell_errors);
        let speedup = require_number(cell, "speedup", &mut cell_errors);
        let wire_ratio = require_number(cell, "wire_ratio", &mut cell_errors);
        match require(cell, "restore_ok", &mut cell_errors).and_then(Json::as_bool) {
            Some(true) => {}
            Some(false) => cell_errors.push("restore_ok is false: merged image diverged".into()),
            None => cell_errors.push("restore_ok is not a boolean".into()),
        }
        // The acceptance cell: 10k variables at 1% write locality must
        // show the dirty path ≥5× faster and ≥20× lighter on the wire.
        if vars == Some(10_000.0) && dirty_pct == Some(1.0) {
            acceptance_cell_seen = true;
            if let Some(s) = speedup {
                if s < 5.0 {
                    cell_errors.push(format!("speedup {s:.2} below the 5x acceptance floor"));
                }
            }
            if let Some(w) = wire_ratio {
                if w < 20.0 {
                    cell_errors.push(format!("wire_ratio {w:.2} below the 20x acceptance floor"));
                }
            }
        }
        errors.extend(cell_errors.into_iter().map(|e| format!("cells[{i}]: {e}")));
    }
    if !acceptance_cell_seen {
        errors.push("no acceptance cell (vars=10000, dirty_pct=1) in the grid".into());
    }
    errors
}

fn validate_wire(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();

    if let Some(rtt) = require(doc, "rtt", &mut errors) {
        require_number(rtt, "samples", &mut errors);
        let p50 = require_number(rtt, "p50_us", &mut errors);
        let p99 = require_number(rtt, "p99_us", &mut errors);
        if let (Some(p50), Some(p99)) = (p50, p99) {
            if p50 <= 0.0 {
                errors.push("rtt: p50_us is not positive".into());
            }
            if p99 < p50 {
                errors.push(format!("rtt: p99 {p99:.1} below p50 {p50:.1}"));
            }
        }
    }

    if let Some(ckpt) = require(doc, "checkpoint", &mut errors) {
        let vars = require_number(ckpt, "vars", &mut errors);
        let dirty_pct = require_number(ckpt, "dirty_pct", &mut errors);
        require_number(ckpt, "var_bytes", &mut errors);
        require_number(ckpt, "duration_ms", &mut errors);
        let acked = require_number(ckpt, "ckpts_acked", &mut errors);
        require_number(ckpt, "ckpts_per_sec", &mut errors);
        require_number(ckpt, "ckpt_bytes_per_sec", &mut errors);
        let drops = require_number(ckpt, "backpressure_drops", &mut errors);
        require_number(ckpt, "heartbeats_shed", &mut errors);
        // The acceptance workload, sustained with a drop-free write queue.
        if vars != Some(10_000.0) {
            errors.push(format!("checkpoint: vars {vars:?} is not the 10000-var workload"));
        }
        if dirty_pct != Some(1.0) {
            errors.push(format!("checkpoint: dirty_pct {dirty_pct:?} is not 1% locality"));
        }
        if acked == Some(0.0) {
            errors.push("checkpoint: zero checkpoints acknowledged".into());
        }
        if let Some(drops) = drops {
            if drops > 0.0 {
                errors.push(format!("checkpoint: {drops} data frames shed under load"));
            }
        }
    }

    if let Some(failover) = require(doc, "failover", &mut errors) {
        let kills = require_number(failover, "kills", &mut errors);
        let p50 = require_number(failover, "detection_ms_p50", &mut errors);
        let p99 = require_number(failover, "detection_ms_p99", &mut errors);
        require_number(failover, "detection_ms_max", &mut errors);
        if let Some(kills) = kills {
            if kills < 20.0 {
                errors.push(format!("failover: only {kills} kills; 20 required"));
            }
        }
        if let (Some(p50), Some(p99)) = (p50, p99) {
            if p99 < p50 {
                errors.push(format!("failover: p99 {p99} below p50 {p50}"));
            }
            // Promotion must land inside the smoke test's detection budget.
            if p99 > 3000.0 {
                errors.push(format!("failover: p99 {p99} ms over the 3000 ms budget"));
            }
        }
    }

    errors
}

fn validate_verify(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    let Some(cells) = require(doc, "cells", &mut errors).and_then(Json::as_array) else {
        errors.push("cells is not an array".into());
        return errors;
    };
    if cells.is_empty() {
        errors.push("cells is empty".into());
    }
    let mut default_tier_seen = false;
    for (i, cell) in cells.iter().enumerate() {
        let mut cell_errors = Vec::new();
        let name = require(cell, "name", &mut cell_errors).and_then(Json::as_str);
        let states = require_number(cell, "states", &mut cell_errors);
        require_number(cell, "transitions", &mut cell_errors);
        require_number(cell, "por_reduced", &mut cell_errors);
        require_number(cell, "truncated", &mut cell_errors);
        require_number(cell, "elapsed_ms", &mut cell_errors);
        let rate = require_number(cell, "states_per_sec", &mut cell_errors);
        // Every tier is a verification verdict: it must be clean.
        match require_number(cell, "violations", &mut cell_errors) {
            Some(v) if v > 0.0 => cell_errors.push(format!("{v} safety violations")),
            _ => {}
        }
        match require(cell, "lasso", &mut cell_errors).and_then(Json::as_bool) {
            Some(true) => cell_errors.push("a persistent dual-primary lasso was found".into()),
            Some(false) => {}
            None => cell_errors.push("lasso is not a boolean".into()),
        }
        // The acceptance tier: the full default budget must exhaust a
        // nontrivial space at a usable rate.
        if name == Some("default") {
            default_tier_seen = true;
            if let Some(s) = states {
                if s < 1_000_000.0 {
                    cell_errors.push(format!(
                        "default tier explored only {s} states; the full budget \
                         space is over a million"
                    ));
                }
            }
            if let Some(r) = rate {
                if r < 10_000.0 {
                    cell_errors.push(format!("{r:.0} states/s below the 10k floor"));
                }
            }
        }
        errors.extend(cell_errors.into_iter().map(|e| format!("cells[{i}]: {e}")));
    }
    if !default_tier_seen {
        errors.push("no default-budget tier in the cells".into());
    }

    let Some(refinement) = require(doc, "refinement", &mut errors) else {
        return errors;
    };
    let exports = require_number(refinement, "exports", &mut errors);
    require_number(refinement, "observations", &mut errors);
    require_number(refinement, "elapsed_ms", &mut errors);
    require_number(refinement, "exports_per_sec", &mut errors);
    if exports == Some(0.0) {
        errors.push("refinement: zero exports checked".into());
    }
    match require_number(refinement, "failures", &mut errors) {
        Some(f) if f > 0.0 => {
            errors.push(format!("refinement: {f} export(s) failed trace inclusion"));
        }
        _ => {}
    }
    errors
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_checkpoint.json".into());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench-validate: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc = match parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench-validate: {path} is not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    let errors = validate(&doc);
    if errors.is_empty() {
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("?");
        println!("bench-validate: {path} conforms to {schema}");
    } else {
        for e in &errors {
            eprintln!("bench-validate: {path}: {e}");
        }
        std::process::exit(1);
    }
}
