//! Validates bench artifacts against their declared schema — CI's guard
//! against schema drift and against the measured properties quietly
//! regressing. All schema arms live in [`bench::validate`]; this binary
//! just reads the file, parses it, and reports.
//!
//! ```text
//! cargo run -p bench --release --bin bench-validate [path]
//! ```

use bench::json::{parse, Json};
use bench::validate::validate;

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_checkpoint.json".into());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench-validate: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc = match parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench-validate: {path} is not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    let errors = validate(&doc);
    if errors.is_empty() {
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("?");
        println!("bench-validate: {path} conforms to {schema}");
    } else {
        for e in &errors {
            eprintln!("bench-validate: {path}: {e}");
        }
        std::process::exit(1);
    }
}
