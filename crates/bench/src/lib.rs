//! Benchmark harness for the OFTT reproduction.
//!
//! * `benches/` — criterion microbenches: marshaling, checkpoint machinery,
//!   simulator throughput, end-to-end scenario wall time.
//! * `src/bin/oftt_experiments.rs` — regenerates every table in
//!   EXPERIMENTS.md (`cargo run -p bench --release --bin oftt-experiments`).
