//! Benchmark harness for the OFTT reproduction.
//!
//! * `benches/` — criterion microbenches: marshaling, checkpoint machinery,
//!   simulator throughput, end-to-end scenario wall time.
//! * `src/bin/oftt_experiments.rs` — regenerates every table in
//!   EXPERIMENTS.md (`cargo run -p bench --release --bin oftt-experiments`).
//! * `src/bin/bench_checkpoint.rs` — emits `BENCH_checkpoint.json`, the
//!   full-vs-dirty checkpoint data-path grid
//!   (`cargo run -p bench --release --bin bench-checkpoint`).
//! * `src/bin/bench_validate.rs` — validates every CI artifact against its
//!   declared schema (the arms live in [`validate`]).

pub mod json;
pub mod validate;
