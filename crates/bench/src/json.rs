//! A minimal JSON reader for validating bench artifacts offline.
//!
//! The workspace deliberately carries no `serde_json`; the bench emitters
//! hand-format their output and this module hand-parses it back, so CI can
//! fail on schema drift without any new dependency. It covers exactly the
//! JSON subset the emitters produce: objects, arrays, strings without
//! escapes beyond `\"` and `\\`, numbers, booleans, and null.
//!
//! The parser is strict about object keys: spelling the same key twice in
//! one object is an error, not a silent last-one-wins. Loaders of
//! human-authored documents (campaign scenario files) rely on that — a
//! duplicated override would otherwise shadow its first occurrence without
//! a trace. [`parse_doc`] surfaces the offending key as a typed
//! [`JsonErrorKind::DuplicateKey`].

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, kept as `f64` (bench values fit losslessly).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; key order is irrelevant to validation.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Looks up a key on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?.get(key)
    }
}

/// A structured parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset where the failure was detected.
    pub at: usize,
    /// What went wrong.
    pub kind: JsonErrorKind,
}

/// The kinds of parse failure, typed so loaders can react per kind.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonErrorKind {
    /// An object spelled the same key twice; carries the key verbatim.
    DuplicateKey(String),
    /// Any other malformation, described.
    Malformed(String),
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            JsonErrorKind::DuplicateKey(key) => {
                write!(f, "duplicate key {key:?} at byte {}", self.at)
            }
            JsonErrorKind::Malformed(what) => write!(f, "{what} at byte {}", self.at),
        }
    }
}

impl std::error::Error for JsonError {}

fn bad(at: usize, what: impl Into<String>) -> JsonError {
    JsonError { at, kind: JsonErrorKind::Malformed(what.into()) }
}

/// Parses a complete JSON document; trailing garbage is an error.
/// String-typed error for validator plumbing — see [`parse_doc`] for the
/// typed form.
pub fn parse(text: &str) -> Result<Json, String> {
    parse_doc(text).map_err(|e| e.to_string())
}

/// Parses a complete JSON document with a typed error: duplicate object
/// keys and malformations are distinguished, and the byte offset is
/// carried alongside.
pub fn parse_doc(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(bad(pos, "trailing data"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), JsonError> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(bad(*pos, format!("expected '{}'", ch as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err(bad(*pos, "unexpected end of input")),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes.get(*pos..).unwrap_or(&[]).starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(bad(*pos, "bad literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')) {
        *pos += 1;
    }
    let text = std::str::from_utf8(bytes.get(start..*pos).unwrap_or(&[]))
        .map_err(|e| bad(start, e.to_string()))?;
    text.parse::<f64>().map(Json::Number).map_err(|_| bad(start, format!("bad number {text:?}")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    other => return Err(bad(*pos, format!("unsupported escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar worth of bytes.
                let rest = std::str::from_utf8(bytes.get(*pos..).unwrap_or(&[]))
                    .map_err(|e| bad(*pos, e.to_string()))?;
                let ch =
                    rest.chars().next().ok_or_else(|| bad(*pos, "unexpected end of string"))?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
            None => return Err(bad(*pos, "unterminated string")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key_at = *pos;
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        if map.insert(key.clone(), value).is_some() {
            return Err(JsonError { at: key_at, kind: JsonErrorKind::DuplicateKey(key) });
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            other => return Err(bad(*pos, format!("expected ',' or '}}', got {other:?}"))),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            other => return Err(bad(*pos, format!("expected ',' or ']', got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_subset() {
        let doc =
            r#"{"schema": "v1", "n": 42.5, "ok": true, "items": [1, {"a": null}], "s": "x\"y"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("v1"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(42.5));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        let items = v.get("items").unwrap().as_array().unwrap();
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].get("a"), Some(&Json::Null));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\"y"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn duplicate_keys_are_typed_errors_naming_the_key() {
        let err = parse_doc(r#"{"a": 1, "b": 2, "a": 3}"#).unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::DuplicateKey("a".into()));
        assert!(err.to_string().contains("duplicate key \"a\""));
        // Nested objects are checked too.
        let err = parse_doc(r#"{"outer": {"x": 1, "x": 2}}"#).unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::DuplicateKey("x".into()));
        // The string form carries the same message.
        assert!(parse(r#"{"a": 1, "a": 2}"#).unwrap_err().contains("duplicate key"));
    }
}
