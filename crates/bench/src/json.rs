//! A minimal JSON reader for validating bench artifacts offline.
//!
//! The workspace deliberately carries no `serde_json`; the bench emitters
//! hand-format their output and this module hand-parses it back, so CI can
//! fail on schema drift without any new dependency. It covers exactly the
//! JSON subset the emitters produce: objects, arrays, strings without
//! escapes beyond `\"` and `\\`, numbers, booleans, and null.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, kept as `f64` (bench values fit losslessly).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; key order is irrelevant to validation.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Looks up a key on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?.get(key)
    }
}

/// Parses a complete JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Number)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    other => return Err(format!("unsupported escape {other:?} at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar worth of bytes.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unexpected end of string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
            None => return Err("unterminated string".into()),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            other => return Err(format!("expected ',' or '}}', got {other:?} at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            other => return Err(format!("expected ',' or ']', got {other:?} at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_subset() {
        let doc =
            r#"{"schema": "v1", "n": 42.5, "ok": true, "items": [1, {"a": null}], "s": "x\"y"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("v1"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(42.5));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        let items = v.get("items").unwrap().as_array().unwrap();
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].get("a"), Some(&Json::Null));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\"y"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
    }
}
