//! The unified bench-artifact schema validator.
//!
//! Every artifact CI emits — `BENCH_checkpoint.json`, `BENCH_wire.json`,
//! `BENCH_verify.json`, and the `oftt-lint-v1` report — declares its
//! schema in a top-level `"schema"` string and is checked here against
//! both its shape and its acceptance thresholds. The `bench-validate`
//! binary is a thin wrapper over [`validate`]; keeping the arms in one
//! module means a new artifact adds a dispatch case instead of a fourth
//! copy of the `require`/`require_number` scaffolding.
//!
//! Per-schema acceptance rules:
//!
//! * `oftt-bench-checkpoint-v1` — the 10k-vars / 1%-locality cell must
//!   clear the acceptance thresholds (speedup ≥ 5×, wire ratio ≥ 20×,
//!   restore equality in every cell);
//! * `oftt-bench-wire-v1` — the socket runtime must show the acceptance
//!   workload (10k vars at 1% locality) with zero data-frame sheds,
//!   ≥ 20 SIGKILL failover samples, and promotion p99 inside the 3 s
//!   detection budget;
//! * `oftt-bench-verify-v1` — every exploration tier must come back clean
//!   (zero violations, no lasso, not capped), the `default` tier must
//!   exhaust a ≥ 10⁶-state space at ≥ 10k states/s, and the refinement
//!   batch must include every export;
//! * `oftt-lint-v1` — the static analyzer's workspace report: zero
//!   non-baselined findings, zero dynamic lock sites missing from the
//!   static acquisition graph, and a scan that actually covered the
//!   workspace (≥ 40 files).

use crate::json::Json;

fn require<'a>(obj: &'a Json, key: &str, errors: &mut Vec<String>) -> Option<&'a Json> {
    let v = obj.get(key);
    if v.is_none() {
        errors.push(format!("missing key {key:?}"));
    }
    v
}

fn require_number(obj: &Json, key: &str, errors: &mut Vec<String>) -> Option<f64> {
    let v = require(obj, key, errors)?;
    let n = v.as_f64();
    if n.is_none() {
        errors.push(format!("key {key:?} is not a number"));
    }
    n
}

fn validate_path_cost(cell: &Json, key: &str, errors: &mut Vec<String>) {
    let Some(path) = require(cell, key, errors) else { return };
    if path.as_object().is_none() {
        errors.push(format!("key {key:?} is not an object"));
        return;
    }
    require_number(path, "ns_per_period", errors);
    require_number(path, "wire_bytes_per_period", errors);
}

/// Validates a parsed artifact, dispatching on its `"schema"` string.
/// Returns every violation found (empty means the artifact conforms).
pub fn validate(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    if doc.as_object().is_none() {
        return vec!["top level is not an object".into()];
    }
    match require(doc, "schema", &mut errors).and_then(Json::as_str) {
        Some("oftt-bench-checkpoint-v1") => errors.extend(validate_checkpoint(doc)),
        Some("oftt-bench-wire-v1") => errors.extend(validate_wire(doc)),
        Some("oftt-bench-verify-v1") => errors.extend(validate_verify(doc)),
        Some("oftt-lint-v1") => errors.extend(validate_lint(doc)),
        Some(other) => errors.push(format!("unknown schema {other:?}")),
        None => errors.push("schema is not a string".into()),
    }
    errors
}

fn validate_checkpoint(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    require_number(doc, "samples", &mut errors);
    require_number(doc, "periods_per_sample", &mut errors);
    let Some(cells) = require(doc, "cells", &mut errors).and_then(Json::as_array) else {
        errors.push("cells is not an array".into());
        return errors;
    };
    if cells.is_empty() {
        errors.push("cells is empty".into());
    }
    let mut acceptance_cell_seen = false;
    for (i, cell) in cells.iter().enumerate() {
        let mut cell_errors = Vec::new();
        let vars = require_number(cell, "vars", &mut cell_errors);
        let dirty_pct = require_number(cell, "dirty_pct", &mut cell_errors);
        require_number(cell, "var_bytes", &mut cell_errors);
        validate_path_cost(cell, "full", &mut cell_errors);
        validate_path_cost(cell, "dirty", &mut cell_errors);
        let speedup = require_number(cell, "speedup", &mut cell_errors);
        let wire_ratio = require_number(cell, "wire_ratio", &mut cell_errors);
        match require(cell, "restore_ok", &mut cell_errors).and_then(Json::as_bool) {
            Some(true) => {}
            Some(false) => cell_errors.push("restore_ok is false: merged image diverged".into()),
            None => cell_errors.push("restore_ok is not a boolean".into()),
        }
        // The acceptance cell: 10k variables at 1% write locality must
        // show the dirty path ≥5× faster and ≥20× lighter on the wire.
        if vars == Some(10_000.0) && dirty_pct == Some(1.0) {
            acceptance_cell_seen = true;
            if let Some(s) = speedup {
                if s < 5.0 {
                    cell_errors.push(format!("speedup {s:.2} below the 5x acceptance floor"));
                }
            }
            if let Some(w) = wire_ratio {
                if w < 20.0 {
                    cell_errors.push(format!("wire_ratio {w:.2} below the 20x acceptance floor"));
                }
            }
        }
        errors.extend(cell_errors.into_iter().map(|e| format!("cells[{i}]: {e}")));
    }
    if !acceptance_cell_seen {
        errors.push("no acceptance cell (vars=10000, dirty_pct=1) in the grid".into());
    }
    errors
}

fn validate_wire(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();

    if let Some(rtt) = require(doc, "rtt", &mut errors) {
        require_number(rtt, "samples", &mut errors);
        let p50 = require_number(rtt, "p50_us", &mut errors);
        let p99 = require_number(rtt, "p99_us", &mut errors);
        if let (Some(p50), Some(p99)) = (p50, p99) {
            if p50 <= 0.0 {
                errors.push("rtt: p50_us is not positive".into());
            }
            if p99 < p50 {
                errors.push(format!("rtt: p99 {p99:.1} below p50 {p50:.1}"));
            }
        }
    }

    if let Some(ckpt) = require(doc, "checkpoint", &mut errors) {
        let vars = require_number(ckpt, "vars", &mut errors);
        let dirty_pct = require_number(ckpt, "dirty_pct", &mut errors);
        require_number(ckpt, "var_bytes", &mut errors);
        require_number(ckpt, "duration_ms", &mut errors);
        let acked = require_number(ckpt, "ckpts_acked", &mut errors);
        require_number(ckpt, "ckpts_per_sec", &mut errors);
        require_number(ckpt, "ckpt_bytes_per_sec", &mut errors);
        let drops = require_number(ckpt, "backpressure_drops", &mut errors);
        require_number(ckpt, "heartbeats_shed", &mut errors);
        // The acceptance workload, sustained with a drop-free write queue.
        if vars != Some(10_000.0) {
            errors.push(format!("checkpoint: vars {vars:?} is not the 10000-var workload"));
        }
        if dirty_pct != Some(1.0) {
            errors.push(format!("checkpoint: dirty_pct {dirty_pct:?} is not 1% locality"));
        }
        if acked == Some(0.0) {
            errors.push("checkpoint: zero checkpoints acknowledged".into());
        }
        if let Some(drops) = drops {
            if drops > 0.0 {
                errors.push(format!("checkpoint: {drops} data frames shed under load"));
            }
        }
    }

    if let Some(failover) = require(doc, "failover", &mut errors) {
        let kills = require_number(failover, "kills", &mut errors);
        let p50 = require_number(failover, "detection_ms_p50", &mut errors);
        let p99 = require_number(failover, "detection_ms_p99", &mut errors);
        require_number(failover, "detection_ms_max", &mut errors);
        if let Some(kills) = kills {
            if kills < 20.0 {
                errors.push(format!("failover: only {kills} kills; 20 required"));
            }
        }
        if let (Some(p50), Some(p99)) = (p50, p99) {
            if p99 < p50 {
                errors.push(format!("failover: p99 {p99} below p50 {p50}"));
            }
            // Promotion must land inside the smoke test's detection budget.
            if p99 > 3000.0 {
                errors.push(format!("failover: p99 {p99} ms over the 3000 ms budget"));
            }
        }
    }

    errors
}

fn validate_verify(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    let Some(cells) = require(doc, "cells", &mut errors).and_then(Json::as_array) else {
        errors.push("cells is not an array".into());
        return errors;
    };
    if cells.is_empty() {
        errors.push("cells is empty".into());
    }
    let mut default_tier_seen = false;
    for (i, cell) in cells.iter().enumerate() {
        let mut cell_errors = Vec::new();
        let name = require(cell, "name", &mut cell_errors).and_then(Json::as_str);
        let states = require_number(cell, "states", &mut cell_errors);
        require_number(cell, "transitions", &mut cell_errors);
        require_number(cell, "por_reduced", &mut cell_errors);
        require_number(cell, "truncated", &mut cell_errors);
        require_number(cell, "elapsed_ms", &mut cell_errors);
        let rate = require_number(cell, "states_per_sec", &mut cell_errors);
        // Every tier is a verification verdict: it must be clean.
        match require_number(cell, "violations", &mut cell_errors) {
            Some(v) if v > 0.0 => cell_errors.push(format!("{v} safety violations")),
            _ => {}
        }
        match require(cell, "lasso", &mut cell_errors).and_then(Json::as_bool) {
            Some(true) => cell_errors.push("a persistent dual-primary lasso was found".into()),
            Some(false) => {}
            None => cell_errors.push("lasso is not a boolean".into()),
        }
        // The acceptance tier: the full default budget must exhaust a
        // nontrivial space at a usable rate.
        if name == Some("default") {
            default_tier_seen = true;
            if let Some(s) = states {
                if s < 1_000_000.0 {
                    cell_errors.push(format!(
                        "default tier explored only {s} states; the full budget \
                         space is over a million"
                    ));
                }
            }
            if let Some(r) = rate {
                if r < 10_000.0 {
                    cell_errors.push(format!("{r:.0} states/s below the 10k floor"));
                }
            }
        }
        errors.extend(cell_errors.into_iter().map(|e| format!("cells[{i}]: {e}")));
    }
    if !default_tier_seen {
        errors.push("no default-budget tier in the cells".into());
    }

    let Some(refinement) = require(doc, "refinement", &mut errors) else {
        return errors;
    };
    let exports = require_number(refinement, "exports", &mut errors);
    require_number(refinement, "observations", &mut errors);
    require_number(refinement, "elapsed_ms", &mut errors);
    require_number(refinement, "exports_per_sec", &mut errors);
    if exports == Some(0.0) {
        errors.push("refinement: zero exports checked".into());
    }
    match require_number(refinement, "failures", &mut errors) {
        Some(f) if f > 0.0 => {
            errors.push(format!("refinement: {f} export(s) failed trace inclusion"));
        }
        _ => {}
    }
    errors
}

fn validate_lint(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    let files = require_number(doc, "files_scanned", &mut errors);
    require_number(doc, "suppressed", &mut errors);
    // The CI artifact comes from the clean tree: a scan that barely
    // covered the workspace means the walker broke, not that the code
    // shrank to nothing.
    if let Some(files) = files {
        if files < 40.0 {
            errors.push(format!("only {files} files scanned; the workspace has far more"));
        }
    }
    match require(doc, "findings", &mut errors).and_then(Json::as_array) {
        Some(findings) => {
            for (i, finding) in findings.iter().enumerate() {
                let mut f_errors = Vec::new();
                require(finding, "rule", &mut f_errors).and_then(Json::as_str);
                require(finding, "file", &mut f_errors).and_then(Json::as_str);
                require_number(finding, "line", &mut f_errors);
                require(finding, "message", &mut f_errors).and_then(Json::as_str);
                errors.extend(f_errors.into_iter().map(|e| format!("findings[{i}]: {e}")));
            }
            // The acceptance verdict: zero non-baselined findings.
            if !findings.is_empty() {
                errors.push(format!("{} non-baselined finding(s) in the report", findings.len()));
            }
        }
        None => errors.push("findings is not an array".into()),
    }
    if let Some(graph) = require(doc, "lock_graph", &mut errors) {
        let locks = require_number(graph, "locks", &mut errors);
        require_number(graph, "edges", &mut errors);
        if locks == Some(0.0) {
            errors.push("lock_graph: no static lock sites found".into());
        }
    }
    if let Some(dynamic) = require(doc, "dynamic_locks", &mut errors) {
        require_number(dynamic, "checked", &mut errors);
        match require_number(dynamic, "uncovered", &mut errors) {
            Some(u) if u > 0.0 => {
                errors.push(format!(
                    "dynamic_locks: {u} dynamically observed lock site(s) missing \
                     from the static acquisition graph"
                ));
            }
            _ => {}
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn unknown_schema_is_rejected() {
        let doc = parse(r#"{"schema": "mystery-v9"}"#).unwrap();
        let errors = validate(&doc);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("unknown schema"));
    }

    #[test]
    fn clean_lint_report_conforms() {
        let doc = parse(
            r#"{
              "schema": "oftt-lint-v1",
              "files_scanned": 90,
              "suppressed": 2,
              "findings": [],
              "lock_graph": {"locks": 7, "edges": 3},
              "dynamic_locks": {"checked": 2, "uncovered": 0}
            }"#,
        )
        .unwrap();
        assert!(validate(&doc).is_empty(), "{:?}", validate(&doc));
    }

    #[test]
    fn lint_report_with_findings_fails_acceptance() {
        let doc = parse(
            r#"{
              "schema": "oftt-lint-v1",
              "files_scanned": 90,
              "suppressed": 0,
              "findings": [{"rule": "panic-path", "file": "a.rs", "line": 3,
                            "message": "unwrap on a hot path"}],
              "lock_graph": {"locks": 7, "edges": 3},
              "dynamic_locks": {"checked": 2, "uncovered": 0}
            }"#,
        )
        .unwrap();
        let errors = validate(&doc);
        assert!(errors.iter().any(|e| e.contains("non-baselined finding")), "{errors:?}");
    }

    #[test]
    fn lint_report_with_uncovered_dynamic_lock_fails() {
        let doc = parse(
            r#"{
              "schema": "oftt-lint-v1",
              "files_scanned": 90,
              "suppressed": 0,
              "findings": [],
              "lock_graph": {"locks": 7, "edges": 3},
              "dynamic_locks": {"checked": 2, "uncovered": 1}
            }"#,
        )
        .unwrap();
        let errors = validate(&doc);
        assert!(errors.iter().any(|e| e.contains("missing")), "{errors:?}");
    }

    #[test]
    fn thin_lint_scan_is_rejected() {
        let doc = parse(
            r#"{
              "schema": "oftt-lint-v1",
              "files_scanned": 3,
              "suppressed": 0,
              "findings": [],
              "lock_graph": {"locks": 1, "edges": 0},
              "dynamic_locks": {"checked": 2, "uncovered": 0}
            }"#,
        )
        .unwrap();
        let errors = validate(&doc);
        assert!(errors.iter().any(|e| e.contains("files scanned")), "{errors:?}");
    }
}
