//! The unified bench-artifact schema validator.
//!
//! Every artifact CI emits — `BENCH_checkpoint.json`, `BENCH_wire.json`,
//! `BENCH_verify.json`, and the `oftt-lint-v1` report — declares its
//! schema in a top-level `"schema"` string and is checked here against
//! both its shape and its acceptance thresholds. The `bench-validate`
//! binary is a thin wrapper over [`validate`]; keeping the arms in one
//! module means a new artifact adds a dispatch case instead of a fourth
//! copy of the `require`/`require_number` scaffolding.
//!
//! Per-schema acceptance rules:
//!
//! * `oftt-bench-checkpoint-v1` — the 10k-vars / 1%-locality cell must
//!   clear the acceptance thresholds (speedup ≥ 5×, wire ratio ≥ 20×,
//!   restore equality in every cell);
//! * `oftt-bench-wire-v1` — the socket runtime must show the acceptance
//!   workload (10k vars at 1% locality) with zero data-frame sheds,
//!   ≥ 20 SIGKILL failover samples, and promotion p99 inside the 3 s
//!   detection budget;
//! * `oftt-bench-wire-v2` — everything v1 requires, plus the reactor
//!   cells: `checkpoint_stream` and `saturation` must ack checkpoints
//!   with zero protocol errors, the saturation aggregate must clear
//!   100× the paced v1 ship rate (≥ 7.86 MB/s), and the optimized
//!   digest must not regress below the byte-at-a-time reference;
//! * `oftt-bench-verify-v1` — every exploration tier must come back clean
//!   (zero violations, no lasso, not capped), the `default` tier must
//!   exhaust a ≥ 10⁶-state space at ≥ 10k states/s, and the refinement
//!   batch must include every export;
//! * `oftt-lint-v1` — the static analyzer's workspace report: zero
//!   non-baselined findings, zero dynamic lock sites missing from the
//!   static acquisition graph, and a scan that actually covered the
//!   workspace (≥ 40 files);
//! * `oftt-bench-campaign-v1` — a campaign sweep's cross-seed
//!   aggregates: every scenario's failover distribution must be ordered
//!   (p50 ≤ p95 ≤ p99 ≤ max), availability in `[0, 1]`, and the
//!   correctness gate must hold — scenarios not expecting violations
//!   must show zero violations and zero non-recovered seeds, scenarios
//!   *expecting* them (seeded-bug demonstrations) must actually surface
//!   at least one violating seed. Optional per-scenario `pin` thresholds
//!   (`min_availability`, `max_failover_p99_ms`, `min_failover_samples`)
//!   turn measured distributions into regression walls.

use crate::json::Json;

fn require<'a>(obj: &'a Json, key: &str, errors: &mut Vec<String>) -> Option<&'a Json> {
    let v = obj.get(key);
    if v.is_none() {
        errors.push(format!("missing key {key:?}"));
    }
    v
}

fn require_number(obj: &Json, key: &str, errors: &mut Vec<String>) -> Option<f64> {
    let v = require(obj, key, errors)?;
    let n = v.as_f64();
    if n.is_none() {
        errors.push(format!("key {key:?} is not a number"));
    }
    n
}

fn validate_path_cost(cell: &Json, key: &str, errors: &mut Vec<String>) {
    let Some(path) = require(cell, key, errors) else { return };
    if path.as_object().is_none() {
        errors.push(format!("key {key:?} is not an object"));
        return;
    }
    require_number(path, "ns_per_period", errors);
    require_number(path, "wire_bytes_per_period", errors);
}

/// Validates a parsed artifact, dispatching on its `"schema"` string.
/// Returns every violation found (empty means the artifact conforms).
pub fn validate(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    if doc.as_object().is_none() {
        return vec!["top level is not an object".into()];
    }
    match require(doc, "schema", &mut errors).and_then(Json::as_str) {
        Some("oftt-bench-checkpoint-v1") => errors.extend(validate_checkpoint(doc)),
        Some("oftt-bench-wire-v1") => errors.extend(validate_wire(doc)),
        Some("oftt-bench-wire-v2") => errors.extend(validate_wire_v2(doc)),
        Some("oftt-bench-verify-v1") => errors.extend(validate_verify(doc)),
        Some("oftt-lint-v1") => errors.extend(validate_lint(doc)),
        Some("oftt-lint-v2") => errors.extend(validate_lint_v2(doc)),
        Some("oftt-bench-lint-v1") => errors.extend(validate_bench_lint(doc)),
        Some("oftt-bench-lint-v2") => errors.extend(validate_bench_lint_v2(doc)),
        Some("oftt-bench-campaign-v1") => errors.extend(validate_campaign(doc)),
        Some(other) => errors.push(format!("unknown schema {other:?}")),
        None => errors.push("schema is not a string".into()),
    }
    errors
}

fn validate_checkpoint(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    require_number(doc, "samples", &mut errors);
    require_number(doc, "periods_per_sample", &mut errors);
    let Some(cells) = require(doc, "cells", &mut errors).and_then(Json::as_array) else {
        errors.push("cells is not an array".into());
        return errors;
    };
    if cells.is_empty() {
        errors.push("cells is empty".into());
    }
    let mut acceptance_cell_seen = false;
    for (i, cell) in cells.iter().enumerate() {
        let mut cell_errors = Vec::new();
        let vars = require_number(cell, "vars", &mut cell_errors);
        let dirty_pct = require_number(cell, "dirty_pct", &mut cell_errors);
        require_number(cell, "var_bytes", &mut cell_errors);
        validate_path_cost(cell, "full", &mut cell_errors);
        validate_path_cost(cell, "dirty", &mut cell_errors);
        let speedup = require_number(cell, "speedup", &mut cell_errors);
        let wire_ratio = require_number(cell, "wire_ratio", &mut cell_errors);
        match require(cell, "restore_ok", &mut cell_errors).and_then(Json::as_bool) {
            Some(true) => {}
            Some(false) => cell_errors.push("restore_ok is false: merged image diverged".into()),
            None => cell_errors.push("restore_ok is not a boolean".into()),
        }
        // The acceptance cell: 10k variables at 1% write locality must
        // show the dirty path ≥5× faster and ≥20× lighter on the wire.
        if vars == Some(10_000.0) && dirty_pct == Some(1.0) {
            acceptance_cell_seen = true;
            if let Some(s) = speedup {
                if s < 5.0 {
                    cell_errors.push(format!("speedup {s:.2} below the 5x acceptance floor"));
                }
            }
            if let Some(w) = wire_ratio {
                if w < 20.0 {
                    cell_errors.push(format!("wire_ratio {w:.2} below the 20x acceptance floor"));
                }
            }
        }
        errors.extend(cell_errors.into_iter().map(|e| format!("cells[{i}]: {e}")));
    }
    if !acceptance_cell_seen {
        errors.push("no acceptance cell (vars=10000, dirty_pct=1) in the grid".into());
    }
    errors
}

fn validate_wire(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();

    if let Some(rtt) = require(doc, "rtt", &mut errors) {
        require_number(rtt, "samples", &mut errors);
        let p50 = require_number(rtt, "p50_us", &mut errors);
        let p99 = require_number(rtt, "p99_us", &mut errors);
        if let (Some(p50), Some(p99)) = (p50, p99) {
            if p50 <= 0.0 {
                errors.push("rtt: p50_us is not positive".into());
            }
            if p99 < p50 {
                errors.push(format!("rtt: p99 {p99:.1} below p50 {p50:.1}"));
            }
        }
    }

    if let Some(ckpt) = require(doc, "checkpoint", &mut errors) {
        let vars = require_number(ckpt, "vars", &mut errors);
        let dirty_pct = require_number(ckpt, "dirty_pct", &mut errors);
        require_number(ckpt, "var_bytes", &mut errors);
        require_number(ckpt, "duration_ms", &mut errors);
        let acked = require_number(ckpt, "ckpts_acked", &mut errors);
        require_number(ckpt, "ckpts_per_sec", &mut errors);
        require_number(ckpt, "ckpt_bytes_per_sec", &mut errors);
        let drops = require_number(ckpt, "backpressure_drops", &mut errors);
        require_number(ckpt, "heartbeats_shed", &mut errors);
        // The acceptance workload, sustained with a drop-free write queue.
        if vars != Some(10_000.0) {
            errors.push(format!("checkpoint: vars {vars:?} is not the 10000-var workload"));
        }
        if dirty_pct != Some(1.0) {
            errors.push(format!("checkpoint: dirty_pct {dirty_pct:?} is not 1% locality"));
        }
        if acked == Some(0.0) {
            errors.push("checkpoint: zero checkpoints acknowledged".into());
        }
        if let Some(drops) = drops {
            if drops > 0.0 {
                errors.push(format!("checkpoint: {drops} data frames shed under load"));
            }
        }
    }

    if let Some(failover) = require(doc, "failover", &mut errors) {
        let kills = require_number(failover, "kills", &mut errors);
        let p50 = require_number(failover, "detection_ms_p50", &mut errors);
        let p99 = require_number(failover, "detection_ms_p99", &mut errors);
        require_number(failover, "detection_ms_max", &mut errors);
        if let Some(kills) = kills {
            if kills < 20.0 {
                errors.push(format!("failover: only {kills} kills; 20 required"));
            }
        }
        if let (Some(p50), Some(p99)) = (p50, p99) {
            if p99 < p50 {
                errors.push(format!("failover: p99 {p99} below p50 {p50}"));
            }
            // Promotion must land inside the smoke test's detection budget.
            if p99 > 3000.0 {
                errors.push(format!("failover: p99 {p99} ms over the 3000 ms budget"));
            }
        }
    }

    errors
}

/// Shape and sanity of one windowed-streaming cell (`checkpoint_stream`
/// or `saturation`). Returns the cell's `bytes_per_sec` for acceptance
/// checks the caller applies.
fn validate_stream_cell(doc: &Json, key: &str, errors: &mut Vec<String>) -> Option<f64> {
    let cell = require(doc, key, errors)?;
    require_number(cell, "conns", errors);
    require_number(cell, "window", errors);
    let io_threads = require_number(cell, "io_threads", errors);
    require_number(cell, "ckpt_wire_bytes", errors);
    require_number(cell, "duration_ms", errors);
    let acked = require_number(cell, "ckpts_acked", errors);
    require_number(cell, "ckpts_per_sec", errors);
    let bytes_per_sec = require_number(cell, "bytes_per_sec", errors);
    let p50 = require_number(cell, "rtt_p50_us", errors);
    let p99 = require_number(cell, "rtt_p99_us", errors);
    require_number(cell, "pool_hit_pct", errors);
    if let Some(t) = io_threads {
        if t < 1.0 {
            errors.push(format!("{key}: io_threads {t} below 1"));
        }
    }
    if acked == Some(0.0) {
        errors.push(format!("{key}: zero checkpoints acknowledged"));
    }
    if let (Some(p50), Some(p99)) = (p50, p99) {
        if p99 < p50 {
            errors.push(format!("{key}: rtt p99 {p99:.1} below p50 {p50:.1}"));
        }
    }
    match require_number(cell, "protocol_errors", errors) {
        Some(e) if e > 0.0 => errors.push(format!("{key}: {e} protocol error(s) under load")),
        _ => {}
    }
    bytes_per_sec
}

fn validate_wire_v2(doc: &Json) -> Vec<String> {
    let mut errors = validate_wire(doc);
    validate_stream_cell(doc, "checkpoint_stream", &mut errors);
    let sat_bytes = validate_stream_cell(doc, "saturation", &mut errors);
    // The reactor acceptance floor: the saturated aggregate must beat the
    // paced v1 ship rate (~78.6 KB/s) by at least two orders of magnitude.
    if let Some(bytes) = sat_bytes {
        if bytes < 7_860_000.0 {
            errors.push(format!("saturation: {bytes:.0} B/s below the 7.86 MB/s acceptance floor"));
        }
    }
    if let Some(digest) = require(doc, "digest", &mut errors) {
        require_number(digest, "payload_mb", &mut errors);
        require_number(digest, "reference_mb_per_sec", &mut errors);
        require_number(digest, "optimized_mb_per_sec", &mut errors);
        match require_number(digest, "speedup", &mut errors) {
            Some(s) if s < 1.0 => {
                errors.push(format!("digest: optimized path {s:.2}x slower than the reference"));
            }
            _ => {}
        }
    }
    errors
}

fn validate_verify(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    let Some(cells) = require(doc, "cells", &mut errors).and_then(Json::as_array) else {
        errors.push("cells is not an array".into());
        return errors;
    };
    if cells.is_empty() {
        errors.push("cells is empty".into());
    }
    let mut default_tier_seen = false;
    for (i, cell) in cells.iter().enumerate() {
        let mut cell_errors = Vec::new();
        let name = require(cell, "name", &mut cell_errors).and_then(Json::as_str);
        let states = require_number(cell, "states", &mut cell_errors);
        require_number(cell, "transitions", &mut cell_errors);
        require_number(cell, "por_reduced", &mut cell_errors);
        require_number(cell, "truncated", &mut cell_errors);
        require_number(cell, "elapsed_ms", &mut cell_errors);
        let rate = require_number(cell, "states_per_sec", &mut cell_errors);
        // Every tier is a verification verdict: it must be clean.
        match require_number(cell, "violations", &mut cell_errors) {
            Some(v) if v > 0.0 => cell_errors.push(format!("{v} safety violations")),
            _ => {}
        }
        match require(cell, "lasso", &mut cell_errors).and_then(Json::as_bool) {
            Some(true) => cell_errors.push("a persistent dual-primary lasso was found".into()),
            Some(false) => {}
            None => cell_errors.push("lasso is not a boolean".into()),
        }
        // The acceptance tier: the full default budget must exhaust a
        // nontrivial space at a usable rate.
        if name == Some("default") {
            default_tier_seen = true;
            if let Some(s) = states {
                if s < 1_000_000.0 {
                    cell_errors.push(format!(
                        "default tier explored only {s} states; the full budget \
                         space is over a million"
                    ));
                }
            }
            if let Some(r) = rate {
                if r < 10_000.0 {
                    cell_errors.push(format!("{r:.0} states/s below the 10k floor"));
                }
            }
        }
        errors.extend(cell_errors.into_iter().map(|e| format!("cells[{i}]: {e}")));
    }
    if !default_tier_seen {
        errors.push("no default-budget tier in the cells".into());
    }

    let Some(refinement) = require(doc, "refinement", &mut errors) else {
        return errors;
    };
    let exports = require_number(refinement, "exports", &mut errors);
    require_number(refinement, "observations", &mut errors);
    require_number(refinement, "elapsed_ms", &mut errors);
    require_number(refinement, "exports_per_sec", &mut errors);
    if exports == Some(0.0) {
        errors.push("refinement: zero exports checked".into());
    }
    match require_number(refinement, "failures", &mut errors) {
        Some(f) if f > 0.0 => {
            errors.push(format!("refinement: {f} export(s) failed trace inclusion"));
        }
        _ => {}
    }
    errors
}

fn validate_lint(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    let files = require_number(doc, "files_scanned", &mut errors);
    require_number(doc, "suppressed", &mut errors);
    // The CI artifact comes from the clean tree: a scan that barely
    // covered the workspace means the walker broke, not that the code
    // shrank to nothing.
    if let Some(files) = files {
        if files < 40.0 {
            errors.push(format!("only {files} files scanned; the workspace has far more"));
        }
    }
    match require(doc, "findings", &mut errors).and_then(Json::as_array) {
        Some(findings) => {
            for (i, finding) in findings.iter().enumerate() {
                let mut f_errors = Vec::new();
                require(finding, "rule", &mut f_errors).and_then(Json::as_str);
                require(finding, "file", &mut f_errors).and_then(Json::as_str);
                require_number(finding, "line", &mut f_errors);
                require(finding, "message", &mut f_errors).and_then(Json::as_str);
                errors.extend(f_errors.into_iter().map(|e| format!("findings[{i}]: {e}")));
            }
            // The acceptance verdict: zero non-baselined findings.
            if !findings.is_empty() {
                errors.push(format!("{} non-baselined finding(s) in the report", findings.len()));
            }
        }
        None => errors.push("findings is not an array".into()),
    }
    if let Some(graph) = require(doc, "lock_graph", &mut errors) {
        let locks = require_number(graph, "locks", &mut errors);
        require_number(graph, "edges", &mut errors);
        if locks == Some(0.0) {
            errors.push("lock_graph: no static lock sites found".into());
        }
    }
    if let Some(dynamic) = require(doc, "dynamic_locks", &mut errors) {
        require_number(dynamic, "checked", &mut errors);
        match require_number(dynamic, "uncovered", &mut errors) {
            Some(u) if u > 0.0 => {
                errors.push(format!(
                    "dynamic_locks: {u} dynamically observed lock site(s) missing \
                     from the static acquisition graph"
                ));
            }
            _ => {}
        }
    }
    errors
}

fn validate_lint_v2(doc: &Json) -> Vec<String> {
    // v2 is v1 plus the flow-sensitive dataflow stage: everything the
    // v1 report promised still holds, and on top of it the CFG/typestate
    // counters must show the stage ran non-vacuously over the tree.
    let mut errors = validate_lint(doc);
    if let Some(dataflow) = require(doc, "dataflow", &mut errors) {
        let floors: &[(&str, f64)] = &[
            ("cfg_blocks", 1000.0),
            ("pool_sites", 3.0),
            ("pool_tracked", 2.0),
            ("dfa_transitions", 3.0),
        ];
        for &(key, floor) in floors {
            if let Some(n) = require_number(dataflow, key, &mut errors) {
                if n < floor {
                    errors.push(format!("dataflow: {key} is {n}, below the floor {floor}"));
                }
            }
        }
        require_number(dataflow, "dataflow_ms", &mut errors);
    }
    if let Some(dynamic) = require(doc, "dynamic_pools", &mut errors) {
        require_number(dynamic, "checked", &mut errors);
        match require_number(dynamic, "uncovered", &mut errors) {
            Some(u) if u > 0.0 => {
                errors.push(format!(
                    "dynamic_pools: {u} dynamically observed pool op(s) missing \
                     from the static pool-site inventory"
                ));
            }
            _ => {}
        }
    }
    errors
}

fn validate_bench_lint(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    // Coverage floors: a scan that saw a toy-sized universe means the
    // walker or the call-graph builder broke, not that the code shrank.
    let floors: &[(&str, f64)] = &[
        ("files_scanned", 40.0),
        ("functions", 500.0),
        ("call_edges", 1000.0),
        ("fixpoint_iterations", 2.0),
        ("reactor_roots", 1.0),
        ("reactor_reachable", 10.0),
    ];
    for &(key, floor) in floors {
        if let Some(n) = require_number(doc, key, &mut errors) {
            if n < floor {
                errors.push(format!("{key} is {n}, below the coverage floor {floor}"));
            }
        }
    }
    // The acceptance verdict: the tree is clean modulo the checked-in
    // baseline, and the analysis finished in measurable time.
    match require_number(doc, "findings", &mut errors) {
        Some(n) if n > 0.0 => errors.push(format!("{n} non-baselined finding(s)")),
        _ => {}
    }
    require_number(doc, "suppressed", &mut errors);
    require_number(doc, "elapsed_ms", &mut errors);
    match require_number(doc, "files_per_sec", &mut errors) {
        Some(n) if n <= 0.0 => errors.push("files_per_sec is not positive".into()),
        _ => {}
    }
    errors
}

fn validate_bench_lint_v2(doc: &Json) -> Vec<String> {
    // v1 floors plus the flow-sensitive coverage counters. A stale
    // baseline entry is as much a rot signal as a missed finding: the
    // defect it excused is gone, so the excuse must go too.
    let mut errors = validate_bench_lint(doc);
    let floors: &[(&str, f64)] = &[
        ("cfg_blocks", 1000.0),
        ("pool_sites", 3.0),
        ("pool_tracked", 2.0),
        ("dfa_transitions", 3.0),
    ];
    for &(key, floor) in floors {
        if let Some(n) = require_number(doc, key, &mut errors) {
            if n < floor {
                errors.push(format!("{key} is {n}, below the coverage floor {floor}"));
            }
        }
    }
    require_number(doc, "dataflow_ms", &mut errors);
    match require_number(doc, "stale_baseline", &mut errors) {
        Some(n) if n > 0.0 => {
            errors.push(format!("{n} stale baseline entr(ies) match no current finding"));
        }
        _ => {}
    }
    errors
}

fn validate_campaign(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    require_number(doc, "total_runs", &mut errors);
    require_number(doc, "elapsed_ms", &mut errors);
    require_number(doc, "jobs", &mut errors);
    let Some(scenarios) = require(doc, "scenarios", &mut errors).and_then(Json::as_array) else {
        errors.push("scenarios is not an array".into());
        return errors;
    };
    if scenarios.is_empty() {
        errors.push("scenarios is empty".into());
    }
    for (i, sc) in scenarios.iter().enumerate() {
        let mut sc_errors = Vec::new();
        let name = require(sc, "name", &mut sc_errors).and_then(Json::as_str).unwrap_or("?");
        let seeds = require_number(sc, "seeds", &mut sc_errors);
        require_number(sc, "horizon_ms", &mut sc_errors);
        let recovered = require_number(sc, "recovered", &mut sc_errors);
        let non_recovered = require_number(sc, "non_recovered", &mut sc_errors);
        let violations = require_number(sc, "violations", &mut sc_errors);
        let violating_seeds = require_number(sc, "violating_seeds", &mut sc_errors);
        let samples = require_number(sc, "failover_samples", &mut sc_errors);
        let p50 = require_number(sc, "failover_ms_p50", &mut sc_errors);
        let p95 = require_number(sc, "failover_ms_p95", &mut sc_errors);
        let p99 = require_number(sc, "failover_ms_p99", &mut sc_errors);
        let max = require_number(sc, "failover_ms_max", &mut sc_errors);
        let avail_mean = require_number(sc, "availability_mean", &mut sc_errors);
        let avail_min = require_number(sc, "availability_min", &mut sc_errors);
        let expect = match require(sc, "expect_violations", &mut sc_errors).and_then(Json::as_bool)
        {
            Some(b) => b,
            None => {
                sc_errors.push("expect_violations is not a boolean".into());
                false
            }
        };
        if seeds.is_some_and(|s| s < 1.0) {
            sc_errors.push("seeds below 1".into());
        }
        if let (Some(seeds), Some(r), Some(nr)) = (seeds, recovered, non_recovered) {
            if r + nr != seeds {
                sc_errors.push(format!("recovered {r} + non_recovered {nr} != seeds {seeds}"));
            }
        }
        // The distribution must be internally ordered; a crossed quantile
        // means the aggregator, not the protocol, broke.
        if let (Some(p50), Some(p95), Some(p99), Some(max)) = (p50, p95, p99, max) {
            if !(p50 <= p95 && p95 <= p99 && p99 <= max) {
                sc_errors.push(format!(
                    "failover quantiles out of order: p50 {p50} p95 {p95} p99 {p99} max {max}"
                ));
            }
        }
        for (key, v) in [("availability_mean", avail_mean), ("availability_min", avail_min)] {
            if v.is_some_and(|v| !(0.0..=1.0).contains(&v)) {
                sc_errors.push(format!("{key} outside [0, 1]"));
            }
        }
        if let (Some(mean), Some(min)) = (avail_mean, avail_min) {
            if min > mean {
                sc_errors.push(format!("availability_min {min} above mean {mean}"));
            }
        }
        // The correctness gate. A fault-free campaign that shows a single
        // invariant violation or a seed that never re-elected is a
        // protocol regression; a seeded-bug campaign that shows *no*
        // violation means the instrument went blind.
        if expect {
            if violating_seeds == Some(0.0) {
                sc_errors.push(
                    "expected violations but no seed surfaced one (instrument blind?)".into(),
                );
            }
        } else {
            if let Some(v) = violations {
                if v > 0.0 {
                    sc_errors.push(format!("{v} invariant violation(s) across the sweep"));
                }
            }
            if let Some(nr) = non_recovered {
                if nr > 0.0 {
                    sc_errors.push(format!("{nr} seed(s) never recovered a primary"));
                }
            }
        }
        // Optional pinned thresholds: the regression wall.
        if let Some(pin) = sc.get("pin") {
            if pin.as_object().is_none() {
                sc_errors.push("pin is not an object".into());
            }
            if let Some(floor) = pin.get("min_availability").and_then(Json::as_f64) {
                if avail_min.is_some_and(|v| v < floor) {
                    sc_errors.push(format!(
                        "availability_min {} below the pinned floor {floor}",
                        avail_min.unwrap_or(0.0)
                    ));
                }
            }
            if let Some(ceil) = pin.get("max_failover_p99_ms").and_then(Json::as_f64) {
                if p99.is_some_and(|v| v > ceil) {
                    sc_errors.push(format!(
                        "failover_ms_p99 {} over the pinned ceiling {ceil}",
                        p99.unwrap_or(0.0)
                    ));
                }
            }
            // Scenarios that exist to measure failovers pin a sample
            // floor; campaigns where the primary legitimately never dies
            // (pure partitions) just don't.
            if let Some(floor) = pin.get("min_failover_samples").and_then(Json::as_f64) {
                if samples.is_some_and(|v| v < floor) {
                    sc_errors.push(format!(
                        "failover_samples {} below the pinned floor {floor}",
                        samples.unwrap_or(0.0)
                    ));
                }
            }
        }
        errors.extend(sc_errors.into_iter().map(|e| format!("scenarios[{i}] ({name}): {e}")));
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn unknown_schema_is_rejected() {
        let doc = parse(r#"{"schema": "mystery-v9"}"#).unwrap();
        let errors = validate(&doc);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("unknown schema"));
    }

    fn bench_lint_doc(findings: &str, functions: &str) -> String {
        format!(
            r#"{{
              "schema": "oftt-bench-lint-v1",
              "runs": 3,
              "files_scanned": 164,
              "functions": {functions},
              "call_edges": 3600,
              "fixpoint_iterations": 10,
              "reactor_roots": 7,
              "reactor_reachable": 60,
              "findings": {findings},
              "suppressed": 14,
              "elapsed_ms": 120,
              "files_per_sec": 1366
            }}"#
        )
    }

    #[test]
    fn conforming_bench_lint_doc_passes() {
        let doc = parse(&bench_lint_doc("0", "1415")).unwrap();
        assert_eq!(validate(&doc), Vec::<String>::new());
    }

    #[test]
    fn bench_lint_rejects_non_baselined_findings_and_thin_coverage() {
        let doc = parse(&bench_lint_doc("2", "1415")).unwrap();
        let errors = validate(&doc);
        assert!(errors.iter().any(|e| e.contains("non-baselined")), "{errors:?}");

        let doc = parse(&bench_lint_doc("0", "3")).unwrap();
        let errors = validate(&doc);
        assert!(errors.iter().any(|e| e.contains("coverage floor")), "{errors:?}");
    }

    fn bench_lint_v2_doc(cfg_blocks: &str, stale: &str) -> String {
        format!(
            r#"{{
              "schema": "oftt-bench-lint-v2",
              "runs": 3,
              "files_scanned": 170,
              "functions": 1450,
              "call_edges": 3700,
              "fixpoint_iterations": 10,
              "reactor_roots": 7,
              "reactor_reachable": 60,
              "cfg_blocks": {cfg_blocks},
              "dataflow_ms": 4,
              "pool_sites": 5,
              "pool_tracked": 3,
              "dfa_transitions": 3,
              "findings": 0,
              "suppressed": 8,
              "stale_baseline": {stale},
              "elapsed_ms": 120,
              "files_per_sec": 1366
            }}"#
        )
    }

    #[test]
    fn conforming_bench_lint_v2_doc_passes() {
        let doc = parse(&bench_lint_v2_doc("2400", "0")).unwrap();
        assert_eq!(validate(&doc), Vec::<String>::new());
    }

    #[test]
    fn bench_lint_v2_rejects_thin_dataflow_and_stale_baseline() {
        let doc = parse(&bench_lint_v2_doc("12", "0")).unwrap();
        let errors = validate(&doc);
        assert!(errors.iter().any(|e| e.contains("cfg_blocks")), "{errors:?}");

        let doc = parse(&bench_lint_v2_doc("2400", "2")).unwrap();
        let errors = validate(&doc);
        assert!(errors.iter().any(|e| e.contains("stale baseline")), "{errors:?}");
    }

    fn wire_v2_doc(sat_bytes_per_sec: &str, protocol_errors: &str) -> String {
        format!(
            r#"{{
              "schema": "oftt-bench-wire-v2",
              "rtt": {{"samples": 2000, "p50_us": 21.0, "p99_us": 90.0}},
              "checkpoint": {{
                "vars": 10000, "var_bytes": 64, "dirty_pct": 1.0,
                "duration_ms": 3000, "ckpts_acked": 30, "ckpts_per_sec": 10.0,
                "ckpt_bytes_per_sec": 78559, "backpressure_drops": 0,
                "heartbeats_shed": 0
              }},
              "checkpoint_stream": {{
                "conns": 1, "window": 32, "io_threads": 2,
                "ckpt_wire_bytes": 7728, "duration_ms": 2000,
                "ckpts_acked": 40000, "ckpts_per_sec": 20000.0,
                "bytes_per_sec": 150000000, "rtt_p50_us": 1300.0,
                "rtt_p99_us": 2400.0, "protocol_errors": 0,
                "pool_hit_pct": 99.0
              }},
              "saturation": {{
                "conns": 400, "window": 8, "io_threads": 4,
                "ckpt_wire_bytes": 7728, "duration_ms": 3000,
                "ckpts_acked": 60000, "ckpts_per_sec": 20000.0,
                "bytes_per_sec": {sat_bytes_per_sec}, "rtt_p50_us": 20000.0,
                "rtt_p99_us": 45000.0, "protocol_errors": {protocol_errors},
                "pool_hit_pct": 99.0
              }},
              "digest": {{
                "payload_mb": 64, "reference_mb_per_sec": 284.0,
                "optimized_mb_per_sec": 1879.0, "speedup": 6.6
              }},
              "failover": {{
                "kills": 20, "detection_ms_p50": 395,
                "detection_ms_p99": 406, "detection_ms_max": 410
              }}
            }}"#
        )
    }

    #[test]
    fn clean_wire_v2_report_conforms() {
        let doc = parse(&wire_v2_doc("150000000", "0")).unwrap();
        assert!(validate(&doc).is_empty(), "{:?}", validate(&doc));
    }

    #[test]
    fn wire_v2_below_saturation_floor_fails() {
        let doc = parse(&wire_v2_doc("500000", "0")).unwrap();
        let errors = validate(&doc);
        assert!(errors.iter().any(|e| e.contains("acceptance floor")), "{errors:?}");
    }

    #[test]
    fn wire_v2_with_protocol_errors_fails() {
        let doc = parse(&wire_v2_doc("150000000", "3")).unwrap();
        let errors = validate(&doc);
        assert!(errors.iter().any(|e| e.contains("protocol error")), "{errors:?}");
    }

    #[test]
    fn clean_lint_report_conforms() {
        let doc = parse(
            r#"{
              "schema": "oftt-lint-v1",
              "files_scanned": 90,
              "suppressed": 2,
              "findings": [],
              "lock_graph": {"locks": 7, "edges": 3},
              "dynamic_locks": {"checked": 2, "uncovered": 0}
            }"#,
        )
        .unwrap();
        assert!(validate(&doc).is_empty(), "{:?}", validate(&doc));
    }

    #[test]
    fn lint_report_with_findings_fails_acceptance() {
        let doc = parse(
            r#"{
              "schema": "oftt-lint-v1",
              "files_scanned": 90,
              "suppressed": 0,
              "findings": [{"rule": "panic-path", "file": "a.rs", "line": 3,
                            "message": "unwrap on a hot path"}],
              "lock_graph": {"locks": 7, "edges": 3},
              "dynamic_locks": {"checked": 2, "uncovered": 0}
            }"#,
        )
        .unwrap();
        let errors = validate(&doc);
        assert!(errors.iter().any(|e| e.contains("non-baselined finding")), "{errors:?}");
    }

    #[test]
    fn lint_report_with_uncovered_dynamic_lock_fails() {
        let doc = parse(
            r#"{
              "schema": "oftt-lint-v1",
              "files_scanned": 90,
              "suppressed": 0,
              "findings": [],
              "lock_graph": {"locks": 7, "edges": 3},
              "dynamic_locks": {"checked": 2, "uncovered": 1}
            }"#,
        )
        .unwrap();
        let errors = validate(&doc);
        assert!(errors.iter().any(|e| e.contains("missing")), "{errors:?}");
    }

    fn lint_v2_doc(dfa_transitions: &str, pool_uncovered: &str) -> String {
        format!(
            r#"{{
              "schema": "oftt-lint-v2",
              "files_scanned": 90,
              "suppressed": 2,
              "findings": [],
              "lock_graph": {{"locks": 7, "edges": 3}},
              "dynamic_locks": {{"checked": 2, "uncovered": 0}},
              "dataflow": {{"cfg_blocks": 2400, "dataflow_ms": 4, "pool_sites": 5,
                           "pool_tracked": 3, "dfa_transitions": {dfa_transitions}}},
              "dynamic_pools": {{"checked": 2, "uncovered": {pool_uncovered}}}
            }}"#
        )
    }

    #[test]
    fn clean_lint_v2_report_conforms() {
        let doc = parse(&lint_v2_doc("3", "0")).unwrap();
        assert!(validate(&doc).is_empty(), "{:?}", validate(&doc));
    }

    #[test]
    fn lint_v2_report_with_thin_dfa_coverage_fails() {
        let doc = parse(&lint_v2_doc("0", "0")).unwrap();
        let errors = validate(&doc);
        assert!(errors.iter().any(|e| e.contains("dfa_transitions")), "{errors:?}");
    }

    #[test]
    fn lint_v2_report_with_uncovered_dynamic_pool_op_fails() {
        let doc = parse(&lint_v2_doc("3", "1")).unwrap();
        let errors = validate(&doc);
        assert!(
            errors.iter().any(|e| e.contains("pool op") && e.contains("missing")),
            "{errors:?}"
        );
    }

    fn campaign_doc(scenario: &str) -> String {
        format!(
            r#"{{
              "schema": "oftt-bench-campaign-v1",
              "total_runs": 200,
              "elapsed_ms": 41000,
              "jobs": 8,
              "scenarios": [{scenario}]
            }}"#
        )
    }

    fn clean_scenario(extra: &str) -> String {
        format!(
            r#"{{
              "name": "partition_storm",
              "seeds": 100, "horizon_ms": 40000,
              "expect_violations": false,
              "recovered": 100, "non_recovered": 0,
              "violations": 0, "violating_seeds": 0,
              "failover_samples": 180,
              "failover_ms_p50": 610.0, "failover_ms_p95": 840.0,
              "failover_ms_p99": 910.0, "failover_ms_max": 1180.0,
              "availability_mean": 0.991, "availability_min": 0.972{extra}
            }}"#
        )
    }

    #[test]
    fn clean_campaign_report_conforms() {
        let doc = parse(&campaign_doc(&clean_scenario(""))).unwrap();
        assert!(validate(&doc).is_empty(), "{:?}", validate(&doc));
        // With pins the measured values clear.
        let pinned = clean_scenario(
            r#", "pin": {"min_availability": 0.9, "max_failover_p99_ms": 3000,
                         "min_failover_samples": 100}"#,
        );
        let doc = parse(&campaign_doc(&pinned)).unwrap();
        assert!(validate(&doc).is_empty(), "{:?}", validate(&doc));
    }

    #[test]
    fn campaign_violations_and_non_recovery_fail_the_gate() {
        let sc = clean_scenario("")
            .replace(r#""violations": 0"#, r#""violations": 2"#)
            .replace(r#""violating_seeds": 0"#, r#""violating_seeds": 1"#);
        let doc = parse(&campaign_doc(&sc)).unwrap();
        assert!(validate(&doc).iter().any(|e| e.contains("invariant violation")));

        let sc = clean_scenario("")
            .replace(r#""recovered": 100"#, r#""recovered": 97"#)
            .replace(r#""non_recovered": 0"#, r#""non_recovered": 3"#);
        let doc = parse(&campaign_doc(&sc)).unwrap();
        assert!(validate(&doc).iter().any(|e| e.contains("never recovered")));
    }

    #[test]
    fn campaign_expecting_violations_must_surface_one() {
        let sc = clean_scenario("")
            .replace(r#""expect_violations": false"#, r#""expect_violations": true"#);
        let doc = parse(&campaign_doc(&sc)).unwrap();
        let errors = validate(&doc);
        assert!(errors.iter().any(|e| e.contains("instrument blind")), "{errors:?}");
    }

    #[test]
    fn campaign_crossed_quantiles_and_broken_pins_fail() {
        let sc = clean_scenario("")
            .replace(r#""failover_ms_p95": 840.0"#, r#""failover_ms_p95": 2000.0"#);
        let doc = parse(&campaign_doc(&sc)).unwrap();
        assert!(validate(&doc).iter().any(|e| e.contains("quantiles out of order")));

        let pinned = clean_scenario(
            r#", "pin": {"min_availability": 0.99, "max_failover_p99_ms": 500,
                         "min_failover_samples": 500}"#,
        );
        let doc = parse(&campaign_doc(&pinned)).unwrap();
        let errors = validate(&doc);
        assert!(errors.iter().any(|e| e.contains("availability_min") && e.contains("floor")));
        assert!(errors.iter().any(|e| e.contains("pinned ceiling")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("failover_samples") && e.contains("floor")));
    }

    #[test]
    fn thin_lint_scan_is_rejected() {
        let doc = parse(
            r#"{
              "schema": "oftt-lint-v1",
              "files_scanned": 3,
              "suppressed": 0,
              "findings": [],
              "lock_graph": {"locks": 1, "edges": 0},
              "dynamic_locks": {"checked": 2, "uncovered": 0}
            }"#,
        )
        .unwrap();
        let errors = validate(&doc);
        assert!(errors.iter().any(|e| e.contains("files scanned")), "{errors:?}");
    }
}
