//! Microbenchmarks of the checkpoint machinery: content diffing, checksum,
//! and store installation — the per-period cost on the primary and backup
//! (experiment E5's mechanism in isolation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ds_sim::prelude::SimTime;
use oftt::checkpoint::{checksum, diff, Checkpoint, CheckpointPayload, CheckpointStore, VarSet};

fn image(vars: usize, bytes_per_var: usize, stamp: u8) -> VarSet {
    (0..vars).map(|i| (format!("var{i:05}"), vec![stamp; bytes_per_var].into())).collect()
}

/// `dirty` variables changed between the two images.
fn dirtied(base: &VarSet, dirty: usize) -> VarSet {
    let mut out = base.clone();
    for (i, (_, bytes)) in out.iter_mut().enumerate() {
        if i < dirty {
            let mut v = bytes.to_vec();
            v[0] ^= 0xFF;
            *bytes = v.into();
        }
    }
    out
}

fn bench_diff(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint/diff");
    for (vars, dirty) in [(256usize, 8usize), (256, 256), (4096, 64)] {
        let base = image(vars, 64, 1);
        let next = dirtied(&base, dirty);
        group.throughput(Throughput::Elements(vars as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{vars}vars_{dirty}dirty")),
            &(base, next),
            |b, (base, next)| {
                b.iter(|| diff(std::hint::black_box(base), std::hint::black_box(next)))
            },
        );
    }
    group.finish();
}

fn bench_checksum(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint/checksum");
    for vars in [64usize, 1024] {
        let img = image(vars, 64, 3);
        let bytes: u64 = img.values().map(|v| v.len() as u64).sum();
        group.throughput(Throughput::Bytes(bytes));
        group.bench_with_input(BenchmarkId::from_parameter(vars), &img, |b, img| {
            b.iter(|| checksum(std::hint::black_box(img)))
        });
    }
    group.finish();
}

fn bench_store_offer(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint/store_offer");
    // Install a full image then a stream of deltas — the backup's steady
    // state.
    group.bench_function("full_then_64_deltas", |b| {
        let full = Checkpoint::new(1, 1, SimTime::ZERO, CheckpointPayload::Full(image(256, 64, 1)));
        let deltas: Vec<Checkpoint> = (2..66)
            .map(|seq| {
                Checkpoint::new(
                    1,
                    seq,
                    SimTime::from_millis(seq),
                    CheckpointPayload::Delta(image(4, 64, seq as u8)),
                )
            })
            .collect();
        b.iter(|| {
            let mut store = CheckpointStore::new();
            store.offer(std::hint::black_box(&full));
            for delta in &deltas {
                store.offer(std::hint::black_box(delta));
            }
            store.position()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_diff, bench_checksum, bench_store_offer);
criterion_main!(benches);
