//! Microbenchmarks of the marshaling codec (the NDR analog): RPC argument
//! and checkpoint payload encode/decode throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ds_sim::prelude::SimTime;
use plant::telephone::CallEvent;

fn call_event() -> CallEvent {
    CallEvent::Started { caller: 7, line: 3, at: SimTime::from_millis(123_456) }
}

fn checkpoint_image(vars: usize, bytes_per_var: usize) -> oftt::checkpoint::VarSet {
    (0..vars).map(|i| (format!("var{i:05}"), vec![0xAB; bytes_per_var].into())).collect()
}

fn bench_call_event(c: &mut Criterion) {
    let event = call_event();
    let encoded = comsim::marshal::to_bytes(&event).unwrap();
    let mut group = c.benchmark_group("marshal/call_event");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| comsim::marshal::to_bytes(std::hint::black_box(&event)).unwrap())
    });
    group.bench_function("decode", |b| {
        b.iter(|| comsim::marshal::from_bytes::<CallEvent>(std::hint::black_box(&encoded)).unwrap())
    });
    group.finish();
}

fn bench_checkpoint_images(c: &mut Criterion) {
    let mut group = c.benchmark_group("marshal/checkpoint_image");
    for vars in [16usize, 256, 4096] {
        let image = checkpoint_image(vars, 64);
        let encoded = comsim::marshal::to_bytes(&image).unwrap();
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", vars), &image, |b, image| {
            b.iter(|| comsim::marshal::to_bytes(std::hint::black_box(image)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("decode", vars), &encoded, |b, encoded| {
            b.iter(|| {
                comsim::marshal::from_bytes::<oftt::checkpoint::VarSet>(std::hint::black_box(
                    encoded,
                ))
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_call_event, bench_checkpoint_images);
criterion_main!(benches);
