//! Simulator-throughput benches: how many simulated events per wall-second
//! the substrate sustains — the budget every experiment spends from.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ds_net::link::Link;
use ds_net::node::NodeConfig;
use ds_net::prelude::{ClusterSim, Endpoint, Envelope, Process, ProcessEnv, ProcessEnvExt};
use ds_sim::prelude::{SimDuration, SimTime};

/// Two chatty processes exchanging messages as fast as delivery allows.
struct Chatter {
    peer: Endpoint,
}

impl Process for Chatter {
    fn on_start(&mut self, env: &mut dyn ProcessEnv) {
        env.send_msg(self.peer.clone(), 0u64);
    }
    fn on_message(&mut self, envelope: Envelope, env: &mut dyn ProcessEnv) {
        if let Ok(n) = envelope.body.downcast::<u64>() {
            env.send_msg(envelope.from, n + 1);
        }
    }
}

fn build_chatter(seed: u64) -> ClusterSim {
    let mut cs = ClusterSim::new(seed);
    let a = cs.add_node(NodeConfig::default());
    let b = cs.add_node(NodeConfig::default());
    cs.connect(a, b, Link::dual());
    let peer_b = Endpoint::new(b, "chat");
    cs.register_service(
        a,
        "chat",
        Box::new(move || Box::new(Chatter { peer: peer_b.clone() })),
        true,
    );
    let peer_a = Endpoint::new(a, "chat");
    cs.register_service(
        b,
        "chat",
        Box::new(move || Box::new(Chatter { peer: peer_a.clone() })),
        true,
    );
    cs
}

fn bench_message_round_trips(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/message_round_trips");
    // ~1 RTT per ~0.8 ms of sim time; 10 sim-seconds ≈ 12k deliveries.
    group.throughput(Throughput::Elements(12_000));
    group.sample_size(20);
    group.bench_function("10_sim_seconds", |b| {
        b.iter(|| {
            let mut cs = build_chatter(1);
            cs.start();
            cs.run_until(SimTime::from_secs(10));
            cs.cluster().counters().delivered
        })
    });
    group.finish();
}

/// Timer-heavy workload: many periodic processes.
struct Ticker;
impl Process for Ticker {
    fn on_start(&mut self, env: &mut dyn ProcessEnv) {
        env.set_timer(SimDuration::from_millis(10), 1);
    }
    fn on_timer(&mut self, _token: u64, env: &mut dyn ProcessEnv) {
        env.set_timer(SimDuration::from_millis(10), 1);
    }
}

fn bench_timer_wheel(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/timers");
    group.throughput(Throughput::Elements(32 * 1000));
    group.sample_size(20);
    group.bench_function("32_tickers_10_sim_seconds", |b| {
        b.iter(|| {
            let mut cs = ClusterSim::new(2);
            let node = cs.add_node(NodeConfig::default());
            for i in 0..32 {
                cs.register_service(node, format!("tick{i}"), Box::new(|| Box::new(Ticker)), true);
            }
            cs.start();
            cs.run_until(SimTime::from_secs(10))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_message_round_trips, bench_timer_wheel);
criterion_main!(benches);
