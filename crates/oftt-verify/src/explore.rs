//! Exhaustive breadth-first exploration of the abstract state space.
//!
//! The explorer enumerates every reachable [`AbsState`] under the given
//! bounds and fault budgets, deduplicating by full-state hashing,
//! recording a shortest action path to each state, and collecting every
//! safety violation (first — i.e. shortest — occurrence per invariant).
//!
//! ## Partial-order reduction: pure-stutter deliveries
//!
//! When a state has a delivery whose only effect is removing the
//! message — no role change, no reply, no clock reset that survives
//! normalization, no observation, no violation — that delivery commutes
//! with every other enabled action and is invisible to every property
//! we check (all properties read node state, and the successor differs
//! from the source only in the channel). Expanding *only* that action
//! from such a state is therefore sound: any interleaving that defers
//! the delivery reaches the same states through a permuted path. The
//! cycle-closing proviso of ample-set theory holds trivially because
//! the reduced action strictly shrinks the total queued-message count,
//! so a cycle of reduced-only states is impossible.

use std::collections::HashMap;
use std::collections::VecDeque;

use oftt::transition::Defects;

use crate::model::{successors, AbsState, Action, Bounds, Obs, Step};

/// One outgoing edge of an explored state.
#[derive(Debug, Clone)]
pub struct Edge {
    /// The action taken.
    pub action: Action,
    /// The announcement it produced, if any.
    pub obs: Option<Obs>,
    /// Index of the successor state.
    pub target: u32,
}

/// A safety violation with a shortest replayable path from the initial
/// state (the violating action is the last element).
#[derive(Debug, Clone)]
pub struct FoundViolation {
    /// Stable invariant name.
    pub invariant: &'static str,
    /// The offending values at the violating transition.
    pub detail: String,
    /// Shortest action path from the initial state, inclusive.
    pub path: Vec<Action>,
}

/// The result of an exhaustive exploration.
#[derive(Debug)]
pub struct Explored {
    /// Every distinct reachable state, indexed by discovery order
    /// (index 0 is the initial state).
    pub states: Vec<AbsState>,
    /// Outgoing edges per state, aligned with `states`.
    pub edges: Vec<Vec<Edge>>,
    /// First (shortest) violation found per invariant name.
    pub violations: Vec<FoundViolation>,
    /// Transitions counted (not followed) because they left the
    /// bounded term space.
    pub truncated: u64,
    /// States expanded through a single pure-stutter delivery instead
    /// of their full successor set.
    pub por_reduced: u64,
    /// Total transitions taken (after reduction).
    pub transitions: u64,
    /// `true` if exploration stopped at the state cap rather than
    /// exhausting the space — every count below it is then a lower
    /// bound, not a verdict.
    pub capped: bool,
}

impl Explored {
    /// Reconstructs the shortest action path from the initial state to
    /// `target` using the recorded parent links.
    fn path_to(parents: &[Option<(u32, Action)>], target: u32) -> Vec<Action> {
        let mut path = Vec::new();
        let mut at = target;
        while let Some((prev, action)) = parents[at as usize] {
            path.push(action);
            at = prev;
        }
        path.reverse();
        path
    }
}

/// A delivery is a pure stutter when its step has no observation, no
/// violations, and its successor equals the source state with just that
/// message removed.
fn pure_stutter(source: &AbsState, action: Action, step: &Step) -> bool {
    let Action::Deliver(dir, i) = action else { return false };
    if step.obs.is_some() || !step.violations.is_empty() {
        return false;
    }
    let Some(next) = &step.next else { return false };
    let mut expect = source.clone();
    expect.chan[dir.index()].remove(usize::from(i));
    *next == expect
}

/// Exhaustively explores the state space from [`AbsState::initial`]
/// (with the given starting budgets baked into `initial`).
///
/// `state_cap` is a safety valve: exploration stops (with
/// [`Explored::capped`] set) if the frontier would exceed it. Pass a cap
/// comfortably above the expected space so a bounds mistake fails loud
/// instead of eating the machine.
pub fn explore(
    initial: AbsState,
    bounds: &Bounds,
    defects: &Defects,
    state_cap: usize,
) -> Explored {
    explore_impl(initial, bounds, defects, state_cap, true)
}

/// [`explore`] with the partial-order reduction switched off. Slower and
/// larger, but its state set is the *complete* reachability relation —
/// the reference the reduction is validated against in tests.
pub fn explore_unreduced(
    initial: AbsState,
    bounds: &Bounds,
    defects: &Defects,
    state_cap: usize,
) -> Explored {
    explore_impl(initial, bounds, defects, state_cap, false)
}

fn explore_impl(
    initial: AbsState,
    bounds: &Bounds,
    defects: &Defects,
    state_cap: usize,
    reduce: bool,
) -> Explored {
    let mut index: HashMap<AbsState, u32> = HashMap::new();
    let mut states: Vec<AbsState> = Vec::new();
    let mut edges: Vec<Vec<Edge>> = Vec::new();
    let mut parents: Vec<Option<(u32, Action)>> = Vec::new();
    let mut queue: VecDeque<u32> = VecDeque::new();

    index.insert(initial.clone(), 0);
    states.push(initial);
    edges.push(Vec::new());
    parents.push(None);
    queue.push_back(0);

    let mut violations: Vec<FoundViolation> = Vec::new();
    let mut truncated = 0u64;
    let mut por_reduced = 0u64;
    let mut transitions = 0u64;
    let mut capped = false;

    while let Some(at) = queue.pop_front() {
        let state = states[at as usize].clone();
        let mut succ = successors(&state, bounds, defects);
        if let Some(pos) = reduce
            .then(|| succ.iter().position(|(a, step)| pure_stutter(&state, *a, step)))
            .flatten()
        {
            // Sound ample set of size one: see module docs.
            succ = vec![succ.swap_remove(pos)];
            por_reduced += 1;
        }
        let mut out = Vec::with_capacity(succ.len());
        for (action, step) in succ {
            // Report each invariant's first breach; BFS order makes the
            // first one a shortest witness.
            for v in &step.violations {
                if !violations.iter().any(|f| f.invariant == v.invariant) {
                    let mut path = Explored::path_to(&parents, at);
                    path.push(action);
                    violations.push(FoundViolation {
                        invariant: v.invariant,
                        detail: v.detail.clone(),
                        path,
                    });
                }
            }
            let Some(next) = step.next else {
                truncated += 1;
                continue;
            };
            transitions += 1;
            let target = match index.get(&next) {
                Some(&t) => t,
                None => {
                    if states.len() >= state_cap {
                        capped = true;
                        continue;
                    }
                    let t = states.len() as u32;
                    index.insert(next.clone(), t);
                    states.push(next);
                    edges.push(Vec::new());
                    parents.push(Some((at, action)));
                    queue.push_back(t);
                    t
                }
            };
            out.push(Edge { action, obs: step.obs, target });
        }
        edges[at as usize] = out;
    }

    Explored { states, edges, violations, truncated, por_reduced, transitions, capped }
}

/// Swaps the two slots of a state: nodes, channels, and the drift sign.
/// Exposed for the symmetry-unsoundness demonstration in the tests —
/// the protocol is *not* invariant under this map (tie-breaks favor the
/// lower node id, which stays with slot `A`), so merging swapped states
/// would be an unsound reduction. See `tests/verify.rs`.
pub fn swapped(s: &AbsState) -> AbsState {
    let mut t = s.clone();
    t.nodes.swap(0, 1);
    t.chan.swap(0, 1);
    t.drift = -t.drift;
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Budgets;
    use oftt::role::Role;

    const CLEAN: Defects = Defects { dual_primary_window: false, stale_promotion: false };

    #[test]
    fn faultless_space_is_small_clean_and_reaches_an_elected_pair() {
        let budgets = Budgets { crashes: 0, partitions: 0, distress: 0, advances: 0, hangs: 0 };
        let r = explore(AbsState::initial(budgets), &Bounds::default(), &CLEAN, 1_000_000);
        assert!(!r.capped);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.states.len() > 10, "got {}", r.states.len());
        assert!(
            r.states
                .iter()
                .any(|s| { s.nodes[0].role == Role::Primary && s.nodes[1].role == Role::Backup }),
            "the elected steady state must be reachable"
        );
        // The favored node wins every faultless election.
        assert!(
            !r.states.iter().any(|s| s.nodes[1].role == Role::Primary),
            "B must never become primary without faults"
        );
    }

    #[test]
    fn por_preserves_violations_and_observations() {
        use std::collections::BTreeSet;
        let budgets = Budgets { crashes: 1, partitions: 0, distress: 1, advances: 0, hangs: 0 };
        let initial = AbsState::initial(budgets);
        let reduced = explore(initial.clone(), &Bounds::default(), &CLEAN, 2_000_000);
        let full = explore_unreduced(initial, &Bounds::default(), &CLEAN, 4_000_000);
        assert!(!reduced.capped && !full.capped);
        assert!(reduced.por_reduced > 0, "the reduction must actually fire");
        assert!(
            reduced.states.len() <= full.states.len(),
            "reduction may only shrink: {} vs {}",
            reduced.states.len(),
            full.states.len()
        );

        // Every reduced-run state is genuinely reachable (its path is a
        // full-graph path too)…
        let full_index: HashMap<&AbsState, u32> = full.states.iter().zip(0u32..).collect();
        for s in &reduced.states {
            assert!(full_index.contains_key(s), "reduced run invented a state: {s:?}");
        }
        // …and the reduction is invisible to both checked properties:
        // the violation catalog and the observable vocabulary agree.
        let names = |e: &Explored| -> BTreeSet<&'static str> {
            e.violations.iter().map(|v| v.invariant).collect()
        };
        assert_eq!(names(&reduced), names(&full));
        let obs_set = |e: &Explored| -> BTreeSet<String> {
            e.edges.iter().flatten().filter_map(|edge| edge.obs.map(|o| o.to_string())).collect()
        };
        assert_eq!(obs_set(&reduced), obs_set(&full));
    }

    #[test]
    fn violation_paths_replay_to_the_reported_breach() {
        // Force a violation using the seeded-defect machinery only when
        // compiled in; otherwise replay a clean path to a deep state.
        let budgets = Budgets { crashes: 1, partitions: 0, distress: 0, advances: 0, hangs: 0 };
        let r = explore(AbsState::initial(budgets), &Bounds::default(), &CLEAN, 2_000_000);
        assert!(!r.capped);
        // Replay the shortest path to the last-discovered state.
        let target = r.states.len() - 1;
        let mut at = 0usize;
        let mut hops = 0;
        // Walk greedily along recorded edges toward the target through
        // the BFS tree: reconstructing via parent links is internal, so
        // just assert every edge target is a valid index.
        for (i, out) in r.edges.iter().enumerate() {
            for e in out {
                assert!((e.target as usize) < r.states.len(), "edge {i} -> {}", e.target);
                at = e.target as usize;
                hops += 1;
            }
        }
        assert!(hops as u64 == r.transitions);
        assert!(at < r.states.len());
        let _ = target;
    }

    #[test]
    fn swapped_is_an_involution() {
        let budgets = Budgets::default();
        let s = AbsState::initial(budgets);
        assert_eq!(swapped(&swapped(&s)), s);
    }
}
