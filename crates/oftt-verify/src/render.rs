//! Rendering abstract counterexamples as replayable oftt-check fault
//! scripts.
//!
//! An abstract counterexample is an action sequence; its fault-class
//! actions (crash, repair, partition, heal, distress) are exactly the
//! vocabulary of [`oftt_check::scenario::FaultScript`]. Protocol-level
//! actions (ticks, deliveries, checkpoint shipments) need no rendering:
//! the concrete simulation performs them on its own schedule. So a
//! rendered script keeps the fault actions in order and assigns them
//! concrete times spaced widely enough for the pair to settle between
//! injections — the abstraction works with logical rounds, and "wide
//! apart" is the faithful concretization of "in separate rounds".
//!
//! `Hang`/`WatchdogFire` have no script op (the concrete FTIM deadman
//! drives itself) and are skipped; a counterexample that *needs* a hang
//! to reproduce concretely must be exercised through the simulator's
//! distress path instead, which the `Distress` rendering covers.
//!
//! One timing exception: a `Partition` immediately following a
//! `Distress` is scheduled a few microseconds after it, not seconds —
//! the abstract path is using the partition to destroy the in-flight
//! switchover request, and only a near-instant partition does that
//! concretely.

use ds_sim::prelude::SimTime;
use oftt_check::scenario::{FaultScript, PairSlot, ScriptOp};

use crate::model::{Action, Slot};

/// Seconds before the first injected fault: long enough for startup
/// negotiation and the first checkpoint interval to complete.
const FIRST_FAULT_S: u64 = 10;
/// Seconds between consecutive injected faults: several peer timeouts,
/// so each fault's consequences settle before the next.
const FAULT_SPACING_S: u64 = 2;
/// The near-instant follow-up delay for a request-cutting partition.
const CUT_DELAY_US: u64 = 50;

fn pair_slot(s: Slot) -> PairSlot {
    match s {
        Slot::A => PairSlot::A,
        Slot::B => PairSlot::B,
    }
}

/// Renders an abstract action path as a concrete fault script.
pub fn render_script(path: &[Action]) -> FaultScript {
    let mut steps: Vec<(SimTime, ScriptOp)> = Vec::new();
    let mut at_us: u64 = FIRST_FAULT_S * 1_000_000;
    let mut prev_action: Option<Action> = None;
    for &action in path {
        let op = match action {
            Action::Crash(s) => Some(ScriptOp::Crash(pair_slot(s))),
            Action::Repair(s) => Some(ScriptOp::Repair(pair_slot(s))),
            Action::Partition => Some(ScriptOp::Partition),
            Action::Heal => Some(ScriptOp::Heal),
            Action::Distress(s) => Some(ScriptOp::Distress(pair_slot(s))),
            Action::Tick(_)
            | Action::Deliver(..)
            | Action::Ship(_)
            | Action::Advance(_)
            | Action::Hang(_)
            | Action::WatchdogFire(_) => None,
        };
        if let Some(op) = op {
            let cut = matches!(op, ScriptOp::Partition)
                && matches!(prev_action, Some(Action::Distress(_)));
            if !steps.is_empty() {
                at_us += if cut { CUT_DELAY_US } else { FAULT_SPACING_S * 1_000_000 };
            }
            steps.push((SimTime::from_micros(at_us), op));
        }
        prev_action = Some(action);
    }
    FaultScript { steps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_actions_render_in_order_with_settling_gaps() {
        let path = [
            Action::Tick(Slot::A),
            Action::Partition,
            Action::Tick(Slot::B),
            Action::Tick(Slot::B),
            Action::Heal,
            Action::Deliver(crate::model::Dir::BToA, 0),
        ];
        let script = render_script(&path);
        assert_eq!(
            script.steps,
            vec![
                (SimTime::from_secs(10), ScriptOp::Partition),
                (SimTime::from_secs(12), ScriptOp::Heal),
            ]
        );
        // The script round-trips through its text form.
        let reparsed = FaultScript::parse(&script.to_text()).unwrap();
        assert_eq!(reparsed, script);
    }

    #[test]
    fn a_request_cutting_partition_lands_microseconds_after_the_distress() {
        let path = [Action::Distress(Slot::A), Action::Partition, Action::Heal];
        let script = render_script(&path);
        assert_eq!(script.steps[0], (SimTime::from_secs(10), ScriptOp::Distress(PairSlot::A)));
        assert_eq!(script.steps[1].0, SimTime::from_micros(10_000_050));
        assert_eq!(script.steps[1].1, ScriptOp::Partition);
        assert_eq!(script.steps[2].0, SimTime::from_micros(12_000_050));
    }

    #[test]
    fn protocol_only_paths_render_empty() {
        let path = [Action::Tick(Slot::A), Action::Ship(Slot::A)];
        assert!(render_script(&path).steps.is_empty());
    }
}
