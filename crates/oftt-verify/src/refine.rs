//! Refinement: concrete oftt-check executions conform to the abstract
//! model.
//!
//! The exhaustive checker proves properties of the *abstract* pair; the
//! proof only transfers to the concrete system if every concrete
//! behavior is (an implementation of) an abstract one. We check the
//! observable half of that claim as **trace inclusion**: project a
//! concrete run's trace onto the abstract observable vocabulary — role
//! announcements, the one externally meaningful thing an engine does —
//! and verify the abstract transition graph can reproduce the projected
//! sequence.
//!
//! The check is a standard subset simulation: maintain the set of
//! abstract states consistent with the observations so far (closed
//! under unobservable transitions), and advance the whole set on each
//! observation. An empty set means the concrete system did something
//! the model cannot — either a model bug or an implementation bug, and
//! in both cases exactly what this check exists to catch.

use std::collections::{BTreeSet, HashSet, VecDeque};

use oftt::role::Role;
use oftt_check::export::TraceExport;
use oftt_check::parse::{node_of, EventKind};

use crate::explore::Explored;
use crate::model::{Bounds, Obs, Slot};

/// Projects a concrete trace export onto the abstract observable
/// alphabet: engine role announcements, in trace order.
///
/// Fails when the export lies outside the model — recorded with the
/// startup-window bug injected (a defect the abstract model does not
/// carry), or reaching terms above the exploration bound.
pub fn project(export: &TraceExport, bounds: &Bounds) -> Result<Vec<Obs>, String> {
    if export.inject_startup_bug {
        return Err("trace was recorded with the startup-window bug injected; \
             the abstract model does not include that defect"
            .into());
    }
    let events = export.events();

    // Identify the pair: engine endpoints are `node<N>/oftt-engine`;
    // the lower node id is `pair.a`, which the model calls slot A.
    let mut ids: BTreeSet<u32> = BTreeSet::new();
    for ev in &events {
        let ep = match &ev.kind {
            EventKind::RoleUpdate { ep, .. } | EventKind::EngineStart { ep } => ep,
            _ => continue,
        };
        if !ep.contains("oftt-engine") {
            continue;
        }
        let node = node_of(ep);
        let n: u32 = node
            .strip_prefix("node")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("unrecognized engine node name {node:?}"))?;
        ids.insert(n);
    }
    if ids.len() > 2 {
        return Err(format!("trace involves {} engine nodes; the model is a pair", ids.len()));
    }
    let slot_of = |node: &str| -> Option<Slot> {
        let n: u32 = node.strip_prefix("node")?.parse().ok()?;
        let mut iter = ids.iter();
        if Some(&n) == iter.next() {
            Some(Slot::A)
        } else {
            Some(Slot::B)
        }
    };

    let mut obs = Vec::new();
    for ev in &events {
        let EventKind::RoleUpdate { ep, role, term } = &ev.kind else { continue };
        if !ep.contains("oftt-engine") || *role == Role::Negotiating {
            continue;
        }
        if *term > u64::from(bounds.term_max) {
            return Err(format!(
                "trace reaches term {term}, beyond the exploration bound \
                 {}; re-run with a larger --term-max",
                bounds.term_max
            ));
        }
        let slot =
            slot_of(node_of(ep)).ok_or_else(|| format!("unrecognized engine endpoint {ep:?}"))?;
        obs.push(Obs { slot, role: *role, term: *term as u8 });
    }
    Ok(obs)
}

/// Closes a state set under unobservable (no-announcement) transitions.
fn silent_closure(ex: &Explored, seed: impl IntoIterator<Item = u32>) -> HashSet<u32> {
    let mut closed: HashSet<u32> = HashSet::new();
    let mut queue: VecDeque<u32> = VecDeque::new();
    for s in seed {
        if closed.insert(s) {
            queue.push_back(s);
        }
    }
    while let Some(at) = queue.pop_front() {
        for e in &ex.edges[at as usize] {
            if e.obs.is_none() && closed.insert(e.target) {
                queue.push_back(e.target);
            }
        }
    }
    closed
}

/// Checks that the abstract transition graph can produce the projected
/// observation sequence (subset simulation from the initial state).
pub fn check_inclusion(ex: &Explored, obs: &[Obs]) -> Result<(), String> {
    let mut frontier = silent_closure(ex, [0u32]);
    for (i, o) in obs.iter().enumerate() {
        let matched: Vec<u32> = frontier
            .iter()
            .flat_map(|&s| ex.edges[s as usize].iter())
            .filter(|e| e.obs == Some(*o))
            .map(|e| e.target)
            .collect();
        if matched.is_empty() {
            let prefix: Vec<String> = obs[..i].iter().map(|o| o.to_string()).collect();
            return Err(format!(
                "observation {i} ({o}) is not producible by the abstract model \
                 (accepted prefix: [{}]; {} candidate states)",
                prefix.join(", "),
                frontier.len(),
            ));
        }
        frontier = silent_closure(ex, matched);
    }
    Ok(())
}

/// Projects an export and checks inclusion; returns the number of
/// observations verified.
pub fn refine_export(
    ex: &Explored,
    export: &TraceExport,
    bounds: &Bounds,
) -> Result<usize, String> {
    let obs = project(export, bounds)?;
    check_inclusion(ex, &obs)?;
    Ok(obs.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;
    use crate::model::{AbsState, Budgets};
    use oftt::transition::Defects;

    const CLEAN: Defects = Defects { dual_primary_window: false, stale_promotion: false };

    fn explored() -> Explored {
        let budgets = Budgets { crashes: 1, partitions: 0, distress: 0, advances: 0, hangs: 0 };
        explore(AbsState::initial(budgets), &Bounds::default(), &CLEAN, 2_000_000)
    }

    #[test]
    fn the_crash_failover_observation_sequence_is_included() {
        let ex = explored();
        // Election, primary crash, silence takeover, rejoin as backup —
        // the concrete pair-failover scenario's announcement shape.
        let seq = [
            Obs { slot: Slot::B, role: Role::Backup, term: 1 },
            Obs { slot: Slot::A, role: Role::Primary, term: 1 },
            Obs { slot: Slot::B, role: Role::Primary, term: 2 },
            Obs { slot: Slot::A, role: Role::Backup, term: 2 },
        ];
        check_inclusion(&ex, &seq).expect("failover trace must refine");
    }

    #[test]
    fn an_impossible_announcement_is_rejected_with_context() {
        let ex = explored();
        // The favored node cannot lose the very first election.
        let seq = [Obs { slot: Slot::B, role: Role::Primary, term: 1 }];
        let err = check_inclusion(&ex, &seq).unwrap_err();
        assert!(err.contains("observation 0"), "{err}");
    }

    #[test]
    fn term_regressions_are_rejected() {
        let ex = explored();
        let seq = [
            Obs { slot: Slot::A, role: Role::Primary, term: 1 },
            Obs { slot: Slot::B, role: Role::Primary, term: 2 },
            // A term-1 re-announcement after term 2 existed.
            Obs { slot: Slot::B, role: Role::Primary, term: 1 },
        ];
        assert!(check_inclusion(&ex, &seq).is_err());
    }
}
