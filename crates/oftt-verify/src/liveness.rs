//! Liveness: "a dual primary is always transient" under weak fairness.
//!
//! Safety checking proves no *state* is bad; the failover protocol also
//! owes a *temporal* promise: if both nodes ever serve as primary at
//! once (which transiently happens during a healed partition), the
//! precedence rule must resolve it — the pair may not *stay* dual
//! forever. A checker that only looks at states cannot see the
//! difference between "dual primary exists for one heartbeat" and
//! "dual primary persists"; that difference is a cycle, so we hunt
//! cycles.
//!
//! ## Fairness
//!
//! An infinite schedule that simply stops ticking one node, or parks a
//! delivered-able heartbeat in the channel forever, trivially preserves
//! any state — and proves nothing, because the real scheduler does
//! neither. We encode **weak fairness** as a round automaton composed
//! with the state graph. One fairness round must witness, in order:
//!
//! 1. a tick of node `A` (or `A` being down — a dead node owes nothing),
//! 2. a tick of node `B` (same exemption),
//! 3. a *drained* moment: a state with no deliverable message queued.
//!
//! Any infinite fair schedule completes rounds forever; any schedule
//! that cannot complete rounds is unfair and ignored. Fault injections
//! (crash, partition, distress, …) each consume a finite budget, so no
//! cycle contains one — cycles are pure protocol behavior, which is
//! exactly the regime where "the protocol resolves it" must hold.
//!
//! ## Detection
//!
//! Product states `(state, phase, latch)` track the round phase and
//! whether a live dual primary was seen this round; completing a round
//! with the latch set enters the **accepting** phase. A reachable cycle
//! through an accepting product state is a fair lasso along which the
//! dual primary recurs every round — i.e. forever. We find such lassos
//! with the classic nested depth-first search (Courcoubetis–Vardi–
//! Wolper–Yannakakis): an outer DFS orders states by completion, and at
//! each accepting state's completion an inner DFS hunts a cycle back to
//! it. Both searches are iterative (explicit stacks) so deep state
//! spaces cannot overflow the thread stack.

use std::collections::HashMap;

use crate::explore::{Edge, Explored};
use crate::model::{Action, Slot};

/// Fairness-round phases. `Accepting` behaves like `Start` but marks
/// "the previous round saw a live dual primary".
const START: u8 = 0;
const TICKED_A: u8 = 1;
const TICKED_B: u8 = 2;
const ACCEPTING: u8 = 3;

/// A product-automaton state: graph state, round phase, dual-seen latch.
type Key = (u32, u8, bool);

/// A fair cycle witnessing a persistent dual primary: replay `stem`
/// from the initial state, then `cycle` repeats forever.
#[derive(Debug, Clone)]
pub struct Lasso {
    /// Actions from the initial state to the cycle entry.
    pub stem: Vec<Action>,
    /// The repeating action sequence (non-empty).
    pub cycle: Vec<Action>,
}

fn bad(ex: &Explored, idx: u32) -> bool {
    ex.states[idx as usize].dual_primary_live()
}

/// Advances the product automaton across one graph edge.
fn product_step(ex: &Explored, key: Key, edge: &Edge) -> Key {
    let (idx, phase, latch) = key;
    let src = &ex.states[idx as usize];
    let mut p = if phase == ACCEPTING { START } else { phase };
    if p == START && (edge.action == Action::Tick(Slot::A) || !src.nodes[0].up) {
        p = TICKED_A;
    }
    if p == TICKED_A && (edge.action == Action::Tick(Slot::B) || !src.nodes[1].up) {
        p = TICKED_B;
    }
    let mut latch = latch || bad(ex, edge.target);
    if p == TICKED_B && !ex.states[edge.target as usize].has_deliverable() {
        p = if latch { ACCEPTING } else { START };
        latch = false;
    }
    (edge.target, p, latch)
}

/// Searches the explored graph for a fair lasso along which a live dual
/// primary recurs forever. Returns the first one found (the protocol is
/// correct iff there is none).
pub fn find_persistent_dual_primary(ex: &Explored) -> Option<Lasso> {
    fn intern(ids: &mut HashMap<Key, u32>, keys: &mut Vec<Key>, k: Key) -> u32 {
        *ids.entry(k).or_insert_with(|| {
            keys.push(k);
            (keys.len() - 1) as u32
        })
    }

    let mut ids: HashMap<Key, u32> = HashMap::new();
    let mut keys: Vec<Key> = Vec::new();
    let root = intern(&mut ids, &mut keys, (0, START, false));

    // Outer ("blue") DFS in post-order; `red` marks persist across all
    // inner searches, which is what keeps the nested search linear.
    let mut blue: Vec<bool> = vec![false; 1];
    let mut red: Vec<bool> = vec![false; 1];
    let grow = |v: &mut Vec<bool>, n: usize| {
        if v.len() < n {
            v.resize(n, false);
        }
    };

    // Frame: (product id, index of next edge to expand, action that led
    // here — None for the root).
    let mut stack: Vec<(u32, usize, Option<Action>)> = vec![(root, 0, None)];
    blue[root as usize] = true;

    while let Some(&mut (pid, ref mut next_edge, _)) = stack.last_mut() {
        let (sidx, _, _) = keys[pid as usize];
        let out = &ex.edges[sidx as usize];
        if *next_edge < out.len() {
            let e = &out[*next_edge];
            *next_edge += 1;
            let nk = product_step(ex, keys[pid as usize], e);
            let nid = intern(&mut ids, &mut keys, nk);
            grow(&mut blue, keys.len());
            grow(&mut red, keys.len());
            if !blue[nid as usize] {
                blue[nid as usize] = true;
                stack.push((nid, 0, Some(e.action)));
            }
            continue;
        }
        // Post-order completion of `pid`.
        let (_, phase, _) = keys[pid as usize];
        if phase == ACCEPTING {
            if let Some(cycle) = red_search(ex, &keys, &ids, &mut red, pid) {
                let stem: Vec<Action> = stack.iter().filter_map(|&(_, _, a)| a).collect();
                return Some(Lasso { stem, cycle });
            }
        }
        stack.pop();
    }
    None
}

/// Inner ("red") DFS: from `seed`'s successors, look for a path back to
/// `seed`. Returns the cycle's action sequence if found.
fn red_search(
    ex: &Explored,
    keys: &[Key],
    ids: &HashMap<Key, u32>,
    red: &mut [bool],
    seed: u32,
) -> Option<Vec<Action>> {
    // The product graph is closed by the time the red search runs (the
    // blue DFS interned every reachable product state below `seed`), so
    // lookups here always hit — but stay defensive and skip misses.
    let mut stack: Vec<(u32, usize, Option<Action>)> = vec![(seed, 0, None)];
    while let Some(&mut (pid, ref mut next_edge, _)) = stack.last_mut() {
        let (sidx, _, _) = keys[pid as usize];
        let out = &ex.edges[sidx as usize];
        if *next_edge < out.len() {
            let e = &out[*next_edge];
            *next_edge += 1;
            let nk = product_step(ex, keys[pid as usize], e);
            let Some(&nid) = ids.get(&nk) else { continue };
            if nid == seed {
                let mut cycle: Vec<Action> = stack.iter().filter_map(|&(_, _, a)| a).collect();
                cycle.push(e.action);
                return Some(cycle);
            }
            if !red[nid as usize] {
                red[nid as usize] = true;
                stack.push((nid, 0, Some(e.action)));
            }
            continue;
        }
        stack.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Edge;
    use crate::model::{AbsNode, AbsState, Budgets, Dir};
    use oftt::role::Role;

    /// Hand-builds an `Explored` graph over synthetic states so the
    /// detector itself can be tested in isolation.
    fn graph(states: Vec<AbsState>, edges: Vec<Vec<(Action, u32)>>) -> Explored {
        let edges = edges
            .into_iter()
            .map(|out| {
                out.into_iter().map(|(action, target)| Edge { action, obs: None, target }).collect()
            })
            .collect();
        Explored {
            states,
            edges,
            violations: Vec::new(),
            truncated: 0,
            por_reduced: 0,
            transitions: 0,
            capped: false,
        }
    }

    fn plain() -> AbsState {
        AbsState::initial(Budgets::default())
    }

    fn dual() -> AbsState {
        let mut s = plain();
        for (i, n) in s.nodes.iter_mut().enumerate() {
            *n = AbsNode { role: Role::Primary, term: (i + 1) as u8, ..AbsNode::fresh() };
        }
        s
    }

    #[test]
    fn a_fair_dual_primary_cycle_is_found() {
        // One dual-primary state with tick self-loops on both nodes:
        // ticking A then B completes a fair round with the latch set.
        let ex =
            graph(vec![dual()], vec![vec![(Action::Tick(Slot::A), 0), (Action::Tick(Slot::B), 0)]]);
        let lasso = find_persistent_dual_primary(&ex).expect("must find the lasso");
        assert!(!lasso.cycle.is_empty());
        assert!(lasso.cycle.contains(&Action::Tick(Slot::A)));
        assert!(lasso.cycle.contains(&Action::Tick(Slot::B)));
    }

    #[test]
    fn an_unfair_cycle_is_ignored() {
        // The same dual state, but only A ever ticks: B is starved, the
        // round never completes, no fair lasso exists.
        let ex = graph(vec![dual()], vec![vec![(Action::Tick(Slot::A), 0)]]);
        assert!(find_persistent_dual_primary(&ex).is_none());
    }

    #[test]
    fn a_resolving_dual_primary_is_not_persistent() {
        // Dual state 0 resolves to healthy state 1 before the round can
        // complete; the healthy cycle never sets the latch.
        let mut healthy = plain();
        healthy.nodes[0].role = Role::Primary;
        healthy.nodes[0].term = 1;
        healthy.nodes[1].role = Role::Backup;
        healthy.nodes[1].term = 1;
        let ex = graph(
            vec![dual(), healthy],
            vec![
                vec![(Action::Tick(Slot::A), 1)],
                vec![(Action::Tick(Slot::A), 1), (Action::Tick(Slot::B), 1)],
            ],
        );
        assert!(find_persistent_dual_primary(&ex).is_none());
    }

    #[test]
    fn a_parked_deliverable_message_blocks_round_completion() {
        // Both ticks happen but the state always holds a deliverable
        // message, so phase 3's drained-moment requirement fails.
        let mut s = dual();
        s.chan[Dir::AToB.index()].push(crate::model::InFlight {
            msg: crate::model::AbsMsg::Heartbeat { role: Role::Primary, term: 1 },
            age: 0,
        });
        let ex = graph(vec![s], vec![vec![(Action::Tick(Slot::A), 0), (Action::Tick(Slot::B), 0)]]);
        assert!(find_persistent_dual_primary(&ex).is_none());
    }

    #[test]
    fn a_down_node_owes_no_tick() {
        // B down: bad() requires both up, so craft A-up/B-down... a dual
        // primary cannot exist with a down node, so instead check the
        // exemption path doesn't panic and finds nothing on a one-node
        // tick loop.
        let mut s = dual();
        s.nodes[1] = AbsNode::down();
        let ex = graph(vec![s], vec![vec![(Action::Tick(Slot::A), 0)]]);
        assert!(find_persistent_dual_primary(&ex).is_none());
    }

    #[test]
    fn stem_plus_cycle_shapes_are_reported() {
        // healthy -> dual (via a tick), then the dual state cycles.
        let ex = graph(
            vec![plain(), dual()],
            vec![
                vec![(Action::Tick(Slot::A), 1)],
                vec![(Action::Tick(Slot::A), 1), (Action::Tick(Slot::B), 1)],
            ],
        );
        let lasso = find_persistent_dual_primary(&ex).expect("lasso");
        assert!(!lasso.cycle.is_empty());
        // The stem reaches the cycle seed; both pieces replay over the
        // edge relation without falling off the graph.
        let mut at = 0u32;
        for a in lasso.stem.iter().chain(&lasso.cycle) {
            let e = ex.edges[at as usize].iter().find(|e| e.action == *a).expect("replayable");
            at = e.target;
        }
    }
}
