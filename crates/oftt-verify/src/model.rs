//! The abstract pair-protocol model.
//!
//! One state of the model is everything protocol-relevant about the
//! redundant pair: each engine's role machine (driven by the *shared*
//! [`oftt::transition::role_transition`] table — the same function the
//! concrete engine executes, so the model cannot drift from the code),
//! the two directed message channels, the interconnect partition flag,
//! and the remaining fault budgets.
//!
//! ## The abstraction map
//!
//! | concrete                              | abstract                        |
//! |---------------------------------------|---------------------------------|
//! | engine role/term/peer_role            | verbatim (term bounded)         |
//! | `last_peer_primary` clock             | `silence` tick counter          |
//! | `last_peer_any` clock                 | `any_silence` tick counter      |
//! | heartbeat/hello/reply/switchover msgs | [`AbsMsg`] with bounded age     |
//! | checkpoint data path                  | one [`Freshness`] per store     |
//! | FTIM deadman on the application       | `app_hung` + `WatchdogFire`     |
//! | link latency bounds                   | `max_age` forced delivery       |
//! | equal heartbeat periods on both nodes | `drift`-bounded tick counts     |
//!
//! Two timing facts of the concrete system are load-bearing and carried
//! as structural gates rather than left to schedule nondeterminism:
//!
//! * **Bounded delay** (`Bounds::max_age`): the simulated links deliver
//!   within a bounded latency, far under a heartbeat period. A raw
//!   message that has survived `max_age` ticks blocks *all* further
//!   ticks until it is delivered. Without this, a message could float
//!   for "seconds" of tick-time and arrive after promotions it would
//!   physically have preceded.
//! * **Bounded clock drift** (`Bounds::drift_max`): both engines tick at
//!   the same `heartbeat_period`, and `peer_timeout` spans several
//!   periods. A node may not run its tick counter more than `drift_max`
//!   ahead of a live peer. Without this, a backup could count itself to
//!   silence-promotion while the live primary never got a chance to
//!   heartbeat — a schedule real time cannot produce, and one that
//!   manufactures spurious same-term dual primaries.
//!
//! Everything else — message ordering, fault placement, who ticks first
//! — is explored exhaustively.

use ds_net::endpoint::NodeId;
use oftt::role::{Claim, Role};
use oftt::transition::{role_transition, Defects, RoleEvent, RoleOutcome, RoleView};

/// One side of the pair, positionally. `A` is the statically favored
/// node: it maps to the lower [`NodeId`], so it wins startup tie-breaks
/// and no-primary promotions — which is also why swapping the slots is
/// *not* a symmetry of this system (see `explore::swapped`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Slot {
    /// The favored node (`pair.a`, lower node id).
    A,
    /// The other node (`pair.b`).
    B,
}

/// Both slots, in canonical order.
pub const SLOTS: [Slot; 2] = [Slot::A, Slot::B];

impl Slot {
    /// Index into [`AbsState::nodes`].
    pub fn index(self) -> usize {
        match self {
            Slot::A => 0,
            Slot::B => 1,
        }
    }

    /// The peer slot.
    pub fn other(self) -> Slot {
        match self {
            Slot::A => Slot::B,
            Slot::B => Slot::A,
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Slot::A => "a",
            Slot::B => "b",
        }
    }

    /// The node id the transition table sees for this slot. `A` is lower
    /// by construction.
    pub fn node_id(self) -> NodeId {
        NodeId(self.index() as u16)
    }

    /// The channel this slot sends into.
    pub fn outgoing(self) -> Dir {
        match self {
            Slot::A => Dir::AToB,
            Slot::B => Dir::BToA,
        }
    }
}

impl std::fmt::Display for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A directed channel between the pair nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Messages from `A` to `B`.
    AToB,
    /// Messages from `B` to `A`.
    BToA,
}

/// Both directions, in canonical order.
pub const DIRS: [Dir; 2] = [Dir::AToB, Dir::BToA];

impl Dir {
    /// Index into [`AbsState::chan`].
    pub fn index(self) -> usize {
        match self {
            Dir::AToB => 0,
            Dir::BToA => 1,
        }
    }

    /// The sending slot.
    pub fn sender(self) -> Slot {
        match self {
            Dir::AToB => Slot::A,
            Dir::BToA => Slot::B,
        }
    }

    /// The receiving slot.
    pub fn receiver(self) -> Slot {
        self.sender().other()
    }

    /// The opposite channel.
    pub fn reverse(self) -> Dir {
        match self {
            Dir::AToB => Dir::BToA,
            Dir::BToA => Dir::AToB,
        }
    }
}

impl std::fmt::Display for Dir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dir::AToB => f.write_str("a->b"),
            Dir::BToA => f.write_str("b->a"),
        }
    }
}

/// Coarse freshness of a node's checkpoint store relative to the current
/// primary's application state. Ordered: `Empty < Stale < Fresh`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Freshness {
    /// No checkpoint installed (cold store).
    Empty,
    /// An installed image the primary has since advanced past.
    Stale,
    /// The primary's newest shipped image.
    Fresh,
}

/// An abstract peer message. Role-bearing messages mirror
/// [`oftt::messages::PeerMsg`]; `Checkpoint` abstracts the whole FTIM
/// checkpoint transfer (which rides the reliable msgq path, so it is
/// exempt from raw-message aging and survives partitions queued).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbsMsg {
    /// Startup negotiation probe.
    Hello {
        /// Sender's advertised role.
        role: Role,
        /// Sender's advertised term.
        term: u8,
    },
    /// Response to a `Hello`, carrying the responder's *pre-transition*
    /// view (the engine replies before applying the table — mirrored
    /// exactly).
    HelloReply {
        /// Responder's role at receipt time.
        role: Role,
        /// Responder's term at receipt time.
        term: u8,
    },
    /// Periodic liveness claim.
    Heartbeat {
        /// Sender's role.
        role: Role,
        /// Sender's term.
        term: u8,
    },
    /// "You take over" — sent by a distressed or watchdog-fired primary.
    SwitchoverRequest {
        /// Requester's term at send time.
        term: u8,
    },
    /// A checkpoint image in flight to the peer's store.
    Checkpoint {
        /// Whether the image still matches the primary's state on
        /// arrival (an `Advance` in flight marks it stale).
        fresh: bool,
    },
}

impl AbsMsg {
    /// Raw engine datagrams age and are lost to partitions; checkpoint
    /// transfers are reliable.
    pub fn is_raw(self) -> bool {
        !matches!(self, AbsMsg::Checkpoint { .. })
    }
}

/// One queued message with its age in ticks (raw messages only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InFlight {
    /// The message.
    pub msg: AbsMsg,
    /// Ticks survived in the channel; bounded by [`Bounds::max_age`].
    pub age: u8,
}

/// Canonical sort key. Channels are *multisets* — [`Action::Deliver`]
/// picks an arbitrary index, so two channel orderings with the same
/// contents have identical futures; keeping each channel sorted merges
/// them into one state.
fn msg_key(m: &InFlight) -> (u8, u8, u8, u8) {
    fn role_key(r: Role) -> u8 {
        match r {
            Role::Negotiating => 0,
            Role::Primary => 1,
            Role::Backup => 2,
        }
    }
    match m.msg {
        AbsMsg::Hello { role, term } => (0, role_key(role), term, m.age),
        AbsMsg::HelloReply { role, term } => (1, role_key(role), term, m.age),
        AbsMsg::Heartbeat { role, term } => (2, role_key(role), term, m.age),
        AbsMsg::SwitchoverRequest { term } => (3, 0, term, m.age),
        AbsMsg::Checkpoint { fresh } => (4, 0, u8::from(fresh), m.age),
    }
}

/// One engine's abstract state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AbsNode {
    /// Whether the node (and its engine) is running.
    pub up: bool,
    /// Engine role.
    pub role: Role,
    /// Engine term (bounded by [`Bounds::term_max`]).
    pub term: u8,
    /// The peer's last advertised role.
    pub peer_role: Option<Role>,
    /// Ticks since a primary heartbeat was heard (`last_peer_primary`).
    /// Meaningful only while `Backup`; normalized to 0 otherwise.
    pub silence: u8,
    /// Ticks since *any* peer message was heard (`last_peer_any`).
    pub any_silence: u8,
    /// Freshness of the local checkpoint store.
    pub store: Freshness,
    /// Whether the FTIM-wrapped application has stopped heartbeating.
    pub app_hung: bool,
    /// Ticks the *peer* has taken since this node crashed (saturating;
    /// meaningful only while down). A repair takes seconds of real
    /// time, so the survivor's timers run through whole silence windows
    /// during the outage — [`Action::Repair`] is gated on this reaching
    /// [`Bounds::silence_limit`], which is what forces the survivor's
    /// silence-promotion to happen *before* the dead node returns, as
    /// it concretely must.
    pub down_ticks: u8,
}

impl AbsNode {
    /// A freshly booted (or rebooted) node.
    pub fn fresh() -> AbsNode {
        AbsNode {
            up: true,
            role: Role::Negotiating,
            term: 0,
            peer_role: None,
            silence: 0,
            any_silence: 0,
            store: Freshness::Empty,
            app_hung: false,
            down_ticks: 0,
        }
    }

    /// A crashed node: down, with all volatile state canonicalized so
    /// every way of crashing reaches the same abstract state.
    pub fn down() -> AbsNode {
        AbsNode { up: false, ..AbsNode::fresh() }
    }

    /// Silence counters track `Backup` promotion timers only; zeroing
    /// them in other roles is faithful (the table never reads them
    /// there) and collapses states that differ only in dead clocks.
    fn normalize(&mut self) {
        if self.role != Role::Backup {
            self.silence = 0;
            self.any_silence = 0;
        }
    }
}

/// How many of each fault the explorer may inject. Every fault strictly
/// decreases a budget, so fault actions can never sit on a cycle — which
/// is also what makes the liveness search's fairness argument work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Budgets {
    /// Hard node crashes (each implies one repair).
    pub crashes: u8,
    /// Interconnect partitions (each implies one heal).
    pub partitions: u8,
    /// Application distress calls into the engine.
    pub distress: u8,
    /// Primary state advances (checkpoint staleness events).
    pub advances: u8,
    /// Application hangs (FTIM deadman expiries).
    pub hangs: u8,
}

impl Default for Budgets {
    fn default() -> Self {
        Budgets { crashes: 1, partitions: 1, distress: 1, advances: 1, hangs: 1 }
    }
}

/// The finite bounds that make the state space exhaustible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounds {
    /// Terms above this truncate the branch (counted, not explored).
    pub term_max: u8,
    /// Raw messages a channel holds before the sender's tick blocks.
    pub channel_cap: usize,
    /// Ticks a raw message may survive undelivered before all ticks
    /// block (the bounded-delay assumption).
    pub max_age: u8,
    /// Backup ticks without a primary heartbeat before the silence
    /// timer expires (abstracts `peer_timeout / heartbeat_period`).
    ///
    /// Soundness requires `silence_limit >= 2*drift_max + max_age + 1`:
    /// the drift gate lets a backup take at most `2*drift_max` silent
    /// ticks before a live peer must tick, and the peer's message can
    /// float for `max_age` more ticks before forced delivery resets the
    /// clock — so a live, whole-network peer caps the backup's silence
    /// at `2*drift_max + max_age`. A smaller limit lets the backup
    /// silence-promote past a peer that real time would have heard,
    /// manufacturing spurious dual primaries.
    pub silence_limit: u8,
    /// Maximum tick-count lead one live node may take over the other
    /// (abstracts equal heartbeat periods with bounded jitter).
    pub drift_max: i16,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds { term_max: 4, channel_cap: 3, max_age: 1, silence_limit: 4, drift_max: 1 }
    }
}

/// One global state of the abstract pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AbsState {
    /// The two engines, indexed by [`Slot::index`].
    pub nodes: [AbsNode; 2],
    /// The two channels, indexed by [`Dir::index`]; FIFO order is *not*
    /// assumed — delivery picks any queued message.
    pub chan: [Vec<InFlight>; 2],
    /// Whether the pair interconnect is partitioned.
    pub partitioned: bool,
    /// Remaining fault budgets.
    pub budgets: Budgets,
    /// Tick-count lead of `A` over `B` (bounded by
    /// [`Bounds::drift_max`]; reset when either node crashes/repairs).
    pub drift: i16,
}

impl AbsState {
    /// The initial state: both nodes freshly booted, channels empty,
    /// network whole.
    pub fn initial(budgets: Budgets) -> AbsState {
        AbsState {
            nodes: [AbsNode::fresh(), AbsNode::fresh()],
            chan: [Vec::new(), Vec::new()],
            partitioned: false,
            budgets,
            drift: 0,
        }
    }

    fn node(&self, slot: Slot) -> &AbsNode {
        &self.nodes[slot.index()]
    }

    fn node_mut(&mut self, slot: Slot) -> &mut AbsNode {
        &mut self.nodes[slot.index()]
    }

    fn raw_count(&self, dir: Dir) -> usize {
        self.chan[dir.index()].iter().filter(|m| m.msg.is_raw()).count()
    }

    fn has_overdue_raw(&self, bounds: &Bounds) -> bool {
        self.chan.iter().flatten().any(|m| m.msg.is_raw() && m.age >= bounds.max_age)
    }

    /// The [`RoleView`] the shared transition table reads for a slot.
    pub fn role_view(&self, slot: Slot) -> RoleView {
        let n = self.node(slot);
        RoleView {
            me: slot.node_id(),
            peer: slot.other().node_id(),
            role: n.role,
            term: u64::from(n.term),
            peer_role: n.peer_role,
        }
    }

    /// Both nodes up and serving as primary with the network whole —
    /// the condition the liveness search must prove transient.
    pub fn dual_primary_live(&self) -> bool {
        !self.partitioned && self.nodes.iter().all(|n| n.up && n.role == Role::Primary)
    }

    /// Any message a [`Action::Deliver`] could currently move (used by
    /// the liveness fairness automaton).
    pub fn has_deliverable(&self) -> bool {
        !self.partitioned
            && DIRS.iter().any(|d| !self.chan[d.index()].is_empty() && self.node(d.receiver()).up)
    }
}

/// One transition of the abstract system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// A node's heartbeat timer fires: age in-flight messages, send a
    /// hello (negotiating) or heartbeat (established), run the silence
    /// check.
    Tick(Slot),
    /// Deliver the message at an index of a channel.
    Deliver(Dir, u8),
    /// Hard-crash a node (budgeted).
    Crash(Slot),
    /// Reboot a crashed node fresh.
    Repair(Slot),
    /// Partition the interconnect (budgeted); queued raw messages die.
    Partition,
    /// Heal the partition.
    Heal,
    /// The application self-reports distress to its (primary) engine
    /// (budgeted): a switchover request goes out and the engine yields.
    Distress(Slot),
    /// The primary ships a checkpoint of its current state to the peer.
    Ship(Slot),
    /// The primary's application state advances, staling the peer's
    /// store and any image in flight (budgeted).
    Advance(Slot),
    /// The application stops heartbeating its FTIM (budgeted).
    Hang(Slot),
    /// The FTIM deadman expires on a hung application; a primary reacts
    /// as if distressed.
    WatchdogFire(Slot),
}

impl std::fmt::Display for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Action::Tick(s) => write!(f, "tick {s}"),
            Action::Deliver(d, i) => write!(f, "deliver {d}[{i}]"),
            Action::Crash(s) => write!(f, "crash {s}"),
            Action::Repair(s) => write!(f, "repair {s}"),
            Action::Partition => f.write_str("partition"),
            Action::Heal => f.write_str("heal"),
            Action::Distress(s) => write!(f, "distress {s}"),
            Action::Ship(s) => write!(f, "ship {s}"),
            Action::Advance(s) => write!(f, "advance {s}"),
            Action::Hang(s) => write!(f, "hang {s}"),
            Action::WatchdogFire(s) => write!(f, "watchdog-fire {s}"),
        }
    }
}

/// A role announcement — the *observable* of the abstract system, and
/// what concrete traces are projected onto for refinement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Obs {
    /// Which engine announced.
    pub slot: Slot,
    /// The announced role (never `Negotiating`; the table never
    /// announces it).
    pub role: Role,
    /// The announced term.
    pub term: u8,
}

impl std::fmt::Display for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{:?}({})", self.slot, self.role, self.term)
    }
}

/// A safety breach found on one transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsViolation {
    /// Stable invariant name.
    pub invariant: &'static str,
    /// The offending values.
    pub detail: String,
}

/// The result of applying one enabled action.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The successor state, or `None` when the branch leaves the
    /// bounded space (term overflow) and is truncated instead.
    pub next: Option<AbsState>,
    /// The role announcement the action produced, if any.
    pub obs: Option<Obs>,
    /// Safety violations observed on this transition. Exploration
    /// *continues* through violating transitions (the liveness search
    /// needs the lasso behind a persistent violation), so these are
    /// reports, not terminators.
    pub violations: Vec<AbsViolation>,
}

/// Mutable bookkeeping while building one step.
struct Ctx {
    obs: Option<Obs>,
    violations: Vec<AbsViolation>,
    truncated: bool,
}

impl Ctx {
    fn new() -> Ctx {
        Ctx { obs: None, violations: Vec::new(), truncated: false }
    }
}

/// Applies a transition-table outcome to a slot, mirroring
/// `Engine::apply_outcome` (including the entering-Backup silence-clock
/// restart) plus the promotion-time checkpoint restore.
// oftt-lint: role-choke-point
fn apply_role_outcome(
    s: &mut AbsState,
    slot: Slot,
    outcome: RoleOutcome,
    defects: &Defects,
    bounds: &Bounds,
    ctx: &mut Ctx,
) {
    match outcome {
        RoleOutcome::Stay => {}
        RoleOutcome::AdoptTerm { term } => {
            if term > u64::from(bounds.term_max) {
                ctx.truncated = true;
                return;
            }
            s.node_mut(slot).term = term as u8;
        }
        RoleOutcome::ShutDown => {
            // §3.2 original fallback; unreachable under the modeled
            // scenarios (no startup-retry exhaustion) but kept faithful.
            *s.node_mut(slot) = AbsNode::down();
        }
        RoleOutcome::Announce { role, term, reason: _ } => {
            if term > u64::from(bounds.term_max) {
                ctx.truncated = true;
                return;
            }
            let was = s.node(slot).role;
            if role == Role::Primary && was != Role::Primary {
                // Promotion rehydrates the application from the local
                // store. The seeded stale_promotion defect restores the
                // previous image instead of the newest one.
                let store = s.node(slot).store;
                let restored = if cfg!(feature = "inject_bugs")
                    && defects.stale_promotion
                    && store == Freshness::Fresh
                {
                    Freshness::Stale
                } else {
                    store
                };
                if restored < store {
                    ctx.violations.push(AbsViolation {
                        invariant: "promotion-from-stale-image",
                        detail: format!(
                            "{slot} promoted to term {term} restoring {restored:?} \
                             while its store held {store:?}"
                        ),
                    });
                }
                // The promoted node's state is now the pair's reference.
                s.node_mut(slot).store = Freshness::Fresh;
            }
            let n = s.node_mut(slot);
            n.role = role;
            n.term = term as u8;
            if role == Role::Backup {
                // Entering Backup restarts the primary-silence clock
                // (the engine fix this model surfaced).
                n.silence = 0;
            }
            debug_assert!(ctx.obs.is_none(), "one announcement per action");
            ctx.obs = Some(Obs { slot, role, term: term as u8 });
        }
    }
}

/// Finalizes a successor: normalizes dead clocks, canonicalizes the
/// channel multisets, and wraps the result.
///
/// Note there is deliberately *no* "never two primaries" state
/// invariant here. The checker refuted that property with a
/// concretely feasible trace (see the `same_term_dual_primary_…` test
/// below): in a two-node pair without a quorum, a partition or an
/// ill-timed repair can always hand both nodes a primary claim —
/// even one with the *same term number*, because a negotiating node
/// derives `their_term + 1` from a backup's hello reply while that
/// backup's own next silence promotion independently derives the same
/// value. The protocol's real claim identity is the `(term, node)`
/// pair ordered by [`oftt::role::Claim::beats`], so the true safety
/// property is *resolution on contact* — a beaten primary yields the
/// moment it hears the winner (the `unyielded-beaten-primary`
/// transition invariant) — plus the liveness theorem that no fair
/// schedule keeps a dual primary alive forever.
fn finish(mut next: AbsState, ctx: Ctx) -> Step {
    if ctx.truncated {
        return Step { next: None, obs: None, violations: ctx.violations };
    }
    for n in &mut next.nodes {
        n.normalize();
    }
    for lane in &mut next.chan {
        lane.sort_unstable_by_key(msg_key);
    }
    Step { next: Some(next), obs: ctx.obs, violations: ctx.violations }
}

/// The switchover dance a distressed (or watchdog-fired) primary runs:
/// send the request, then yield through the shared table. Returns `None`
/// when the request cannot be sent for lack of channel space (the action
/// is postponed, not lossy — concretely the send always goes out).
fn yield_after_request(
    s: &AbsState,
    slot: Slot,
    bounds: &Bounds,
    defects: &Defects,
    mutate: impl FnOnce(&mut AbsState),
) -> Option<Step> {
    let out = slot.outgoing();
    let deliverable = !s.partitioned && s.node(slot.other()).up;
    if deliverable && s.raw_count(out) >= bounds.channel_cap {
        return None;
    }
    let mut next = s.clone();
    mutate(&mut next);
    if deliverable {
        let term = next.node(slot).term;
        next.chan[out.index()].push(InFlight { msg: AbsMsg::SwitchoverRequest { term }, age: 0 });
    }
    // A partitioned or peer-down send is simply lost — the very window
    // the SwitchoverYield term pre-allocation exists to survive.
    let mut ctx = Ctx::new();
    let outcome = role_transition(&next.role_view(slot), &RoleEvent::SwitchoverYield, defects);
    apply_role_outcome(&mut next, slot, outcome, defects, bounds, &mut ctx);
    Some(finish(next, ctx))
}

/// Applies one action if enabled. `None` means "not enabled here".
pub fn apply(s: &AbsState, action: Action, bounds: &Bounds, defects: &Defects) -> Option<Step> {
    match action {
        Action::Tick(slot) => {
            let me = s.node(slot);
            if !me.up || s.has_overdue_raw(bounds) {
                return None;
            }
            let peer_up = s.node(slot.other()).up;
            let lead = if slot == Slot::A { 1 } else { -1 };
            if peer_up && (s.drift + lead).abs() > bounds.drift_max {
                return None;
            }
            let send_dropped = s.partitioned || !peer_up;
            if !send_dropped && s.raw_count(slot.outgoing()) >= bounds.channel_cap {
                return None;
            }
            let mut next = s.clone();
            if peer_up {
                next.drift += lead;
            } else {
                // The outage clock starts once the dead node's dying
                // datagrams have landed (they do so within the latency
                // bound, effectively at the crash): only then do the
                // survivor's timers and the outage run in lockstep.
                let drained =
                    !s.chan[slot.other().outgoing().index()].iter().any(|m| m.msg.is_raw());
                if drained {
                    let peer = next.node_mut(slot.other());
                    peer.down_ticks = (peer.down_ticks + 1).min(bounds.silence_limit);
                }
            }
            for lane in &mut next.chan {
                for m in lane.iter_mut() {
                    if m.msg.is_raw() {
                        m.age = (m.age + 1).min(bounds.max_age);
                    }
                }
            }
            if !send_dropped {
                let n = next.node(slot);
                let msg = if n.role == Role::Negotiating {
                    AbsMsg::Hello { role: n.role, term: n.term }
                } else {
                    AbsMsg::Heartbeat { role: n.role, term: n.term }
                };
                next.chan[slot.outgoing().index()].push(InFlight { msg, age: 0 });
            }
            let mut ctx = Ctx::new();
            if next.node(slot).role == Role::Backup {
                let limit = bounds.silence_limit;
                let n = next.node_mut(slot);
                n.silence = (n.silence + 1).min(limit);
                n.any_silence = (n.any_silence + 1).min(limit);
                if n.silence >= limit {
                    let peer_silent = n.any_silence >= limit;
                    let outcome = role_transition(
                        &next.role_view(slot),
                        &RoleEvent::PrimarySilenceExpired { peer_silent },
                        defects,
                    );
                    apply_role_outcome(&mut next, slot, outcome, defects, bounds, &mut ctx);
                }
            }
            Some(finish(next, ctx))
        }
        Action::Deliver(dir, i) => {
            let i = usize::from(i);
            if s.partitioned || i >= s.chan[dir.index()].len() {
                return None;
            }
            let to = dir.receiver();
            if !s.node(to).up {
                return None;
            }
            let InFlight { msg, age } = s.chan[dir.index()][i];
            // Bounded latency makes raw delivery age-ordered per
            // channel: a datagram that has survived a tick was sent a
            // full heartbeat period before an age-0 one, so it cannot
            // arrive after it. (Same-age messages left a node within
            // one period and may reorder under jitter.) Checkpoints
            // ride the separate msgq path and are unordered relative
            // to raw traffic.
            if msg.is_raw() {
                let oldest = s.chan[dir.index()]
                    .iter()
                    .filter(|m| m.msg.is_raw())
                    .map(|m| m.age)
                    .max()
                    .unwrap_or(0);
                if age < oldest {
                    return None;
                }
            }
            // A hello forces a reply; postpone delivery if the reverse
            // channel has no room for it.
            if matches!(msg, AbsMsg::Hello { .. })
                && s.node(dir.sender()).up
                && s.raw_count(dir.reverse()) >= bounds.channel_cap
            {
                return None;
            }
            let mut next = s.clone();
            next.chan[dir.index()].remove(i);
            let mut ctx = Ctx::new();
            match msg {
                AbsMsg::Checkpoint { fresh } => {
                    // msgq path: no engine clocks touched.
                    let store = &mut next.node_mut(to).store;
                    *store = if fresh { Freshness::Fresh } else { (*store).max(Freshness::Stale) };
                }
                raw => {
                    next.node_mut(to).any_silence = 0;
                    match raw {
                        AbsMsg::Hello { role, term } => {
                            if next.node(dir.sender()).up {
                                let n = next.node(to);
                                let reply = AbsMsg::HelloReply { role: n.role, term: n.term };
                                next.chan[dir.reverse().index()]
                                    .push(InFlight { msg: reply, age: 0 });
                            }
                            next.node_mut(to).peer_role = Some(role);
                            let outcome = role_transition(
                                &next.role_view(to),
                                &RoleEvent::PeerHello { role, term: u64::from(term) },
                                defects,
                            );
                            apply_role_outcome(&mut next, to, outcome, defects, bounds, &mut ctx);
                        }
                        AbsMsg::HelloReply { role, term } => {
                            next.node_mut(to).peer_role = Some(role);
                            if next.node(to).role == Role::Negotiating && role == Role::Primary {
                                next.node_mut(to).silence = 0;
                            }
                            let outcome = role_transition(
                                &next.role_view(to),
                                &RoleEvent::PeerHelloReply { role, term: u64::from(term) },
                                defects,
                            );
                            apply_role_outcome(&mut next, to, outcome, defects, bounds, &mut ctx);
                        }
                        AbsMsg::Heartbeat { role, term } => {
                            next.node_mut(to).peer_role = Some(role);
                            if role == Role::Primary {
                                next.node_mut(to).silence = 0;
                            }
                            let beaten = role == Role::Primary
                                && next.node(to).role == Role::Primary
                                && Claim::new(u64::from(term), dir.sender().node_id()).beats(
                                    &Claim::new(u64::from(next.node(to).term), to.node_id()),
                                );
                            let outcome = role_transition(
                                &next.role_view(to),
                                &RoleEvent::PeerHeartbeat { role, term: u64::from(term) },
                                defects,
                            );
                            apply_role_outcome(&mut next, to, outcome, defects, bounds, &mut ctx);
                            if beaten && next.node(to).role == Role::Primary {
                                ctx.violations.push(AbsViolation {
                                    invariant: "unyielded-beaten-primary",
                                    detail: format!(
                                        "{to} stayed primary (term {}) after a beating \
                                         claim at term {term} was delivered",
                                        next.node(to).term
                                    ),
                                });
                            }
                        }
                        AbsMsg::SwitchoverRequest { term } => {
                            let outcome = role_transition(
                                &next.role_view(to),
                                &RoleEvent::PeerSwitchoverRequest { term: u64::from(term) },
                                defects,
                            );
                            apply_role_outcome(&mut next, to, outcome, defects, bounds, &mut ctx);
                        }
                        AbsMsg::Checkpoint { .. } => unreachable!("matched above"),
                    }
                }
            }
            Some(finish(next, ctx))
        }
        Action::Crash(slot) => {
            if !s.node(slot).up || s.budgets.crashes == 0 {
                return None;
            }
            let mut next = s.clone();
            next.budgets.crashes -= 1;
            *next.node_mut(slot) = AbsNode::down();
            // Messages addressed to the dead node are lost.
            next.chan[slot.other().outgoing().index()].clear();
            next.drift = 0;
            Some(finish(next, Ctx::new()))
        }
        Action::Repair(slot) => {
            // A repaired node returns seconds after the crash; datagrams
            // its dead incarnation left in flight land (or die) within
            // the link-latency bound, milliseconds earlier. Repairing
            // over still-queued raw messages would let the old
            // incarnation's hellos and switchover requests interleave
            // with the new incarnation's negotiation — a cross-restart
            // confusion real time cannot produce — so those must drain
            // first.
            if s.node(slot).up || s.chan[slot.outgoing().index()].iter().any(|m| m.msg.is_raw()) {
                return None;
            }
            // And the outage spans seconds — whole silence windows of
            // the survivor's clock (see `AbsNode::down_ticks`).
            if s.node(slot.other()).up && s.node(slot).down_ticks < bounds.silence_limit {
                return None;
            }
            let mut next = s.clone();
            *next.node_mut(slot) = AbsNode::fresh();
            next.drift = 0;
            Some(finish(next, Ctx::new()))
        }
        Action::Partition => {
            if s.partitioned || s.budgets.partitions == 0 {
                return None;
            }
            let mut next = s.clone();
            next.budgets.partitions -= 1;
            next.partitioned = true;
            // Raw datagrams in flight die with the link; queued
            // checkpoint transfers are retried by msgq and survive.
            for lane in &mut next.chan {
                lane.retain(|m| !m.msg.is_raw());
            }
            Some(finish(next, Ctx::new()))
        }
        Action::Heal => {
            if !s.partitioned {
                return None;
            }
            let mut next = s.clone();
            next.partitioned = false;
            Some(finish(next, Ctx::new()))
        }
        Action::Distress(slot) => {
            let n = s.node(slot);
            if !n.up || n.role != Role::Primary || s.budgets.distress == 0 {
                return None;
            }
            yield_after_request(s, slot, bounds, defects, |next| {
                next.budgets.distress -= 1;
            })
        }
        Action::Ship(slot) => {
            let n = s.node(slot);
            let peer = s.node(slot.other());
            if !n.up
                || n.role != Role::Primary
                || !peer.up
                || peer.store == Freshness::Fresh
                || s.chan[slot.outgoing().index()]
                    .iter()
                    .any(|m| matches!(m.msg, AbsMsg::Checkpoint { .. }))
            {
                return None;
            }
            let mut next = s.clone();
            next.chan[slot.outgoing().index()]
                .push(InFlight { msg: AbsMsg::Checkpoint { fresh: true }, age: 0 });
            Some(finish(next, Ctx::new()))
        }
        Action::Advance(slot) => {
            let n = s.node(slot);
            if !n.up || n.role != Role::Primary || s.budgets.advances == 0 {
                return None;
            }
            let mut next = s.clone();
            next.budgets.advances -= 1;
            let peer = next.node_mut(slot.other());
            if peer.store == Freshness::Fresh {
                peer.store = Freshness::Stale;
            }
            for lane in &mut next.chan {
                for m in lane.iter_mut() {
                    if let AbsMsg::Checkpoint { fresh } = &mut m.msg {
                        *fresh = false;
                    }
                }
            }
            Some(finish(next, Ctx::new()))
        }
        Action::Hang(slot) => {
            let n = s.node(slot);
            if !n.up || n.app_hung || s.budgets.hangs == 0 {
                return None;
            }
            let mut next = s.clone();
            next.budgets.hangs -= 1;
            next.node_mut(slot).app_hung = true;
            Some(finish(next, Ctx::new()))
        }
        Action::WatchdogFire(slot) => {
            let n = s.node(slot);
            if !n.up || !n.app_hung {
                return None;
            }
            if n.role == Role::Primary {
                let step = yield_after_request(s, slot, bounds, defects, |next| {
                    next.node_mut(slot).app_hung = false;
                })?;
                return Some(check_watchdog(s, slot, step));
            }
            let mut next = s.clone();
            next.node_mut(slot).app_hung = false;
            Some(check_watchdog(s, slot, finish(next, Ctx::new())))
        }
    }
}

/// The watchdog safety invariant: the deadman may only ever fire on a
/// hung application. Structurally guaranteed by `WatchdogFire`'s guard
/// today; checked anyway so a future edit to the guard cannot silently
/// turn the deadman into a false-positive killer.
fn check_watchdog(before: &AbsState, slot: Slot, mut step: Step) -> Step {
    if !before.node(slot).app_hung {
        step.violations.push(AbsViolation {
            invariant: "watchdog-fire-on-live-app",
            detail: format!("{slot} watchdog fired while its application was heartbeating"),
        });
    }
    step
}

/// Enumerates every enabled action with its step, in a fixed canonical
/// order (determinism of the explorer's state numbering depends on it).
pub fn successors(s: &AbsState, bounds: &Bounds, defects: &Defects) -> Vec<(Action, Step)> {
    let mut candidates: Vec<Action> = Vec::with_capacity(24);
    for slot in SLOTS {
        candidates.push(Action::Tick(slot));
    }
    for dir in DIRS {
        for i in 0..s.chan[dir.index()].len() {
            candidates.push(Action::Deliver(dir, i as u8));
        }
    }
    for slot in SLOTS {
        candidates.push(Action::Ship(slot));
        candidates.push(Action::Advance(slot));
        candidates.push(Action::Distress(slot));
        candidates.push(Action::Hang(slot));
        candidates.push(Action::WatchdogFire(slot));
    }
    candidates.push(Action::Partition);
    candidates.push(Action::Heal);
    for slot in SLOTS {
        candidates.push(Action::Crash(slot));
        candidates.push(Action::Repair(slot));
    }
    candidates
        .into_iter()
        .filter_map(|a| apply(s, a, bounds, defects).map(|step| (a, step)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: Defects = Defects { dual_primary_window: false, stale_promotion: false };

    fn bounds() -> Bounds {
        Bounds::default()
    }

    fn run(s: &AbsState, action: Action) -> AbsState {
        apply(s, action, &bounds(), &CLEAN)
            .unwrap_or_else(|| panic!("{action} must be enabled"))
            .next
            .expect("not truncated")
    }

    /// Drives the happy-path startup: A ticks a hello, B receives it
    /// (announcing via tie-break and replying), A receives the reply.
    fn negotiated() -> AbsState {
        let s = AbsState::initial(Budgets::default());
        let s = run(&s, Action::Tick(Slot::A));
        let s = run(&s, Action::Deliver(Dir::AToB, 0));
        run(&s, Action::Deliver(Dir::BToA, 0))
    }

    #[test]
    fn startup_hello_exchange_elects_the_favored_node() {
        let s = AbsState::initial(Budgets::default());
        let t = apply(&s, Action::Tick(Slot::A), &bounds(), &CLEAN).unwrap();
        let after = t.next.unwrap();
        assert_eq!(after.chan[0].len(), 1);
        assert!(matches!(after.chan[0][0].msg, AbsMsg::Hello { role: Role::Negotiating, term: 0 }));
        // B receives the hello: tie-break makes it Backup(1) and a reply
        // (carrying B's pre-transition negotiating view) goes back.
        let d = apply(&after, Action::Deliver(Dir::AToB, 0), &bounds(), &CLEAN).unwrap();
        assert_eq!(d.obs, Some(Obs { slot: Slot::B, role: Role::Backup, term: 1 }));
        let after = d.next.unwrap();
        assert!(matches!(
            after.chan[1][0].msg,
            AbsMsg::HelloReply { role: Role::Negotiating, term: 0 }
        ));
        // A receives the negotiating-era reply: tie-break, A wins.
        let d = apply(&after, Action::Deliver(Dir::BToA, 0), &bounds(), &CLEAN).unwrap();
        assert_eq!(d.obs, Some(Obs { slot: Slot::A, role: Role::Primary, term: 1 }));
        assert!(d.violations.is_empty());
    }

    #[test]
    fn overdue_raw_messages_block_every_tick() {
        let s = AbsState::initial(Budgets::default());
        let s = run(&s, Action::Tick(Slot::A));
        let s = run(&s, Action::Tick(Slot::B));
        // A's hello aged to 1 under B's tick: all ticks block until a
        // delivery happens.
        assert!(apply(&s, Action::Tick(Slot::A), &bounds(), &CLEAN).is_none());
        assert!(apply(&s, Action::Tick(Slot::B), &bounds(), &CLEAN).is_none());
        let s = run(&s, Action::Deliver(Dir::AToB, 0));
        assert!(apply(&s, Action::Tick(Slot::B), &bounds(), &CLEAN).is_some());
    }

    #[test]
    fn drift_gate_keeps_live_nodes_in_near_lockstep() {
        let mut s = negotiated();
        s.chan = [Vec::new(), Vec::new()];
        s.drift = 0;
        // B may take a one-tick lead, then must wait for A.
        let s = run(&s, Action::Tick(Slot::B));
        assert_eq!(s.drift, -1);
        assert!(apply(&s, Action::Tick(Slot::B), &bounds(), &CLEAN).is_none());
        // With A crashed the gate lifts.
        let mut alone = s.clone();
        alone = run(&alone, Action::Crash(Slot::A));
        assert_eq!(alone.drift, 0);
        assert!(apply(&alone, Action::Tick(Slot::B), &bounds(), &CLEAN).is_some());
    }

    #[test]
    fn silence_promotion_needs_a_dead_or_split_peer() {
        // After a crash of the primary, the backup's own ticks carry it
        // to peer-silent promotion at term+1 (the drift gate lifts for
        // a dead peer).
        let mut s = negotiated();
        s = run(&s, Action::Crash(Slot::A));
        for _ in 1..Bounds::default().silence_limit {
            s = run(&s, Action::Tick(Slot::B));
        }
        let step = apply(&s, Action::Tick(Slot::B), &bounds(), &CLEAN).unwrap();
        assert_eq!(step.obs, Some(Obs { slot: Slot::B, role: Role::Primary, term: 2 }));
        assert!(step.violations.is_empty());
    }

    #[test]
    fn distress_preallocates_the_granted_term() {
        let s = negotiated(); // A Primary(1), B Backup(1)
        let step = apply(&s, Action::Distress(Slot::A), &bounds(), &CLEAN).unwrap();
        // A yields into term 2 — the term its request grants the peer.
        assert_eq!(step.obs, Some(Obs { slot: Slot::A, role: Role::Backup, term: 2 }));
        let next = step.next.unwrap();
        assert!(next.chan[0]
            .iter()
            .any(|m| matches!(m.msg, AbsMsg::SwitchoverRequest { term: 1 })));
        // The peer's takeover on that request also lands on term 2 —
        // the yield pre-allocated it, so the two announcements agree.
        let step = apply(&next, Action::Deliver(Dir::AToB, 0), &bounds(), &CLEAN).unwrap();
        assert_eq!(step.obs, Some(Obs { slot: Slot::B, role: Role::Primary, term: 2 }));
        assert!(step.violations.is_empty());
    }

    #[test]
    fn checkpoints_survive_partitions_and_advances_stale_them() {
        let s = negotiated();
        let s = run(&s, Action::Ship(Slot::A));
        assert!(apply(&s, Action::Ship(Slot::A), &bounds(), &CLEAN).is_none(), "one in flight");
        let split = run(&s, Action::Partition);
        assert!(
            matches!(split.chan[0].as_slice(), [InFlight { msg: AbsMsg::Checkpoint { .. }, .. }]),
            "the queued checkpoint survives the partition: {:?}",
            split.chan[0]
        );
        // An advance in flight stales the image; installing it leaves
        // the store Stale, not Fresh.
        let s = run(&s, Action::Advance(Slot::A));
        let s = run(&s, Action::Deliver(Dir::AToB, 0));
        assert_eq!(s.nodes[1].store, Freshness::Stale);
        // A fresh re-ship upgrades it.
        let s = run(&s, Action::Ship(Slot::A));
        let s = run(&s, Action::Deliver(Dir::AToB, 0));
        assert_eq!(s.nodes[1].store, Freshness::Fresh);
    }

    #[test]
    fn watchdog_fire_needs_a_hung_app_and_triggers_switchover_on_the_primary() {
        let s = negotiated();
        assert!(apply(&s, Action::WatchdogFire(Slot::A), &bounds(), &CLEAN).is_none());
        let s = run(&s, Action::Hang(Slot::A));
        let step = apply(&s, Action::WatchdogFire(Slot::A), &bounds(), &CLEAN).unwrap();
        assert!(step.violations.is_empty());
        assert_eq!(step.obs, Some(Obs { slot: Slot::A, role: Role::Backup, term: 2 }));
        let next = step.next.unwrap();
        assert!(!next.nodes[0].app_hung, "the supervisor restarts the app");
        assert!(next.chan[0].iter().any(|m| matches!(m.msg, AbsMsg::SwitchoverRequest { .. })));
    }

    #[cfg(feature = "inject_bugs")]
    #[test]
    fn stale_promotion_defect_is_a_transition_violation() {
        let defects = Defects { dual_primary_window: false, stale_promotion: true };
        let s = negotiated();
        let s = run(&s, Action::Ship(Slot::A));
        let s = run(&s, Action::Deliver(Dir::AToB, 0)); // B store Fresh
        let mut s = run(&s, Action::Crash(Slot::A));
        for _ in 1..Bounds::default().silence_limit {
            let step = apply(&s, Action::Tick(Slot::B), &bounds(), &defects).unwrap();
            s = step.next.unwrap();
        }
        let step = apply(&s, Action::Tick(Slot::B), &bounds(), &defects).unwrap();
        assert!(
            step.violations.iter().any(|v| v.invariant == "promotion-from-stale-image"),
            "got {:?}",
            step.violations
        );
    }

    /// A finding the checker produced, pinned as a test: a same-term
    /// dual primary is reachable in the *clean* protocol, with timings
    /// every one of which is concretely satisfiable. B yields its
    /// primacy to a dead peer on distress (becoming `Backup(3)` via the
    /// term pre-allocation), the repair lands before B's next silence
    /// window completes, A promotes to `Primary(4)` — `their_term + 1`
    /// off B's hello reply — and a partition within one heartbeat of
    /// that promotion lets B silence-promote to the *same* term 4.
    /// Claims are really `(term, node)` pairs, so the pair still
    /// resolves on contact: the tail of the test heals the partition
    /// and watches B yield the moment the favored heartbeat arrives.
    #[test]
    fn same_term_dual_primary_is_reachable_and_resolves_on_contact() {
        let s = AbsState::initial(Budgets::default());
        let s = run(&s, Action::Tick(Slot::A));
        let s = run(&s, Action::Deliver(Dir::AToB, 0)); // B -> Backup(1), reply in flight
        let s = run(&s, Action::Crash(Slot::A)); // reply dies with A
        let mut s = s;
        for _ in 0..Bounds::default().silence_limit {
            s = run(&s, Action::Tick(Slot::B));
        }
        assert_eq!(s.nodes[1].role, Role::Primary, "silence promotion during the outage");
        assert_eq!(s.nodes[1].term, 2);
        let s = run(&s, Action::Distress(Slot::B)); // yields Backup(3) to a dead peer
        assert_eq!((s.nodes[1].role, s.nodes[1].term), (Role::Backup, 3));
        let s = run(&s, Action::Repair(Slot::A)); // repair beats B's next silence window
        let s = run(&s, Action::Tick(Slot::A));
        let s = run(&s, Action::Deliver(Dir::AToB, 0)); // B replies Backup(3)
        let s = run(&s, Action::Deliver(Dir::BToA, 0)); // A -> Primary(4) = their + 1
        assert_eq!((s.nodes[0].role, s.nodes[0].term), (Role::Primary, 4));
        let s = run(&s, Action::Partition); // cut within one heartbeat of the promotion
        let mut s = s;
        for _ in 0..Bounds::default().silence_limit {
            if apply(&s, Action::Tick(Slot::B), &bounds(), &CLEAN).is_none() {
                s = run(&s, Action::Tick(Slot::A)); // keep the drift gate satisfied
            }
            s = run(&s, Action::Tick(Slot::B));
        }
        assert_eq!(
            (s.nodes[1].role, s.nodes[1].term),
            (Role::Primary, 4),
            "the naive never-two-primaries state invariant is refuted"
        );
        assert!(s.nodes[0].role == Role::Primary && s.nodes[0].term == 4);

        // …and the true property holds: resolution on contact.
        let s = run(&s, Action::Heal);
        let s = run(&s, Action::Tick(Slot::A)); // favored heartbeat goes out
        let hb = s.chan[Dir::AToB.index()]
            .iter()
            .position(|m| matches!(m.msg, AbsMsg::Heartbeat { role: Role::Primary, term: 4 }))
            .expect("the winning claim is on the wire");
        let step = apply(&s, Action::Deliver(Dir::AToB, hb as u8), &bounds(), &CLEAN).unwrap();
        assert!(step.violations.is_empty(), "{:?}", step.violations);
        assert_eq!(step.obs, Some(Obs { slot: Slot::B, role: Role::Backup, term: 4 }));
    }
}
