//! `oftt-verify` CLI: exhaust the abstract failover-protocol state
//! space, check safety and liveness, refine concrete trace exports, and
//! render counterexamples as replayable oftt-check fault scripts.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use oftt::transition::Defects;
use oftt_check::export::TraceExport;
use oftt_verify::explore::{explore, Explored};
use oftt_verify::liveness::find_persistent_dual_primary;
use oftt_verify::model::{AbsState, Action, Bounds, Budgets};
use oftt_verify::refine::refine_export;
use oftt_verify::render::render_script;

const USAGE: &str = "\
oftt-verify: exhaustive explicit-state verification of the OFTT failover
protocol, with trace-refinement conformance against oftt-check

USAGE:
    oftt-verify [OPTIONS]

BOUNDS:
    --term-max N           truncate branches above this term (default 4)
    --channel-cap N        raw messages per channel (default 3)
    --max-age N            ticks a raw message may float (default 1)
    --silence-limit N      backup ticks to silence promotion (default 4)
    --drift-max N          tick-count lead between live nodes (default 1)
    --state-cap N          abort past this many states (default 5000000)

FAULT BUDGETS:
    --crashes N            node crashes (default 1)
    --partitions N         interconnect partitions (default 1)
    --distress N           application distress calls (default 1)
    --advances N           checkpoint staleness events (default 1)
    --hangs N              application hangs (default 1)

MODES:
    --liveness             also hunt fair persistent-dual-primary lassos
    --expect-states N      fail (exit 2) unless exactly N states explored
    --refine DIR           check every .trace export in DIR for inclusion
    --defect NAME          enable a seeded defect: dual-primary-window |
                           stale-promotion (needs --features inject_bugs)
    --render PATH          write the first counterexample as a fault script
    --help                 this text

EXIT CODE: 0 verified clean, 1 usage error, 2 violations / lasso /
refinement failure / state-count mismatch.";

struct Args {
    bounds: Bounds,
    budgets: Budgets,
    state_cap: usize,
    liveness: bool,
    expect_states: Option<usize>,
    refine: Option<PathBuf>,
    defects: Defects,
    render: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        bounds: Bounds::default(),
        budgets: Budgets::default(),
        state_cap: 5_000_000,
        liveness: false,
        expect_states: None,
        refine: None,
        defects: Defects::default(),
        render: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        fn num<T: std::str::FromStr>(v: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse().map_err(|e| format!("{e}"))
        }
        match arg.as_str() {
            "--term-max" => args.bounds.term_max = num(value("--term-max")?)?,
            "--channel-cap" => args.bounds.channel_cap = num(value("--channel-cap")?)?,
            "--max-age" => args.bounds.max_age = num(value("--max-age")?)?,
            "--silence-limit" => args.bounds.silence_limit = num(value("--silence-limit")?)?,
            "--drift-max" => args.bounds.drift_max = num(value("--drift-max")?)?,
            "--state-cap" => args.state_cap = num(value("--state-cap")?)?,
            "--crashes" => args.budgets.crashes = num(value("--crashes")?)?,
            "--partitions" => args.budgets.partitions = num(value("--partitions")?)?,
            "--distress" => args.budgets.distress = num(value("--distress")?)?,
            "--advances" => args.budgets.advances = num(value("--advances")?)?,
            "--hangs" => args.budgets.hangs = num(value("--hangs")?)?,
            "--liveness" => args.liveness = true,
            "--expect-states" => args.expect_states = Some(num(value("--expect-states")?)?),
            "--refine" => args.refine = Some(PathBuf::from(value("--refine")?)),
            "--defect" => {
                let v = value("--defect")?;
                match v.as_str() {
                    "dual-primary-window" => args.defects.dual_primary_window = true,
                    "stale-promotion" => args.defects.stale_promotion = true,
                    other => return Err(format!("unknown defect {other:?}")),
                }
                if !cfg!(feature = "inject_bugs") {
                    eprintln!(
                        "warning: --defect {v} is inert — rebuild with \
                         --features inject_bugs to compile the seeded defect in"
                    );
                }
            }
            "--render" => args.render = Some(PathBuf::from(value("--render")?)),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if args.bounds.silence_limit == 0 || args.bounds.term_max == 0 {
        return Err("--silence-limit and --term-max must be at least 1".to_string());
    }
    Ok(args)
}

fn refine_dir(ex: &Explored, bounds: &Bounds, dir: &Path) -> Result<(), String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "trace"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .trace exports found in {}", dir.display()));
    }
    let mut failures = 0usize;
    let mut total_obs = 0usize;
    for path in &paths {
        let export = TraceExport::load(path)?;
        match refine_export(ex, &export, bounds) {
            Ok(n) => total_obs += n,
            Err(e) => {
                failures += 1;
                eprintln!("REFINEMENT FAILURE {}: {e}", path.display());
            }
        }
    }
    println!(
        "refinement: {} export(s), {} observation(s), {} failure(s)",
        paths.len(),
        total_obs,
        failures
    );
    if failures > 0 {
        return Err(format!("{failures} export(s) failed trace inclusion"));
    }
    Ok(())
}

fn describe_path(path: &[Action]) -> String {
    path.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(", ")
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(1);
        }
    };

    let started = Instant::now();
    let initial = AbsState::initial(args.budgets);
    let result = explore(initial, &args.bounds, &args.defects, args.state_cap);
    println!(
        "explored {} states, {} transitions ({} truncated at term bound, \
         {} stutter-reduced) in {:?}",
        result.states.len(),
        result.transitions,
        result.truncated,
        result.por_reduced,
        started.elapsed()
    );

    let mut failed = false;
    if result.capped {
        eprintln!(
            "STATE CAP HIT at {} states — the space was NOT exhausted; \
             raise --state-cap or tighten the bounds",
            result.states.len()
        );
        failed = true;
    }

    for v in &result.violations {
        println!("VIOLATION {}: {}", v.invariant, v.detail);
        println!("  shortest path ({} actions): {}", v.path.len(), describe_path(&v.path));
        failed = true;
    }
    if result.violations.is_empty() {
        println!("safety: all invariants hold on every reachable transition");
    }

    let mut render_path: Option<Vec<Action>> = result.violations.first().map(|v| v.path.clone());

    if args.liveness {
        match find_persistent_dual_primary(&result) {
            None => println!("liveness: no fair schedule keeps a dual primary forever"),
            Some(lasso) => {
                println!(
                    "LASSO persistent-dual-primary: stem {} actions, cycle {} actions",
                    lasso.stem.len(),
                    lasso.cycle.len()
                );
                println!("  stem:  {}", describe_path(&lasso.stem));
                println!("  cycle: {}", describe_path(&lasso.cycle));
                if render_path.is_none() {
                    let mut p = lasso.stem.clone();
                    p.extend_from_slice(&lasso.cycle);
                    render_path = Some(p);
                }
                failed = true;
            }
        }
    }

    if let Some(expected) = args.expect_states {
        if result.states.len() != expected {
            eprintln!(
                "STATE COUNT MISMATCH: explored {} states, expected {expected} — \
                 the abstract model or its bounds changed; re-pin after review",
                result.states.len()
            );
            failed = true;
        } else {
            println!("state count matches the pinned expectation ({expected})");
        }
    }

    if let Some(dir) = &args.refine {
        if let Err(e) = refine_dir(&result, &args.bounds, dir) {
            eprintln!("error: {e}");
            failed = true;
        }
    }

    if let Some(out) = &args.render {
        match render_path {
            None => println!("nothing to render: no counterexample was found"),
            Some(path) => {
                let script = render_script(&path);
                if script.steps.is_empty() {
                    println!("counterexample uses no injectable faults; nothing to render");
                } else if let Err(e) = std::fs::write(out, script.to_text()) {
                    eprintln!("error: writing {}: {e}", out.display());
                    failed = true;
                } else {
                    println!(
                        "rendered {}-step fault script to {}",
                        script.steps.len(),
                        out.display()
                    );
                }
            }
        }
    }

    if failed {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
