//! oftt-verify: exhaustive explicit-state verification of the OFTT
//! failover protocol, with trace-refinement conformance against
//! oftt-check.
//!
//! Three layers, one shared transition table:
//!
//! * [`model`] — a finite abstraction of the redundant pair whose role
//!   machine *is* [`oftt::transition::role_transition`], the same
//!   function the production engine executes. The abstraction bounds
//!   terms, channels, message age, and tick drift, and exposes fault
//!   injection (crashes, partitions, distress, checkpoint staleness,
//!   application hangs) through finite budgets.
//! * [`explore`] + [`liveness`] — an exhaustive BFS over every
//!   reachable abstract state (with a sound pure-stutter partial-order
//!   reduction), checking the safety catalog on every transition, plus
//!   a nested-DFS search for fair lassos that would mean a dual primary
//!   can persist forever.
//! * [`refine`] + [`render`] — the bridge to the concrete system:
//!   oftt-check trace exports are projected onto the abstract
//!   observables and checked for trace inclusion, and abstract
//!   counterexamples are rendered back as replayable oftt-check fault
//!   scripts.
//!
//! The `inject_bugs` feature threads the seeded protocol defects
//! through the shared table and the abstract model alike, so the same
//! bug is found abstractly (as an invariant violation and a lasso) and
//! reproduced concretely (by replaying the rendered script under
//! oftt-check).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(unreachable_pub, unused_qualifications)]

pub mod explore;
pub mod liveness;
pub mod model;
pub mod refine;
pub mod render;
