//! Acceptance tests for oftt-verify: exhaust a bounded space clean,
//! refine live oftt-check runs into the abstract model, demonstrate why
//! slot symmetry is not a sound reduction, and — under `inject_bugs` —
//! close the loop on the seeded defects: each is caught abstractly and
//! its rendered counterexample script reproduces the bug concretely.

use oftt::role::Role;
use oftt::transition::Defects;
use oftt_check::{run_scenario, CheckOptions, ScenarioKind, TraceExport};
use oftt_verify::explore::{explore, swapped, Explored};
use oftt_verify::liveness::find_persistent_dual_primary;
use oftt_verify::model::{AbsState, Bounds, Budgets};
use oftt_verify::refine::refine_export;

const CLEAN: Defects = Defects { dual_primary_window: false, stale_promotion: false };

/// The budget the debug-build tests exhaust: one crash and one
/// partition, which covers both stock oftt-check scenarios while
/// keeping the space small enough for unoptimized runs (the release
/// CLI sweeps the full default budget).
fn crash_and_cut() -> Budgets {
    Budgets { crashes: 1, partitions: 1, distress: 0, advances: 0, hangs: 0 }
}

fn graph(budgets: Budgets, defects: &Defects) -> Explored {
    let ex = explore(AbsState::initial(budgets), &Bounds::default(), defects, 1_000_000);
    assert!(!ex.capped, "test budgets must fit the cap");
    ex
}

#[test]
fn the_crash_and_cut_space_is_exhausted_clean_and_lasso_free() {
    let ex = graph(crash_and_cut(), &CLEAN);
    assert!(ex.violations.is_empty(), "{:?}", ex.violations);
    assert!(
        find_persistent_dual_primary(&ex).is_none(),
        "no fair schedule may keep a dual primary alive in the clean protocol"
    );
    assert!(ex.states.len() > 10_000, "got only {} states", ex.states.len());
    assert!(ex.por_reduced > 0, "the stutter reduction must engage");
}

#[test]
fn live_scenario_exports_refine_into_the_abstract_model() {
    let ex = graph(crash_and_cut(), &CLEAN);
    let opts = CheckOptions::default();
    for kind in [ScenarioKind::PairFailover, ScenarioKind::PartitionedStartup] {
        for seed in 1..=3u64 {
            let run = run_scenario(kind, seed, &[], &opts);
            let export = TraceExport::from_run(kind, &opts, &run);
            let n = refine_export(&ex, &export, &Bounds::default())
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", kind.name()));
            assert!(n > 0, "{} seed {seed}: a live run must announce roles", kind.name());
        }
    }
}

#[test]
fn slot_symmetry_is_not_a_sound_reduction() {
    // The NodeId tie-break bakes an asymmetry into the protocol: the
    // favored node wins every faultless election. Its slot-swapped
    // image (the unfavored node serving as primary) is therefore
    // unreachable without faults — merging swap-equivalent states, the
    // classic symmetry reduction for replica pairs, would identify a
    // reachable state with an unreachable one.
    let budgets = Budgets { crashes: 0, partitions: 0, distress: 0, advances: 0, hangs: 0 };
    let ex = graph(budgets, &CLEAN);
    let elected = ex
        .states
        .iter()
        .find(|s| s.nodes[0].role == Role::Primary)
        .expect("the faultless space elects the favored node");
    let mirror = swapped(elected);
    assert!(!ex.states.contains(&mirror), "the mirrored election must be unreachable");
    // The map itself is well-behaved — the asymmetry is the protocol's.
    assert_eq!(swapped(&mirror), *elected);
}

#[cfg(feature = "inject_bugs")]
mod seeded_defects {
    use super::*;
    use oftt_check::{check_all, run_script};
    use oftt_verify::render::render_script;

    /// The dual-primary-window defect (a beaten primary keeps serving)
    /// is caught abstractly as both a safety violation and a fair
    /// lasso, and the rendered fault script reproduces it concretely.
    #[test]
    fn dual_primary_window_round_trips_from_abstract_find_to_concrete_repro() {
        let defects = Defects { dual_primary_window: true, stale_promotion: false };
        let budgets = Budgets { crashes: 0, partitions: 1, distress: 0, advances: 0, hangs: 0 };
        let ex = graph(budgets, &defects);
        let found = ex
            .violations
            .iter()
            .find(|v| v.invariant == "unyielded-beaten-primary")
            .expect("the defect must be caught abstractly");
        assert!(
            find_persistent_dual_primary(&ex).is_some(),
            "the unclosed window must also show up as a persistent lasso"
        );

        let script = render_script(&found.path);
        assert!(!script.steps.is_empty(), "the witness must use injectable faults");
        let opts = CheckOptions { defects, ..Default::default() };
        let reproduced = (1..=3u64).any(|seed| {
            let run = run_script(&script, seed, &[], &opts);
            check_all(&run.events).iter().any(|v| {
                v.invariant == "no-dual-primary-after-heal"
                    || v.invariant == "converged-single-primary"
            })
        });
        assert!(reproduced, "rendered script must reproduce the defect under oftt-check");
    }

    /// The stale-promotion defect (a promoting FTIM restores the image
    /// preceding the newest install) is caught abstractly, and the
    /// rendered script rolls the concrete store back past acknowledged
    /// state — tripping the checkpoint catalog.
    #[test]
    fn stale_promotion_round_trips_from_abstract_find_to_concrete_repro() {
        let defects = Defects { dual_primary_window: false, stale_promotion: true };
        let budgets = Budgets { crashes: 0, partitions: 0, distress: 1, advances: 0, hangs: 0 };
        let ex = graph(budgets, &defects);
        let found = ex
            .violations
            .iter()
            .find(|v| v.invariant == "promotion-from-stale-image")
            .expect("the defect must be caught abstractly");

        let script = render_script(&found.path);
        assert!(!script.steps.is_empty(), "the witness must use injectable faults");
        let opts = CheckOptions { defects, ..Default::default() };
        let reproduced = (1..=3u64).any(|seed| {
            let run = run_script(&script, seed, &[], &opts);
            check_all(&run.events).iter().any(|v| v.invariant.starts_with("ckpt-"))
        });
        assert!(reproduced, "rendered script must roll the store back under oftt-check");
    }
}
