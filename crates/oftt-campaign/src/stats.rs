// oftt-lint: no-panic
//! Cross-seed aggregation and the acceptance gate.
//!
//! A campaign's verdict is computed here, once, and consumed twice: the
//! CLI exits non-zero on [`gate_failures`], and the emitted
//! `BENCH_campaign.json` carries the same numbers for `bench-validate`
//! to re-check in CI — the artifact can't pass validation while the run
//! that produced it failed its own gate.

use crate::exec::RunRecord;
use crate::scenario::{Pin, Scenario};

/// One scenario's cross-seed aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioStats {
    /// The scenario's name.
    pub name: String,
    /// Seeds executed.
    pub seeds: usize,
    /// The per-run horizon, ms.
    pub horizon_ms: u64,
    /// Whether this scenario demonstrates a seeded defect.
    pub expect_violations: bool,
    /// Seeds that ended with a live primary.
    pub recovered: usize,
    /// Seeds that did not.
    pub non_recovered: usize,
    /// Total invariant violations across all seeds.
    pub violations: usize,
    /// Seeds with at least one violation.
    pub violating_seeds: usize,
    /// Which seeds those were (for the human report).
    pub violating_seed_list: Vec<u64>,
    /// Completed failover gaps pooled across all seeds.
    pub failover_samples: usize,
    /// Failover distribution, nearest-rank percentiles, ms.
    pub failover_ms_p50: f64,
    /// 95th percentile, ms.
    pub failover_ms_p95: f64,
    /// 99th percentile, ms.
    pub failover_ms_p99: f64,
    /// The worst observed failover, ms.
    pub failover_ms_max: f64,
    /// Mean per-seed availability.
    pub availability_mean: f64,
    /// Worst per-seed availability.
    pub availability_min: f64,
    /// The scenario's pinned thresholds, carried into the artifact.
    pub pin: Pin,
}

/// Nearest-rank percentile over an already-sorted µs sample pool, in ms.
fn percentile_ms(sorted_us: &[u64], pct: f64) -> f64 {
    let n = sorted_us.len();
    if n == 0 {
        return 0.0;
    }
    let rank = ((pct / 100.0) * n as f64).ceil() as usize;
    let index = rank.clamp(1, n) - 1;
    sorted_us.get(index).copied().unwrap_or(0) as f64 / 1000.0
}

/// Aggregates one scenario's records (the caller passes only records whose
/// `scenario` index matches).
pub fn aggregate(scenario: &Scenario, records: &[RunRecord]) -> ScenarioStats {
    let mut samples_us: Vec<u64> = Vec::new();
    let mut recovered = 0usize;
    let mut violations = 0usize;
    let mut violating_seed_list = Vec::new();
    let mut availability_sum = 0.0f64;
    let mut availability_min = f64::INFINITY;
    for record in records {
        let outcome = &record.outcome;
        samples_us.extend_from_slice(&outcome.failover_us);
        if outcome.recovered {
            recovered += 1;
        }
        if !outcome.violations.is_empty() {
            violations += outcome.violations.len();
            violating_seed_list.push(record.seed);
        }
        availability_sum += outcome.availability;
        availability_min = availability_min.min(outcome.availability);
    }
    samples_us.sort_unstable();
    let count = records.len();
    ScenarioStats {
        name: scenario.name.clone(),
        seeds: count,
        horizon_ms: scenario.horizon.as_micros() / 1000,
        expect_violations: scenario.expect_violations,
        recovered,
        non_recovered: count - recovered,
        violations,
        violating_seeds: violating_seed_list.len(),
        failover_samples: samples_us.len(),
        failover_ms_p50: percentile_ms(&samples_us, 50.0),
        failover_ms_p95: percentile_ms(&samples_us, 95.0),
        failover_ms_p99: percentile_ms(&samples_us, 99.0),
        failover_ms_max: percentile_ms(&samples_us, 100.0),
        availability_mean: if count == 0 { 0.0 } else { availability_sum / count as f64 },
        availability_min: if count == 0 { 0.0 } else { availability_min },
        pin: scenario.pin,
        violating_seed_list,
    }
}

/// The acceptance gate: what, if anything, fails this scenario.
///
/// A scenario not expecting violations fails on any violation or any
/// non-recovered seed; a defect-demonstration scenario fails when *no*
/// seed surfaced the defect (the instrument went blind). Pinned
/// thresholds fail on breach either way.
pub fn gate_failures(stats: &ScenarioStats) -> Vec<String> {
    let name = &stats.name;
    let mut failures = Vec::new();
    if stats.expect_violations {
        if stats.violating_seeds == 0 {
            failures
                .push(format!("{name}: expected invariant violations but no seed surfaced one"));
        }
    } else {
        if stats.violations > 0 {
            failures.push(format!(
                "{name}: {} invariant violation(s) across seeds {:?}",
                stats.violations, stats.violating_seed_list
            ));
        }
        if stats.non_recovered > 0 {
            failures
                .push(format!("{name}: {} seed(s) never recovered a primary", stats.non_recovered));
        }
    }
    if let Some(floor) = stats.pin.min_availability {
        if stats.availability_min < floor {
            failures.push(format!(
                "{name}: availability_min {:.6} below the pinned floor {floor}",
                stats.availability_min
            ));
        }
    }
    if let Some(ceiling) = stats.pin.max_failover_p99_ms {
        if stats.failover_ms_p99 > ceiling {
            failures.push(format!(
                "{name}: failover p99 {:.3} ms over the pinned ceiling {ceiling} ms",
                stats.failover_ms_p99
            ));
        }
    }
    if let Some(floor) = stats.pin.min_failover_samples {
        if (stats.failover_samples as u64) < floor {
            failures.push(format!(
                "{name}: {} failover sample(s), below the pinned floor {floor}",
                stats.failover_samples
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let pool: Vec<u64> = (1..=100).map(|n| n * 1000).collect();
        assert_eq!(percentile_ms(&pool, 50.0), 50.0);
        assert_eq!(percentile_ms(&pool, 95.0), 95.0);
        assert_eq!(percentile_ms(&pool, 99.0), 99.0);
        assert_eq!(percentile_ms(&pool, 100.0), 100.0);
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
        assert_eq!(percentile_ms(&[7000], 99.0), 7.0);
    }

    fn stats() -> ScenarioStats {
        ScenarioStats {
            name: "t".into(),
            seeds: 10,
            horizon_ms: 40000,
            expect_violations: false,
            recovered: 10,
            non_recovered: 0,
            violations: 0,
            violating_seeds: 0,
            violating_seed_list: Vec::new(),
            failover_samples: 30,
            failover_ms_p50: 600.0,
            failover_ms_p95: 800.0,
            failover_ms_p99: 900.0,
            failover_ms_max: 1000.0,
            availability_mean: 0.99,
            availability_min: 0.97,
            pin: Pin::default(),
        }
    }

    #[test]
    fn gate_passes_clean_and_fails_dirty() {
        assert!(gate_failures(&stats()).is_empty());

        let mut dirty = stats();
        dirty.violations = 2;
        dirty.violating_seeds = 1;
        dirty.violating_seed_list = vec![7];
        assert!(gate_failures(&dirty).iter().any(|f| f.contains("violation")));

        let mut stuck = stats();
        stuck.recovered = 9;
        stuck.non_recovered = 1;
        assert!(gate_failures(&stuck).iter().any(|f| f.contains("never recovered")));

        let mut blind = stats();
        blind.expect_violations = true;
        assert!(gate_failures(&blind).iter().any(|f| f.contains("no seed surfaced")));
        blind.violating_seeds = 3;
        assert!(gate_failures(&blind).is_empty(), "a surfaced defect satisfies the gate");
    }

    #[test]
    fn pins_gate_the_distribution() {
        let mut pinned = stats();
        pinned.pin = Pin {
            min_availability: Some(0.98),
            max_failover_p99_ms: Some(500.0),
            min_failover_samples: Some(100),
        };
        let failures = gate_failures(&pinned);
        assert_eq!(failures.len(), 3, "{failures:?}");
    }
}
