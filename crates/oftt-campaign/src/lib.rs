//! # oftt-campaign — declarative scenario campaigns over the checked
//! simulator
//!
//! One deterministic run answers "what happened under this seed"; the
//! paper's claims are statistical — availability fractions, failover-time
//! distributions. This crate turns the ds-sim/oftt-check harness into a
//! statistical instrument:
//!
//! * [`scenario`] loads declarative JSON scenario files (fault-script
//!   template + seed population + validated parameter overrides), with
//!   unknown keys, duplicate keys, and out-of-range seed spans as typed
//!   hard errors;
//! * [`expand`] unrolls the template per seed with deterministic jitter
//!   (`SimRng::derive(seed, fnv(name) ^ step)`), so every run is exactly
//!   reproducible from `(file, seed)`;
//! * [`exec`] fans the runs across worker threads — each executes the
//!   full trace-invariant engine plus the [`oftt_check::RunOutcome`]
//!   availability model;
//! * [`stats`] pools the outcomes into per-scenario distributions
//!   (p50/p95/p99/max failover, availability mean/min, violation and
//!   non-recovery counts) and applies the acceptance gate;
//! * [`report`] emits the `oftt-bench-campaign-v1` artifact CI validates
//!   and the human summary table.
//!
//! ## Usage
//!
//! ```text
//! cargo run -p oftt-campaign --release -- run \
//!     --scenario examples/campaigns/partition_storm.json \
//!     --out BENCH_campaign.json
//! ```
//!
//! Exit status: `0` clean, `1` load/usage error, `2` gate failure
//! (unexpected violations, non-recovered seeds, or a breached pin).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(unreachable_pub, unused_qualifications)]

pub mod error;
pub mod exec;
pub mod expand;
pub mod report;
pub mod scenario;
pub mod stats;

pub use error::CampaignError;
pub use exec::{default_jobs, run_campaign, run_one, RunRecord};
pub use expand::expand;
pub use report::{render_json, render_summary};
pub use scenario::{Pin, Scenario, StepTemplate, MAX_SEEDS};
pub use stats::{aggregate, gate_failures, ScenarioStats};
