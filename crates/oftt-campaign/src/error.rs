// oftt-lint: no-panic
//! Typed campaign-loading failures.
//!
//! Scenario files are human-authored and arrive from outside the type
//! system, so every way one can be wrong gets a variant that names the
//! offending key or span — the CLI prints these verbatim and a test can
//! match on them. Nothing in the loading path panics.

use oftt_harness::overrides::OverrideError;

/// Why a scenario file (or a run request built from one) was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The scenario file could not be read at all.
    Io {
        /// The path as given on the command line.
        path: String,
        /// The OS error, rendered.
        detail: String,
    },
    /// The file is not well-formed JSON.
    Json {
        /// The offending file.
        path: String,
        /// The parse failure, with its byte offset.
        detail: String,
    },
    /// An object in the file spelled the same key twice — the second
    /// spelling would silently shadow the first, so it is an error.
    DuplicateKey {
        /// The offending file.
        path: String,
        /// The duplicated key, verbatim.
        key: String,
    },
    /// A key the schema does not know, in the scenario shell, a script
    /// step, or the pin block.
    UnknownKey {
        /// The offending file.
        path: String,
        /// Where the key appeared (`"scenario"`, `"script step"`, `"pin"`).
        context: &'static str,
        /// The offending key, verbatim.
        key: String,
    },
    /// A parameter override was rejected by the harness (unknown override
    /// key, or a value that is mistyped / out of range).
    Override {
        /// The offending file.
        path: String,
        /// The harness's verdict, carried intact.
        inner: OverrideError,
    },
    /// The seed specification is unusable: an inverted or oversized
    /// range, a duplicate, or a non-integer.
    BadSeedSpan {
        /// The offending file.
        path: String,
        /// What was wrong with the span.
        detail: String,
    },
    /// A known field carries a value of the wrong type or range.
    BadField {
        /// The offending file.
        path: String,
        /// The field, as a dotted-ish human label.
        field: String,
        /// What was wrong with the value.
        detail: String,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Io { path, detail } => write!(f, "{path}: cannot read: {detail}"),
            CampaignError::Json { path, detail } => write!(f, "{path}: not valid JSON: {detail}"),
            CampaignError::DuplicateKey { path, key } => {
                write!(f, "{path}: duplicate key {key:?} (the second spelling would silently shadow the first)")
            }
            CampaignError::UnknownKey { path, context, key } => {
                write!(f, "{path}: unknown {context} key {key:?}")
            }
            CampaignError::Override { path, inner } => write!(f, "{path}: {inner}"),
            CampaignError::BadSeedSpan { path, detail } => {
                write!(f, "{path}: bad seed span: {detail}")
            }
            CampaignError::BadField { path, field, detail } => {
                write!(f, "{path}: bad value for {field:?}: {detail}")
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Override { inner, .. } => Some(inner),
            _ => None,
        }
    }
}
