//! Parallel campaign execution.
//!
//! Every `(scenario, seed)` pair is an independent deterministic
//! simulation, so the executor is a plain work-stealing loop: one shared
//! atomic cursor over the flattened run list, N worker threads pulling
//! from it, results re-sorted by `(scenario, seed)` afterwards so the
//! output order is independent of thread scheduling. No channels, no
//! per-run allocator churn beyond what the simulation itself does.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use oftt_check::{run_script, CheckOptions, RunOutcome};

use crate::expand::expand;
use crate::scenario::Scenario;

/// One finished run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Index into the campaign's scenario list.
    pub scenario: usize,
    /// The seed this run used.
    pub seed: u64,
    /// The statistical outcome, violations included.
    pub outcome: RunOutcome,
}

/// The machine's parallelism, as a worker-count default.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Runs one seed of one scenario to completion.
pub fn run_one(scenario: &Scenario, index: usize, seed: u64) -> RunRecord {
    let script = expand(scenario, seed);
    let opts = CheckOptions {
        inject_startup_bug: scenario.inject_startup_bug,
        tie_window: scenario.tie_window,
        horizon: scenario.horizon,
        overrides: scenario.overrides.clone(),
        ..Default::default()
    };
    let result = run_script(&script, seed, &[], &opts);
    let outcome = RunOutcome::compute(&result.events, scenario.horizon);
    RunRecord { scenario: index, seed, outcome }
}

/// Runs every seed of every scenario across `jobs` worker threads and
/// returns the records sorted by `(scenario, seed)`.
pub fn run_campaign(scenarios: &[Scenario], jobs: usize) -> Vec<RunRecord> {
    let work: Vec<(usize, u64)> = scenarios
        .iter()
        .enumerate()
        .flat_map(|(i, sc)| sc.seeds.iter().map(move |&seed| (i, seed)))
        .collect();
    let jobs = jobs.clamp(1, work.len().max(1));
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<RunRecord>> = Mutex::new(Vec::with_capacity(work.len()));
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&(index, seed)) = work.get(i) else { break };
                let Some(scenario) = scenarios.get(index) else { break };
                let record = run_one(scenario, index, seed);
                if let Ok(mut out) = results.lock() {
                    out.push(record);
                }
            });
        }
    });
    let mut out = results.into_inner().unwrap_or_default();
    out.sort_by_key(|r| (r.scenario, r.seed));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const KILL: &str = r#"{
        "name": "engine_kill",
        "seeds": [1, 2],
        "horizon_ms": 20000,
        "script": [
            {"at_ms": 8000, "op": "kill-engine", "slot": "a"},
            {"at_ms": 12000, "op": "restart-engine", "slot": "a"}
        ]
    }"#;

    #[test]
    fn campaign_runs_are_byte_identical_across_executions() {
        let sc = Scenario::load("kill.json", KILL).unwrap();
        let scenarios = vec![sc];
        let first = run_campaign(&scenarios, 2);
        let second = run_campaign(&scenarios, 1);
        assert_eq!(first.len(), 2);
        let render = |records: &[RunRecord]| -> Vec<String> {
            records.iter().map(|r| r.outcome.record(r.seed)).collect()
        };
        // Same scenario + seed ⇒ the same canonical outcome record, no
        // matter how many workers ran it or in what order.
        assert_eq!(render(&first), render(&second));
    }

    #[test]
    fn engine_kill_produces_failover_samples_and_recovers() {
        let sc = Scenario::load("kill.json", KILL).unwrap();
        let records = run_campaign(&[sc], 2);
        for r in &records {
            assert!(r.outcome.violations.is_empty(), "seed {}: {:?}", r.seed, r.outcome);
            assert!(r.outcome.recovered, "seed {} never recovered", r.seed);
            assert!(
                !r.outcome.failover_us.is_empty(),
                "seed {} recorded no failover sample",
                r.seed
            );
        }
    }
}
