// oftt-lint: no-panic
//! Artifact emission and the human-facing summary.
//!
//! The JSON is hand-formatted to the `oftt-bench-campaign-v1` schema the
//! workspace validator (`crates/bench/src/validate.rs`) checks, matching
//! the other bench emitters: no serializer dependency, keys always in the
//! same order, so diffs between campaign artifacts are line-diffs.

use crate::stats::ScenarioStats;

/// Renders the campaign artifact (`oftt-bench-campaign-v1`).
pub fn render_json(
    stats: &[ScenarioStats],
    total_runs: usize,
    elapsed_ms: u64,
    jobs: usize,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"oftt-bench-campaign-v1\",\n");
    out.push_str(&format!("  \"total_runs\": {total_runs},\n"));
    out.push_str(&format!("  \"elapsed_ms\": {elapsed_ms},\n"));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str("  \"scenarios\": [\n");
    let last = stats.len().saturating_sub(1);
    for (i, sc) in stats.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", sc.name));
        out.push_str(&format!("      \"seeds\": {},\n", sc.seeds));
        out.push_str(&format!("      \"horizon_ms\": {},\n", sc.horizon_ms));
        out.push_str(&format!("      \"expect_violations\": {},\n", sc.expect_violations));
        out.push_str(&format!("      \"recovered\": {},\n", sc.recovered));
        out.push_str(&format!("      \"non_recovered\": {},\n", sc.non_recovered));
        out.push_str(&format!("      \"violations\": {},\n", sc.violations));
        out.push_str(&format!("      \"violating_seeds\": {},\n", sc.violating_seeds));
        out.push_str(&format!("      \"failover_samples\": {},\n", sc.failover_samples));
        out.push_str(&format!("      \"failover_ms_p50\": {:.3},\n", sc.failover_ms_p50));
        out.push_str(&format!("      \"failover_ms_p95\": {:.3},\n", sc.failover_ms_p95));
        out.push_str(&format!("      \"failover_ms_p99\": {:.3},\n", sc.failover_ms_p99));
        out.push_str(&format!("      \"failover_ms_max\": {:.3},\n", sc.failover_ms_max));
        out.push_str(&format!("      \"availability_mean\": {:.6},\n", sc.availability_mean));
        out.push_str(&format!("      \"availability_min\": {:.6}", sc.availability_min));
        if sc.pin.is_set() {
            out.push_str(",\n      \"pin\": {");
            let mut parts = Vec::new();
            if let Some(v) = sc.pin.min_availability {
                parts.push(format!("\"min_availability\": {v}"));
            }
            if let Some(v) = sc.pin.max_failover_p99_ms {
                parts.push(format!("\"max_failover_p99_ms\": {v}"));
            }
            if let Some(v) = sc.pin.min_failover_samples {
                parts.push(format!("\"min_failover_samples\": {v}"));
            }
            out.push_str(&parts.join(", "));
            out.push('}');
        }
        out.push_str(if i == last { "\n    }\n" } else { "\n    },\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// The per-scenario summary the CLI prints.
pub fn render_summary(stats: &[ScenarioStats]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>5} {:>5} {:>4} {:>8} {:>9} {:>9} {:>9} {:>10}\n",
        "scenario", "seeds", "recov", "viol", "samples", "p50 ms", "p99 ms", "max ms", "avail"
    ));
    for sc in stats {
        out.push_str(&format!(
            "{:<20} {:>5} {:>5} {:>4} {:>8} {:>9.1} {:>9.1} {:>9.1} {:>10.6}\n",
            sc.name,
            sc.seeds,
            sc.recovered,
            sc.violations,
            sc.failover_samples,
            sc.failover_ms_p50,
            sc.failover_ms_p99,
            sc.failover_ms_max,
            sc.availability_mean,
        ));
        if !sc.violating_seed_list.is_empty() {
            out.push_str(&format!(
                "  {} violating seed(s): {:?}{}\n",
                if sc.expect_violations { "expected" } else { "UNEXPECTED" },
                sc.violating_seed_list.iter().take(10).collect::<Vec<_>>(),
                if sc.violating_seed_list.len() > 10 { " …" } else { "" },
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Pin;

    fn stats(pin: Pin) -> ScenarioStats {
        ScenarioStats {
            name: "storm".into(),
            seeds: 20,
            horizon_ms: 40000,
            expect_violations: false,
            recovered: 20,
            non_recovered: 0,
            violations: 0,
            violating_seeds: 0,
            violating_seed_list: Vec::new(),
            failover_samples: 41,
            failover_ms_p50: 612.5,
            failover_ms_p95: 840.0,
            failover_ms_p99: 901.25,
            failover_ms_max: 1180.0,
            availability_mean: 0.991234,
            availability_min: 0.972,
            pin,
        }
    }

    #[test]
    fn rendered_artifact_parses_and_validates() {
        let pin = Pin {
            min_availability: Some(0.9),
            max_failover_p99_ms: Some(3000.0),
            min_failover_samples: Some(20),
        };
        let json = render_json(&[stats(pin), stats(Pin::default())], 40, 1234, 8);
        let doc = bench::json::parse(&json).unwrap();
        assert_eq!(bench::validate::validate(&doc), Vec::<String>::new());
        assert_eq!(
            doc.get("scenarios").unwrap().as_array().unwrap().len(),
            2,
            "both scenarios present"
        );
    }

    #[test]
    fn summary_mentions_the_scenario() {
        let text = render_summary(&[stats(Pin::default())]);
        assert!(text.contains("storm"));
        assert!(text.contains("0.991234"));
    }
}
