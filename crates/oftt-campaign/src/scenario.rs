// oftt-lint: no-panic
//! Declarative scenario files.
//!
//! A scenario is a JSON document that names a seed population, a fault
//! script *template*, and the knobs of the checked deployment it runs
//! against. The loader is deliberately unforgiving: unknown keys anywhere
//! (the scenario shell, a script step, the pin block, an override) are
//! hard errors, duplicate keys are hard errors, and every numeric field
//! is range-checked at load time — a campaign that runs 100 seeds per
//! scenario must not discover a typo'd `peer_timeout_sm` forty simulated
//! minutes in, silently running the default instead.
//!
//! ## Schema
//!
//! ```json
//! {
//!   "name": "partition_storm",
//!   "description": "repeated short partitions during steady state",
//!   "seeds": {"range": [1, 100]},
//!   "horizon_ms": 40000,
//!   "tie_window_us": 500,
//!   "inject_startup_bug": false,
//!   "expect_violations": false,
//!   "overrides": {"peer_timeout_ms": 1500},
//!   "pin": {"min_availability": 0.9, "max_failover_p99_ms": 3000},
//!   "script": [
//!     {"at_ms": 8000, "op": "partition", "repeat": 4, "every_ms": 6000,
//!      "jitter_ms": 500},
//!     {"at_ms": 9000, "op": "heal", "repeat": 4, "every_ms": 6000}
//!   ]
//! }
//! ```
//!
//! `seeds` is either an explicit array (`[1, 2, 7]`, duplicates rejected)
//! or an inclusive `{"range": [lo, hi]}`; either form is capped at
//! [`MAX_SEEDS`]. Script ops are the [`ScriptOp`] vocabulary by their
//! script names (`crash`, `repair`, `kill-engine`, `restart-engine`,
//! `partition`, `heal`, `distress`, `reboot`, `path-down`, `path-up`,
//! `slow-link`); slot ops take `"slot": "a" | "b"`, path ops take
//! `"path": <index>`, `slow-link` takes `latency_us` / `jitter_us` /
//! `bandwidth_bps`. `repeat` / `every_ms` / `jitter_ms` turn one step
//! into a deterministic per-seed storm (see [`crate::expand`]).

use std::collections::BTreeSet;

use bench::json::{parse_doc, Json, JsonErrorKind};
use ds_sim::prelude::{SimDuration, SimTime};
use oftt_check::{PairSlot, ScriptOp};
use oftt_harness::overrides::{OverrideValue, ParamOverrides};

use crate::error::CampaignError;

/// The most seeds one scenario may name — a guard against a fat-fingered
/// range (`[1, 10000000]`) launching a multi-day sweep.
pub const MAX_SEEDS: usize = 100_000;

/// Pinned acceptance thresholds a scenario carries into the artifact.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Pin {
    /// The sweep's minimum per-seed availability must not fall below this.
    pub min_availability: Option<f64>,
    /// The failover p99 (ms) must not exceed this.
    pub max_failover_p99_ms: Option<f64>,
    /// The sweep must produce at least this many failover samples.
    pub min_failover_samples: Option<u64>,
}

impl Pin {
    /// `true` if any threshold is set.
    pub fn is_set(&self) -> bool {
        self.min_availability.is_some()
            || self.max_failover_p99_ms.is_some()
            || self.min_failover_samples.is_some()
    }
}

/// One script step before per-seed expansion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepTemplate {
    /// When the first instance fires.
    pub at: SimTime,
    /// What it does.
    pub op: ScriptOp,
    /// How many instances to emit (default 1).
    pub repeat: u64,
    /// Spacing between instances (required when `repeat > 1`).
    pub every: SimDuration,
    /// Uniform per-instance start jitter in `[0, jitter]`, drawn from the
    /// seed-derived stream (default 0: fully rigid schedule).
    pub jitter: SimDuration,
}

/// A loaded, validated scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The scenario's name (also its stream label for jitter derivation).
    pub name: String,
    /// Free-text documentation, not interpreted.
    pub description: String,
    /// The seed population, deduplicated, in file order.
    pub seeds: Vec<u64>,
    /// How long each run lasts.
    pub horizon: SimTime,
    /// The explorer's simultaneity window.
    pub tie_window: SimDuration,
    /// Re-introduce the pre-fix §3.2 startup bug (seeded-defect
    /// demonstration campaigns).
    pub inject_startup_bug: bool,
    /// `true` for campaigns that *demonstrate* a defect: the gate then
    /// requires at least one violating seed instead of zero.
    pub expect_violations: bool,
    /// Validated parameter deltas applied to every run.
    pub overrides: ParamOverrides,
    /// Pinned acceptance thresholds (may be empty).
    pub pin: Pin,
    /// The fault-script template.
    pub steps: Vec<StepTemplate>,
}

/// `f64` → exact `u64`, or a description of why not.
fn as_integer(n: f64) -> Result<u64, String> {
    if n.fract() != 0.0 {
        return Err(format!("{n} is not an integer"));
    }
    if !(0.0..=(u64::MAX as f64)).contains(&n) {
        return Err(format!("{n} is out of range"));
    }
    Ok(n as u64)
}

impl Scenario {
    /// Reads and loads one scenario file.
    pub fn load_file(path: &str) -> Result<Scenario, CampaignError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CampaignError::Io { path: path.to_string(), detail: e.to_string() })?;
        Scenario::load(path, &text)
    }

    /// Loads a scenario from already-read text; `path` labels errors.
    pub fn load(path: &str, text: &str) -> Result<Scenario, CampaignError> {
        let doc = parse_doc(text).map_err(|e| match e.kind {
            JsonErrorKind::DuplicateKey(key) => {
                CampaignError::DuplicateKey { path: path.to_string(), key }
            }
            JsonErrorKind::Malformed(_) => {
                CampaignError::Json { path: path.to_string(), detail: e.to_string() }
            }
        })?;
        Loader { path }.scenario(&doc)
    }
}

/// The loading context: one file, threaded through every helper so each
/// error names its origin.
struct Loader<'a> {
    path: &'a str,
}

impl Loader<'_> {
    fn bad(&self, field: impl Into<String>, detail: impl Into<String>) -> CampaignError {
        CampaignError::BadField {
            path: self.path.to_string(),
            field: field.into(),
            detail: detail.into(),
        }
    }

    fn unknown(&self, context: &'static str, key: &str) -> CampaignError {
        CampaignError::UnknownKey { path: self.path.to_string(), context, key: key.to_string() }
    }

    fn seed_err(&self, detail: impl Into<String>) -> CampaignError {
        CampaignError::BadSeedSpan { path: self.path.to_string(), detail: detail.into() }
    }

    fn text(&self, v: &Json, field: &str) -> Result<String, CampaignError> {
        v.as_str().map(str::to_string).ok_or_else(|| self.bad(field, "expected a string"))
    }

    fn flag(&self, v: &Json, field: &str) -> Result<bool, CampaignError> {
        v.as_bool().ok_or_else(|| self.bad(field, "expected a boolean"))
    }

    fn integer(&self, v: &Json, field: &str) -> Result<u64, CampaignError> {
        let n = v.as_f64().ok_or_else(|| self.bad(field, "expected a number"))?;
        as_integer(n).map_err(|detail| self.bad(field, detail))
    }

    /// A positive duration field, given in the named unit.
    fn duration(
        &self,
        v: &Json,
        field: &str,
        to_duration: fn(u64) -> SimDuration,
    ) -> Result<SimDuration, CampaignError> {
        let n = self.integer(v, field)?;
        if n == 0 {
            return Err(self.bad(field, "must be positive"));
        }
        Ok(to_duration(n))
    }

    fn scenario(&self, doc: &Json) -> Result<Scenario, CampaignError> {
        let Some(map) = doc.as_object() else {
            return Err(self.bad("scenario", "top level is not an object"));
        };
        let mut name = None;
        let mut description = String::new();
        let mut seeds = None;
        let mut horizon = SimTime::from_secs(40);
        let mut tie_window = SimDuration::from_micros(500);
        let mut inject_startup_bug = false;
        let mut expect_violations = false;
        let mut overrides = ParamOverrides::default();
        let mut pin = Pin::default();
        let mut steps = Vec::new();
        for (key, value) in map {
            match key.as_str() {
                "name" => name = Some(self.text(value, "name")?),
                "description" => description = self.text(value, "description")?,
                "seeds" => seeds = Some(self.seeds(value)?),
                "horizon_ms" => {
                    let d = self.duration(value, "horizon_ms", SimDuration::from_millis)?;
                    horizon = SimTime::from_micros(d.as_micros());
                }
                "tie_window_us" => {
                    tie_window = self.duration(value, "tie_window_us", SimDuration::from_micros)?;
                }
                "inject_startup_bug" => {
                    inject_startup_bug = self.flag(value, "inject_startup_bug")?;
                }
                "expect_violations" => {
                    expect_violations = self.flag(value, "expect_violations")?;
                }
                "overrides" => overrides = self.overrides(value)?,
                "pin" => pin = self.pin(value)?,
                "script" => steps = self.script(value)?,
                other => return Err(self.unknown("scenario", other)),
            }
        }
        let name = name.ok_or_else(|| self.bad("name", "required field is missing"))?;
        if name.is_empty() {
            return Err(self.bad("name", "must not be empty"));
        }
        let seeds = seeds.ok_or_else(|| self.seed_err("required field \"seeds\" is missing"))?;
        Ok(Scenario {
            name,
            description,
            seeds,
            horizon,
            tie_window,
            inject_startup_bug,
            expect_violations,
            overrides,
            pin,
            steps,
        })
    }

    fn seeds(&self, v: &Json) -> Result<Vec<u64>, CampaignError> {
        if let Some(items) = v.as_array() {
            if items.is_empty() {
                return Err(self.seed_err("the seed list is empty"));
            }
            if items.len() > MAX_SEEDS {
                return Err(self.seed_err(format!(
                    "{} explicit seeds exceed the {MAX_SEEDS}-seed cap",
                    items.len()
                )));
            }
            let mut seen = BTreeSet::new();
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                let seed = self.integer(item, "seeds")?;
                if !seen.insert(seed) {
                    return Err(self.seed_err(format!("seed {seed} is listed twice")));
                }
                out.push(seed);
            }
            return Ok(out);
        }
        let Some(map) = v.as_object() else {
            return Err(self.seed_err("expected an array of seeds or {\"range\": [lo, hi]}"));
        };
        for key in map.keys() {
            if key != "range" {
                return Err(self.unknown("seeds", key));
            }
        }
        let Some(range) = v.get("range").and_then(Json::as_array) else {
            return Err(self.seed_err("\"range\" must be a two-element array"));
        };
        let (lo, hi) = match (range.first(), range.get(1), range.len()) {
            (Some(lo), Some(hi), 2) => {
                (self.integer(lo, "seeds.range")?, self.integer(hi, "seeds.range")?)
            }
            _ => return Err(self.seed_err("\"range\" must be a two-element array")),
        };
        if lo > hi {
            return Err(self.seed_err(format!("range [{lo}, {hi}] is inverted")));
        }
        let span = hi - lo + 1;
        if span > MAX_SEEDS as u64 {
            return Err(self.seed_err(format!(
                "range [{lo}, {hi}] spans {span} seeds, over the {MAX_SEEDS}-seed cap"
            )));
        }
        Ok((lo..=hi).collect())
    }

    fn overrides(&self, v: &Json) -> Result<ParamOverrides, CampaignError> {
        let Some(map) = v.as_object() else {
            return Err(self.bad("overrides", "expected an object"));
        };
        let mut out = ParamOverrides::default();
        for (key, value) in map {
            let value = match value {
                Json::Number(n) => OverrideValue::Number(*n),
                Json::String(s) => OverrideValue::Text(s.clone()),
                Json::Bool(b) => OverrideValue::Flag(*b),
                _ => {
                    return Err(self
                        .bad(format!("overrides.{key}"), "expected a number, string, or boolean"));
                }
            };
            out.set(key, &value)
                .map_err(|inner| CampaignError::Override { path: self.path.to_string(), inner })?;
        }
        Ok(out)
    }

    fn pin(&self, v: &Json) -> Result<Pin, CampaignError> {
        let Some(map) = v.as_object() else {
            return Err(self.bad("pin", "expected an object"));
        };
        let mut pin = Pin::default();
        for (key, value) in map {
            match key.as_str() {
                "min_availability" => {
                    let n = value
                        .as_f64()
                        .ok_or_else(|| self.bad("pin.min_availability", "expected a number"))?;
                    if !(0.0..=1.0).contains(&n) {
                        return Err(self.bad("pin.min_availability", "must be within [0, 1]"));
                    }
                    pin.min_availability = Some(n);
                }
                "max_failover_p99_ms" => {
                    let n = value
                        .as_f64()
                        .ok_or_else(|| self.bad("pin.max_failover_p99_ms", "expected a number"))?;
                    if n <= 0.0 {
                        return Err(self.bad("pin.max_failover_p99_ms", "must be positive"));
                    }
                    pin.max_failover_p99_ms = Some(n);
                }
                "min_failover_samples" => {
                    pin.min_failover_samples =
                        Some(self.integer(value, "pin.min_failover_samples")?);
                }
                other => return Err(self.unknown("pin", other)),
            }
        }
        Ok(pin)
    }

    fn script(&self, v: &Json) -> Result<Vec<StepTemplate>, CampaignError> {
        let Some(items) = v.as_array() else {
            return Err(self.bad("script", "expected an array of steps"));
        };
        items.iter().map(|step| self.step(step)).collect()
    }

    fn step(&self, v: &Json) -> Result<StepTemplate, CampaignError> {
        let Some(map) = v.as_object() else {
            return Err(self.bad("script step", "expected an object"));
        };
        let mut at = None;
        let mut op = None;
        let mut slot = None;
        let mut path_index = None;
        let mut latency_us = None;
        let mut jitter_us = None;
        let mut bandwidth_bps = None;
        let mut repeat = 1u64;
        let mut every = None;
        let mut jitter = SimDuration::from_micros(0);
        for (key, value) in map {
            match key.as_str() {
                "at_ms" => {
                    let ms = self.integer(value, "at_ms")?;
                    at = Some(SimTime::from_millis(ms));
                }
                "op" => op = Some(self.text(value, "op")?),
                "slot" => {
                    let s = self.text(value, "slot")?;
                    slot = Some(
                        PairSlot::parse(&s)
                            .ok_or_else(|| self.bad("slot", "expected \"a\" or \"b\""))?,
                    );
                }
                "path" => {
                    let n = self.integer(value, "path")?;
                    path_index =
                        Some(u8::try_from(n).map_err(|_| self.bad("path", "index out of range"))?);
                }
                "latency_us" => latency_us = Some(self.integer(value, "latency_us")?),
                "jitter_us" => jitter_us = Some(self.integer(value, "jitter_us")?),
                "bandwidth_bps" => {
                    let n = self.integer(value, "bandwidth_bps")?;
                    if n == 0 {
                        return Err(self.bad("bandwidth_bps", "must be positive"));
                    }
                    bandwidth_bps = Some(n);
                }
                "repeat" => {
                    repeat = self.integer(value, "repeat")?;
                    if !(1..=10_000).contains(&repeat) {
                        return Err(self.bad("repeat", "must be within [1, 10000]"));
                    }
                }
                "every_ms" => {
                    every = Some(self.duration(value, "every_ms", SimDuration::from_millis)?)
                }
                "jitter_ms" => {
                    let ms = self.integer(value, "jitter_ms")?;
                    jitter = SimDuration::from_millis(ms);
                }
                other => return Err(self.unknown("script step", other)),
            }
        }
        let at = at.ok_or_else(|| self.bad("at_ms", "required step field is missing"))?;
        let op_name = op.ok_or_else(|| self.bad("op", "required step field is missing"))?;
        // Each op takes exactly its operands; a stray operand on the wrong
        // op is a confused file, not noise to ignore.
        let needs_slot = matches!(
            op_name.as_str(),
            "crash" | "repair" | "kill-engine" | "restart-engine" | "distress" | "reboot"
        );
        let needs_path = matches!(op_name.as_str(), "path-down" | "path-up");
        let needs_media = op_name == "slow-link";
        if slot.is_some() != needs_slot {
            let detail =
                if needs_slot { "this op requires a slot" } else { "this op takes no slot" };
            return Err(self.bad(format!("script step {op_name:?}"), detail));
        }
        if path_index.is_some() != needs_path {
            let detail =
                if needs_path { "this op requires a path" } else { "this op takes no path" };
            return Err(self.bad(format!("script step {op_name:?}"), detail));
        }
        if (latency_us.is_some() || jitter_us.is_some() || bandwidth_bps.is_some()) != needs_media {
            let detail = if needs_media {
                "slow-link requires latency_us, jitter_us, and bandwidth_bps"
            } else {
                "this op takes no media parameters"
            };
            return Err(self.bad(format!("script step {op_name:?}"), detail));
        }
        let op = match (op_name.as_str(), slot, path_index) {
            ("crash", Some(slot), _) => ScriptOp::Crash(slot),
            ("repair", Some(slot), _) => ScriptOp::Repair(slot),
            ("kill-engine", Some(slot), _) => ScriptOp::KillEngine(slot),
            ("restart-engine", Some(slot), _) => ScriptOp::RestartEngine(slot),
            ("distress", Some(slot), _) => ScriptOp::Distress(slot),
            ("reboot", Some(slot), _) => ScriptOp::Reboot(slot),
            ("partition", ..) => ScriptOp::Partition,
            ("heal", ..) => ScriptOp::Heal,
            ("path-down", _, Some(path)) => ScriptOp::PathDown(path),
            ("path-up", _, Some(path)) => ScriptOp::PathUp(path),
            ("slow-link", ..) => match (latency_us, jitter_us, bandwidth_bps) {
                (Some(latency_us), Some(jitter_us), Some(bandwidth_bps)) => {
                    ScriptOp::SlowLink { latency_us, jitter_us, bandwidth_bps }
                }
                _ => {
                    return Err(self.bad(
                        "script step \"slow-link\"",
                        "slow-link requires latency_us, jitter_us, and bandwidth_bps",
                    ));
                }
            },
            (other, ..) => return Err(self.bad("op", format!("unknown op {other:?}"))),
        };
        let every = match (every, repeat) {
            (Some(every), _) => every,
            (None, 1) => SimDuration::from_micros(0),
            (None, _) => {
                return Err(self.bad("every_ms", "required when repeat > 1"));
            }
        };
        Ok(StepTemplate { at, op, repeat, every, jitter })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"{
        "name": "storm",
        "description": "doc",
        "seeds": {"range": [1, 20]},
        "horizon_ms": 30000,
        "tie_window_us": 400,
        "inject_startup_bug": false,
        "expect_violations": false,
        "overrides": {"peer_timeout_ms": 1500, "link": "single"},
        "pin": {"min_availability": 0.9, "max_failover_p99_ms": 4000},
        "script": [
            {"at_ms": 8000, "op": "partition", "repeat": 3, "every_ms": 5000,
             "jitter_ms": 400},
            {"at_ms": 9000, "op": "heal", "repeat": 3, "every_ms": 5000},
            {"at_ms": 25000, "op": "crash", "slot": "a"},
            {"at_ms": 30000, "op": "repair", "slot": "a"},
            {"at_ms": 5000, "op": "path-down", "path": 0},
            {"at_ms": 6000, "op": "slow-link", "latency_us": 5000,
             "jitter_us": 1000, "bandwidth_bps": 100000}
        ]
    }"#;

    #[test]
    fn full_scenario_loads() {
        let sc = Scenario::load("full.json", FULL).unwrap();
        assert_eq!(sc.name, "storm");
        assert_eq!(sc.seeds, (1..=20).collect::<Vec<_>>());
        assert_eq!(sc.horizon, SimTime::from_secs(30));
        assert_eq!(sc.tie_window, SimDuration::from_micros(400));
        assert_eq!(sc.pin.min_availability, Some(0.9));
        assert_eq!(sc.steps.len(), 6);
        let first = sc.steps.first().unwrap();
        assert_eq!(first.op, ScriptOp::Partition);
        assert_eq!(first.repeat, 3);
        assert_eq!(first.jitter, SimDuration::from_millis(400));
    }

    #[test]
    fn unknown_keys_anywhere_are_hard_errors() {
        let shell = r#"{"name": "x", "seeds": [1], "horizen_ms": 1000}"#;
        match Scenario::load("t.json", shell).unwrap_err() {
            CampaignError::UnknownKey { context: "scenario", key, .. } => {
                assert_eq!(key, "horizen_ms");
            }
            other => panic!("{other}"),
        }
        let step = r#"{"name": "x", "seeds": [1],
                       "script": [{"at_ms": 1, "op": "heal", "slots": "a"}]}"#;
        match Scenario::load("t.json", step).unwrap_err() {
            CampaignError::UnknownKey { context: "script step", key, .. } => {
                assert_eq!(key, "slots");
            }
            other => panic!("{other}"),
        }
        let pin = r#"{"name": "x", "seeds": [1], "pin": {"min_avail": 0.5}}"#;
        match Scenario::load("t.json", pin).unwrap_err() {
            CampaignError::UnknownKey { context: "pin", key, .. } => assert_eq!(key, "min_avail"),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn unknown_override_keys_carry_the_harness_error() {
        let text = r#"{"name": "x", "seeds": [1],
                       "overrides": {"peer_timeout_sm": 1500}}"#;
        match Scenario::load("t.json", text).unwrap_err() {
            CampaignError::Override { inner, .. } => {
                assert!(inner.to_string().contains("peer_timeout_sm"), "{inner}");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn duplicate_json_keys_are_typed_errors() {
        let text = r#"{"name": "x", "seeds": [1],
                       "overrides": {"peer_timeout_ms": 1500, "peer_timeout_ms": 2000}}"#;
        match Scenario::load("t.json", text).unwrap_err() {
            CampaignError::DuplicateKey { key, .. } => assert_eq!(key, "peer_timeout_ms"),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn bad_seed_spans_are_rejected() {
        for (text, needle) in [
            (r#"{"name": "x", "seeds": {"range": [9, 3]}}"#, "inverted"),
            (r#"{"name": "x", "seeds": {"range": [1, 10000000]}}"#, "cap"),
            (r#"{"name": "x", "seeds": [4, 4]}"#, "twice"),
            (r#"{"name": "x", "seeds": []}"#, "empty"),
            (r#"{"name": "x"}"#, "missing"),
        ] {
            match Scenario::load("t.json", text).unwrap_err() {
                CampaignError::BadSeedSpan { detail, .. } => {
                    assert!(detail.contains(needle), "{detail:?} vs {needle:?}");
                }
                other => panic!("{text}: {other}"),
            }
        }
    }

    #[test]
    fn misplaced_operands_are_rejected() {
        let stray = r#"{"name": "x", "seeds": [1],
                        "script": [{"at_ms": 1, "op": "partition", "slot": "a"}]}"#;
        let err = Scenario::load("t.json", stray).unwrap_err().to_string();
        assert!(err.contains("takes no slot"), "{err}");
        let missing = r#"{"name": "x", "seeds": [1],
                          "script": [{"at_ms": 1, "op": "crash"}]}"#;
        let err = Scenario::load("t.json", missing).unwrap_err().to_string();
        assert!(err.contains("requires a slot"), "{err}");
        let repeat = r#"{"name": "x", "seeds": [1],
                         "script": [{"at_ms": 1, "op": "heal", "repeat": 3}]}"#;
        let err = Scenario::load("t.json", repeat).unwrap_err().to_string();
        assert!(err.contains("every_ms"), "{err}");
    }
}
