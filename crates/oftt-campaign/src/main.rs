//! `oftt-campaign` CLI: expand, execute, and aggregate scenario campaigns.

use std::process::ExitCode;
use std::time::Instant;

use oftt_campaign::{
    aggregate, default_jobs, gate_failures, render_json, render_summary, run_campaign, Scenario,
};

const USAGE: &str = "\
oftt-campaign: declarative scenario campaigns over the checked OFTT deployment

USAGE:
    oftt-campaign run   --scenario FILE [--scenario FILE ...] [OPTIONS]
    oftt-campaign check --scenario FILE [--scenario FILE ...]

OPTIONS:
    --scenario FILE    a scenario JSON file (repeatable)
    --seeds N          truncate every scenario to its first N seeds
    --jobs N           worker threads (default: the machine's parallelism)
    --out PATH         write the oftt-bench-campaign-v1 artifact here
    --help             this text

`check` loads and validates the files without running anything.

EXIT CODE: 0 clean, 1 load/usage error, 2 gate failure (unexpected
invariant violations, non-recovered seeds, or a breached pin).";

struct Args {
    command: String,
    scenarios: Vec<String>,
    seeds: Option<usize>,
    jobs: usize,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut it = std::env::args().skip(1);
    let command = match it.next() {
        Some(c) if c == "run" || c == "check" => c,
        Some(c) if c == "--help" => return Err(String::new()),
        Some(c) => return Err(format!("unknown command {c:?}")),
        None => return Err("missing command (run | check)".into()),
    };
    let mut args =
        Args { command, scenarios: Vec::new(), seeds: None, jobs: default_jobs(), out: None };
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--scenario" => args.scenarios.push(value("--scenario")?),
            "--seeds" => {
                args.seeds = Some(
                    value("--seeds")?
                        .parse::<usize>()
                        .ok()
                        .filter(|n| *n > 0)
                        .ok_or("--seeds needs a positive integer")?,
                );
            }
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or("--jobs needs a positive integer")?;
            }
            "--out" => args.out = Some(value("--out")?),
            "--help" => return Err(String::new()),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if args.scenarios.is_empty() {
        return Err("at least one --scenario is required".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) if msg.is_empty() => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let mut scenarios = Vec::new();
    for path in &args.scenarios {
        match Scenario::load_file(path) {
            Ok(mut sc) => {
                if let Some(n) = args.seeds {
                    sc.seeds.truncate(n);
                }
                scenarios.push(sc);
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if args.command == "check" {
        for sc in &scenarios {
            println!("{}: ok ({} seeds, {} script steps)", sc.name, sc.seeds.len(), sc.steps.len());
        }
        return ExitCode::SUCCESS;
    }

    let total_runs: usize = scenarios.iter().map(|s| s.seeds.len()).sum();
    eprintln!(
        "running {} scenario(s), {total_runs} run(s) across {} worker(s)…",
        scenarios.len(),
        args.jobs
    );
    let started = Instant::now();
    let records = run_campaign(&scenarios, args.jobs);
    let elapsed_ms = started.elapsed().as_millis() as u64;

    let stats: Vec<_> = scenarios
        .iter()
        .enumerate()
        .map(|(i, sc)| {
            let mine: Vec<_> = records.iter().filter(|r| r.scenario == i).cloned().collect();
            aggregate(sc, &mine)
        })
        .collect();
    print!("{}", render_summary(&stats));
    eprintln!("{total_runs} run(s) in {:.1}s", elapsed_ms as f64 / 1000.0);

    if let Some(out) = &args.out {
        let json = render_json(&stats, total_runs, elapsed_ms, args.jobs);
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("error: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {out}");
    }

    let failures: Vec<String> = stats.iter().flat_map(gate_failures).collect();
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("GATE: {f}");
        }
        ExitCode::from(2)
    }
}
