// oftt-lint: no-panic
//! Per-seed script expansion.
//!
//! A [`StepTemplate`](crate::scenario::StepTemplate) with `repeat` /
//! `every_ms` / `jitter_ms` unrolls into concrete timed
//! [`ScriptOp`](oftt_check::ScriptOp)s. The jitter stream is a pure
//! function of `(scenario name, step index, seed)` via
//! [`SimRng::derive`], so the same scenario file and seed always produce
//! the byte-identical script — position in the file, load order, and the
//! other seeds running concurrently are all irrelevant. That is the
//! determinism contract the campaign's reproducibility tests pin.

use ds_sim::prelude::SimRng;
use ds_sim::prelude::SimTime;
use oftt_check::FaultScript;

use crate::scenario::Scenario;

/// FNV-1a over the scenario name: a stable stream label that keeps two
/// scenarios sharing a seed from sharing jitter draws.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Expands the scenario's script template for one seed.
pub fn expand(scenario: &Scenario, seed: u64) -> FaultScript {
    let label = fnv64(scenario.name.as_bytes());
    let mut steps = Vec::new();
    for (index, template) in scenario.steps.iter().enumerate() {
        // One derived stream per (scenario, step, seed): adding a step
        // never shifts the draws of the steps around it.
        let stream = label ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut rng = SimRng::derive(seed, stream);
        let jitter_span = template.jitter.as_micros();
        for k in 0..template.repeat {
            let mut at_us = template
                .at
                .as_micros()
                .saturating_add(template.every.as_micros().saturating_mul(k));
            if jitter_span > 0 {
                at_us = at_us.saturating_add(rng.uniform_u64(0..jitter_span.saturating_add(1)));
            }
            steps.push((SimTime::from_micros(at_us), template.op));
        }
    }
    // Canonical order: by time, file order among ties. Injection itself is
    // time-keyed, but the rendered script text is part of the determinism
    // record.
    steps.sort_by_key(|(at, _)| *at);
    FaultScript { steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    const STORM: &str = r#"{
        "name": "storm",
        "seeds": {"range": [1, 4]},
        "script": [
            {"at_ms": 8000, "op": "partition", "repeat": 3, "every_ms": 5000,
             "jitter_ms": 400},
            {"at_ms": 9000, "op": "heal", "repeat": 3, "every_ms": 5000}
        ]
    }"#;

    #[test]
    fn expansion_is_deterministic_per_seed_and_varies_across_seeds() {
        let sc = Scenario::load("storm.json", STORM).unwrap();
        let a1 = expand(&sc, 7).to_text();
        let a2 = expand(&sc, 7).to_text();
        assert_eq!(a1, a2, "same scenario + seed must expand identically");
        let b = expand(&sc, 8).to_text();
        assert_ne!(a1, b, "different seeds must draw different jitter");
    }

    #[test]
    fn unjittered_steps_are_rigid() {
        let sc = Scenario::load("storm.json", STORM).unwrap();
        let script = expand(&sc, 1);
        // The heal steps carry no jitter: exactly 9s, 14s, 19s.
        let heals: Vec<u64> = script
            .steps
            .iter()
            .filter(|(_, op)| *op == oftt_check::ScriptOp::Heal)
            .map(|(at, _)| at.as_micros())
            .collect();
        assert_eq!(heals, vec![9_000_000, 14_000_000, 19_000_000]);
        // The partitions each land within [base, base + 400ms].
        let partitions: Vec<u64> = script
            .steps
            .iter()
            .filter(|(_, op)| *op == oftt_check::ScriptOp::Partition)
            .map(|(at, _)| at.as_micros())
            .collect();
        assert_eq!(partitions.len(), 3);
        for (base_ms, at) in [8000u64, 13000, 18000].iter().zip(&partitions) {
            let base = base_ms * 1000;
            assert!((base..=base + 400_000).contains(at), "{at} outside {base}+400ms");
        }
    }

    #[test]
    fn adding_a_step_does_not_shift_other_streams() {
        let sc = Scenario::load("storm.json", STORM).unwrap();
        let longer = STORM.replace(
            r#"{"at_ms": 9000, "op": "heal", "repeat": 3, "every_ms": 5000}"#,
            r#"{"at_ms": 9000, "op": "heal", "repeat": 3, "every_ms": 5000},
               {"at_ms": 30000, "op": "crash", "slot": "a"}"#,
        );
        let sc2 = Scenario::load("storm.json", &longer).unwrap();
        let p1: Vec<_> = expand(&sc, 5)
            .steps
            .into_iter()
            .filter(|(_, op)| *op == oftt_check::ScriptOp::Partition)
            .collect();
        let p2: Vec<_> = expand(&sc2, 5)
            .steps
            .into_iter()
            .filter(|(_, op)| *op == oftt_check::ScriptOp::Partition)
            .collect();
        assert_eq!(p1, p2, "the partition step's jitter stream moved");
    }
}
