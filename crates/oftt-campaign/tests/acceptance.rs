//! Campaign-level acceptance tests: the loader's hard-error contract
//! under arbitrary typos, and an end-to-end demonstration that a seeded
//! protocol defect actually surfaces in a campaign's summary — the
//! instrument detects what it exists to detect.

use oftt_campaign::{aggregate, expand, gate_failures, run_campaign, CampaignError, Scenario};
use oftt_harness::overrides::VALID_KEYS;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Any override key outside the harness's accepted set — plausible
    /// typos included — must be rejected at load time with a typed error
    /// naming the key verbatim.
    #[test]
    fn arbitrary_unknown_override_keys_are_rejected(key in "[a-z_]{1,24}") {
        prop_assume!(!VALID_KEYS.contains(&key.as_str()));
        let text = format!(
            r#"{{"name": "typo", "seeds": [1], "overrides": {{"{key}": 100}}}}"#
        );
        match Scenario::load("typo.json", &text) {
            Err(CampaignError::Override { inner, .. }) => {
                prop_assert!(
                    inner.to_string().contains(&key),
                    "error {inner} does not name the key {key:?}"
                );
            }
            other => prop_assert!(false, "expected an override rejection, got {other:?}"),
        }
    }

    /// Scenario-shell typos are equally fatal.
    #[test]
    fn arbitrary_unknown_shell_keys_are_rejected(key in "[a-z_]{1,24}") {
        const SHELL_KEYS: &[&str] = &[
            "name", "description", "seeds", "horizon_ms", "tie_window_us",
            "inject_startup_bug", "expect_violations", "overrides", "pin", "script",
        ];
        prop_assume!(!SHELL_KEYS.contains(&key.as_str()));
        let text = format!(r#"{{"name": "typo", "seeds": [1], "{key}": 100}}"#);
        match Scenario::load("typo.json", &text) {
            Err(CampaignError::UnknownKey { key: found, .. }) => {
                prop_assert_eq!(found, key);
            }
            other => prop_assert!(false, "expected an unknown-key rejection, got {other:?}"),
        }
    }
}

/// The same scenario file and seed must reproduce the byte-identical
/// canonical outcome record across process-internal re-runs — the
/// determinism contract the campaign's statistics rest on.
#[test]
fn per_seed_outcomes_are_byte_identical() {
    let text = r#"{
        "name": "determinism",
        "seeds": [3, 11],
        "horizon_ms": 20000,
        "overrides": {"heartbeat_period_ms": 200},
        "script": [
            {"at_ms": 6000, "op": "partition"},
            {"at_ms": 8000, "op": "heal"},
            {"at_ms": 12000, "op": "reboot", "slot": "b", "jitter_ms": 300}
        ]
    }"#;
    let sc = Scenario::load("determinism.json", text).unwrap();
    // The expansion itself is stable…
    assert_eq!(expand(&sc, 3).to_text(), expand(&sc, 3).to_text());
    // …and so is the full simulated outcome, independent of worker count.
    let records = |jobs| {
        run_campaign(std::slice::from_ref(&sc), jobs)
            .iter()
            .map(|r| r.outcome.record(r.seed))
            .collect::<Vec<_>>()
    };
    let serial = records(1);
    let parallel = records(4);
    assert_eq!(serial, parallel);
    assert_eq!(serial.len(), 2);
    for line in &serial {
        assert!(line.contains("recovered=true"), "{line}");
    }
}

/// A campaign over the pre-fix §3.2 configuration (no negotiation
/// retries, fall back to becoming primary) with the interconnect
/// partitioned through startup must surface the dual-primary hazard in
/// its summary — and, because the scenario declares
/// `expect_violations`, the gate must *pass* on detection and *fail* on
/// silence.
#[test]
fn seeded_startup_bug_surfaces_in_the_campaign_summary() {
    let text = r#"{
        "name": "startup_bug",
        "description": "pre-fix startup race demonstration",
        "seeds": {"range": [1, 4]},
        "horizon_ms": 15000,
        "inject_startup_bug": true,
        "expect_violations": true,
        "script": [
            {"at_ms": 5, "op": "partition"},
            {"at_ms": 8000, "op": "heal"}
        ]
    }"#;
    let sc = Scenario::load("startup_bug.json", text).unwrap();
    let records = run_campaign(std::slice::from_ref(&sc), 4);
    let stats = aggregate(&sc, &records);
    assert!(stats.violating_seeds > 0, "the seeded defect never surfaced: {stats:?}");
    assert!(gate_failures(&stats).is_empty(), "detection satisfies an expect_violations gate");

    // The same campaign with the fix in place (no injected bug) is clean:
    // the violations really come from the seeded defect, not the script.
    let fixed_text = text
        .replace(r#""inject_startup_bug": true"#, r#""inject_startup_bug": false"#)
        .replace(r#""expect_violations": true"#, r#""expect_violations": false"#);
    let fixed = Scenario::load("startup_fixed.json", &fixed_text).unwrap();
    let records = run_campaign(std::slice::from_ref(&fixed), 4);
    let stats = aggregate(&fixed, &records);
    assert_eq!(stats.violations, 0, "{stats:?}");
    assert!(gate_failures(&stats).is_empty(), "{stats:?}");
}
