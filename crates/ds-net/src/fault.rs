//! Fault injection.
//!
//! The paper's demonstration (Section 4) exercises four failure classes:
//! (a) node failure, (b) NT crash / blue screen, (c) application software
//! failure, (d) OFTT middleware failure. Each maps to a [`Fault`] variant;
//! network-level faults (path failure, partition) cover the dual-Ethernet
//! discussion of Section 2.1 and the both-nodes-primary hazard of
//! Section 3.2.

use ds_sim::prelude::{SimTime, TraceCategory};

use crate::cluster::{Cluster, ClusterSim};
use crate::endpoint::{NodeId, ServiceName};
use crate::link::PathState;

/// A fault (or repair) that can be scheduled against the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Hard node failure (paper class *a*); node stays down until
    /// [`Fault::RepairNode`].
    CrashNode(NodeId),
    /// Repair of a hard-crashed node: boots and relaunches auto-start
    /// services.
    RepairNode(NodeId),
    /// OS crash with automatic reboot (paper class *b*).
    RebootNode(NodeId),
    /// Kill one service instance (paper classes *c* and *d*, depending on
    /// whether the victim is the application or the OFTT engine).
    KillService(NodeId, ServiceName),
    /// Launch (or relaunch) a service from its registered spec.
    StartService(NodeId, ServiceName),
    /// Fail one path of the link between two nodes.
    PathDown(NodeId, NodeId, usize),
    /// Restore one path of the link between two nodes.
    PathUp(NodeId, NodeId, usize),
    /// Partition the link between two nodes entirely.
    Partition(NodeId, NodeId),
    /// Heal a partition.
    Heal(NodeId, NodeId),
    /// Retune every path of the link between two nodes (latency in µs,
    /// jitter in µs, bandwidth in bytes/s) — degraded-but-alive media.
    /// Restore by tuning back to the nominal figures.
    TuneLink {
        /// One end of the link.
        a: NodeId,
        /// The other end.
        b: NodeId,
        /// New base latency, µs.
        latency_us: u64,
        /// New jitter (±), µs.
        jitter_us: u64,
        /// New bandwidth, bytes per second.
        bandwidth_bps: u64,
    },
}

impl Fault {
    fn apply(&self, cluster: &mut Cluster, sched: &mut ds_sim::sim::Scheduler<'_, Cluster>) {
        match self {
            Fault::CrashNode(n) => cluster.fault_crash_node(sched, *n),
            Fault::RepairNode(n) => cluster.fault_repair_node(sched, *n),
            Fault::RebootNode(n) => cluster.fault_reboot_node(sched, *n),
            Fault::KillService(n, s) => cluster.fault_kill_service(sched, *n, s),
            Fault::StartService(n, s) => cluster.fault_start_service(sched, *n, s.clone()),
            Fault::PathDown(a, b, i) => {
                if let Some(link) = cluster.link_mut(*a, *b) {
                    // Scripted campaigns may address paths a narrower link
                    // does not have; record and move on rather than abort
                    // the whole run.
                    if *i < link.path_count() {
                        link.set_path_state(*i, PathState::Down);
                        sched.record(TraceCategory::Fault, format!("path {i} down: {a}<->{b}"));
                    } else {
                        sched.record(
                            TraceCategory::Fault,
                            format!("path {i} down ignored (no such path): {a}<->{b}"),
                        );
                    }
                }
            }
            Fault::PathUp(a, b, i) => {
                if let Some(link) = cluster.link_mut(*a, *b) {
                    if *i < link.path_count() {
                        link.set_path_state(*i, PathState::Up);
                        sched.record(TraceCategory::Fault, format!("path {i} up: {a}<->{b}"));
                    } else {
                        sched.record(
                            TraceCategory::Fault,
                            format!("path {i} up ignored (no such path): {a}<->{b}"),
                        );
                    }
                }
            }
            Fault::Partition(a, b) => {
                if let Some(link) = cluster.link_mut(*a, *b) {
                    link.set_partitioned(true);
                    sched.record(TraceCategory::Fault, format!("partition: {a}<->{b}"));
                }
            }
            Fault::Heal(a, b) => {
                if let Some(link) = cluster.link_mut(*a, *b) {
                    link.set_partitioned(false);
                    sched.record(TraceCategory::Fault, format!("heal: {a}<->{b}"));
                }
            }
            Fault::TuneLink { a, b, latency_us, jitter_us, bandwidth_bps } => {
                if let Some(link) = cluster.link_mut(*a, *b) {
                    link.tune_paths(
                        ds_sim::prelude::SimDuration::from_micros(*latency_us),
                        ds_sim::prelude::SimDuration::from_micros(*jitter_us),
                        *bandwidth_bps,
                    );
                    sched.record(
                        TraceCategory::Fault,
                        format!(
                            "tune: {a}<->{b} latency={latency_us}us \
                             jitter={jitter_us}us bw={bandwidth_bps}Bps"
                        ),
                    );
                }
            }
        }
    }
}

/// Schedules one fault at an absolute time.
pub fn inject(sim: &mut ClusterSim, at: SimTime, fault: Fault) {
    sim.sim_mut().schedule_at_scoped(
        at,
        || "fault".to_string(),
        move |cluster: &mut Cluster, sched| {
            fault.apply(cluster, sched);
        },
    );
}

/// A timed sequence of faults — one failure campaign.
///
/// # Examples
///
/// ```
/// use ds_net::prelude::*;
/// use ds_net::fault::{Fault, FaultPlan};
///
/// let mut cluster = ClusterSim::new(1);
/// let a = cluster.add_node(NodeConfig::default());
/// let b = cluster.add_node(NodeConfig::default());
/// cluster.connect(a, b, Link::dual());
///
/// let mut plan = FaultPlan::new();
/// plan.at(SimTime::from_secs(10), Fault::CrashNode(a));
/// plan.at(SimTime::from_secs(40), Fault::RepairNode(a));
/// plan.schedule(&mut cluster);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<(SimTime, Fault)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault at an absolute time; returns `&mut self` for chaining.
    pub fn at(&mut self, when: SimTime, fault: Fault) -> &mut Self {
        self.faults.push((when, fault));
        self
    }

    /// The planned faults in insertion order.
    pub fn faults(&self) -> &[(SimTime, Fault)] {
        &self.faults
    }

    /// Schedules every fault onto the simulation.
    pub fn schedule(&self, sim: &mut ClusterSim) {
        for (when, fault) in &self.faults {
            inject(sim, *when, fault.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSim;
    use crate::link::Link;
    use crate::node::{NodeConfig, NodeStatus};

    fn pair() -> (ClusterSim, NodeId, NodeId) {
        let mut cs = ClusterSim::new(7);
        let a = cs.add_node(NodeConfig::default());
        let b = cs.add_node(NodeConfig::default());
        cs.connect(a, b, Link::dual());
        (cs, a, b)
    }

    #[test]
    fn crash_and_repair_cycle() {
        let (mut cs, a, _) = pair();
        inject(&mut cs, SimTime::from_secs(1), Fault::CrashNode(a));
        cs.run_until(SimTime::from_secs(2));
        assert_eq!(cs.cluster().node(a).status, NodeStatus::Crashed);
        inject(&mut cs, SimTime::from_secs(3), Fault::RepairNode(a));
        cs.run_until(SimTime::from_secs(4));
        assert!(cs.cluster().node(a).status.is_up());
    }

    #[test]
    fn repair_of_up_node_is_noop() {
        let (mut cs, a, _) = pair();
        let boots_before = cs.cluster().node(a).boot_count;
        inject(&mut cs, SimTime::from_secs(1), Fault::RepairNode(a));
        cs.run_until(SimTime::from_secs(2));
        assert_eq!(cs.cluster().node(a).boot_count, boots_before);
    }

    #[test]
    fn reboot_goes_down_then_up() {
        let (mut cs, a, _) = pair();
        inject(&mut cs, SimTime::from_secs(1), Fault::RebootNode(a));
        cs.run_until(SimTime::from_secs(2));
        assert!(matches!(cs.cluster().node(a).status, NodeStatus::Rebooting { .. }));
        cs.run_until(SimTime::from_secs(60));
        assert!(cs.cluster().node(a).status.is_up());
    }

    #[test]
    fn partition_and_heal_toggle_link() {
        let (mut cs, a, b) = pair();
        inject(&mut cs, SimTime::from_secs(1), Fault::Partition(a, b));
        cs.run_until(SimTime::from_secs(2));
        assert!(!cs.cluster().link(a, b).unwrap().is_usable());
        inject(&mut cs, SimTime::from_secs(3), Fault::Heal(a, b));
        cs.run_until(SimTime::from_secs(4));
        assert!(cs.cluster().link(a, b).unwrap().is_usable());
    }

    #[test]
    fn path_faults_degrade_then_kill_dual_link() {
        let (mut cs, a, b) = pair();
        inject(&mut cs, SimTime::from_secs(1), Fault::PathDown(a, b, 0));
        cs.run_until(SimTime::from_secs(2));
        assert!(cs.cluster().link(a, b).unwrap().is_usable());
        inject(&mut cs, SimTime::from_secs(3), Fault::PathDown(a, b, 1));
        cs.run_until(SimTime::from_secs(4));
        assert!(!cs.cluster().link(a, b).unwrap().is_usable());
        inject(&mut cs, SimTime::from_secs(5), Fault::PathUp(a, b, 1));
        cs.run_until(SimTime::from_secs(6));
        assert!(cs.cluster().link(a, b).unwrap().is_usable());
    }

    #[test]
    fn tune_link_slows_traffic_without_dropping_it() {
        let (mut cs, a, b) = pair();
        inject(
            &mut cs,
            SimTime::from_secs(1),
            Fault::TuneLink { a, b, latency_us: 50_000, jitter_us: 0, bandwidth_bps: 10_000 },
        );
        cs.run_until(SimTime::from_secs(2));
        let link = cs.cluster().link(a, b).unwrap();
        assert!(link.is_usable(), "tuned link still carries traffic");
        match link.route(1_000, &mut ds_sim::prelude::SimRng::seed_from(1)) {
            crate::link::RouteOutcome::Deliver(d) => {
                // 50ms base + 1000B / 10kBps = 100ms transmission.
                assert!(d >= ds_sim::prelude::SimDuration::from_millis(140), "got {d}");
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn fault_plan_schedules_in_order() {
        let (mut cs, a, _) = pair();
        let mut plan = FaultPlan::new();
        plan.at(SimTime::from_secs(1), Fault::CrashNode(a))
            .at(SimTime::from_secs(2), Fault::RepairNode(a));
        assert_eq!(plan.faults().len(), 2);
        plan.schedule(&mut cs);
        cs.run_until(SimTime::from_secs(3));
        assert!(cs.cluster().node(a).status.is_up());
        assert_eq!(cs.trace().count(TraceCategory::Fault), 2); // "crashed", "up (boot)"
    }
}
