//! Typed cluster-operation errors.
//!
//! The message/cluster hot paths historically panicked on impossible-looking
//! states ("booting unknown node"). Under fault injection and schedule
//! exploration those states are reachable — a fault can race a boot, an
//! explored interleaving can deliver an event to a node that a reordered
//! crash already removed — so the hot paths now produce a [`NetError`]
//! instead and surface it through the trace, where the invariant engine and
//! tests can see it without the whole simulation aborting.

use std::fmt;

use crate::endpoint::{Endpoint, NodeId};

/// A cluster operation failed in a way the simulation can survive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The referenced node was never added to the cluster (or the id is
    /// from another cluster instance).
    UnknownNode(NodeId),
    /// No service is registered at the endpoint.
    UnknownService(Endpoint),
    /// The two nodes are not connected.
    NoLink(NodeId, NodeId),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(node) => write!(f, "unknown node {node}"),
            NetError::UnknownService(ep) => write!(f, "no service registered at {ep}"),
            NetError::NoLink(a, b) => write!(f, "no link between {a} and {b}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_usefully() {
        assert_eq!(NetError::UnknownNode(NodeId(3)).to_string(), "unknown node node3");
        assert_eq!(
            NetError::NoLink(NodeId(0), NodeId(1)).to_string(),
            "no link between node0 and node1"
        );
        let ep = Endpoint::new(NodeId(2), "svc");
        assert!(NetError::UnknownService(ep).to_string().contains("node2/svc"));
    }
}
