//! Addressing: nodes, services, processes.
//!
//! A *node* is a PC. A *service* is a named program slot on a node (e.g.
//! `"oftt-engine"`, `"call-track"`); the OFTT papers' components address each
//! other by (node, service), exactly as DCOM activation names a server on a
//! host. A *process* is one running incarnation of a service — restarting a
//! service yields a fresh [`ProcessId`], so messages and timers aimed at a
//! dead incarnation are discarded rather than delivered to its successor.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a simulated PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A service name on a node (the DCOM "server application" analog).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServiceName(String);

impl ServiceName {
    /// Creates a service name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "service name must be non-empty");
        ServiceName(name)
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ServiceName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ServiceName {
    fn from(s: &str) -> Self {
        ServiceName::new(s)
    }
}

impl From<String> for ServiceName {
    fn from(s: String) -> Self {
        ServiceName::new(s)
    }
}

/// A (node, service) pair — the unit messages are addressed to.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Endpoint {
    /// Which PC.
    pub node: NodeId,
    /// Which service on that PC.
    pub service: ServiceName,
}

impl Endpoint {
    /// Creates an endpoint.
    pub fn new(node: NodeId, service: impl Into<ServiceName>) -> Self {
        Endpoint { node, service: service.into() }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.node, self.service)
    }
}

/// One incarnation of a running service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub u64);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_display_is_compact() {
        let ep = Endpoint::new(NodeId(3), "oftt-engine");
        assert_eq!(ep.to_string(), "node3/oftt-engine");
    }

    #[test]
    fn service_name_equality_by_content() {
        assert_eq!(ServiceName::from("a"), ServiceName::new(String::from("a")));
        assert_ne!(ServiceName::from("a"), ServiceName::from("b"));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_service_name_rejected() {
        ServiceName::new("");
    }

    #[test]
    fn endpoints_are_usable_as_map_keys() {
        let mut m = std::collections::HashMap::new();
        m.insert(Endpoint::new(NodeId(1), "x"), 1);
        assert_eq!(m.get(&Endpoint::new(NodeId(1), "x")), Some(&1));
        assert_eq!(m.get(&Endpoint::new(NodeId(2), "x")), None);
    }
}
