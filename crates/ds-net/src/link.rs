//! Network links between nodes.
//!
//! A [`Link`] joins two nodes through one or more redundant *paths* —
//! modelling the paper's "paired up via one or dual Ethernet networks"
//! (Section 2.1). A message uses the lowest-numbered healthy path; if every
//! path is down or partitioned, the message is dropped. Per-path latency is
//! `base + jitter + size/bandwidth`, with an independent loss probability.

use ds_sim::prelude::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// Configuration for one path of a link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathConfig {
    /// Fixed propagation + protocol latency.
    pub base_latency: SimDuration,
    /// Uniform jitter applied on top of `base_latency` (±).
    pub jitter: SimDuration,
    /// Probability a given message is lost, in `[0, 1]`.
    pub loss_probability: f64,
    /// Usable bandwidth in bytes per second (drives size-dependent delay).
    pub bandwidth_bps: u64,
}

impl Default for PathConfig {
    /// A healthy switched 100 Mbit LAN segment, NT-era.
    fn default() -> Self {
        PathConfig {
            base_latency: SimDuration::from_micros(300),
            jitter: SimDuration::from_micros(100),
            loss_probability: 0.0,
            bandwidth_bps: 12_500_000, // 100 Mbit/s
        }
    }
}

impl PathConfig {
    /// A lossy path with the given drop probability.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0, 1]");
        self.loss_probability = p;
        self
    }

    /// Overrides the base latency.
    pub fn with_latency(mut self, base: SimDuration, jitter: SimDuration) -> Self {
        self.base_latency = base;
        self.jitter = jitter;
        self
    }

    /// Overrides the bandwidth.
    pub fn with_bandwidth_bps(mut self, bps: u64) -> Self {
        assert!(bps > 0, "bandwidth must be positive");
        self.bandwidth_bps = bps;
        self
    }
}

/// Dynamic state of one path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathState {
    /// Carrying traffic.
    Up,
    /// Failed (cable pull, NIC death) — injected by the fault layer.
    Down,
}

/// One redundant path: static config plus dynamic state.
#[derive(Debug, Clone)]
pub struct Path {
    /// Static parameters.
    pub config: PathConfig,
    /// Current state.
    pub state: PathState,
}

/// The outcome of offering a message to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteOutcome {
    /// Deliver after this delay (includes transmission time).
    Deliver(SimDuration),
    /// Dropped by random loss on the chosen path.
    Lost,
    /// No healthy path (all down or link partitioned).
    NoPath,
}

/// A (possibly multi-path) connection between two nodes.
#[derive(Debug, Clone)]
pub struct Link {
    paths: Vec<Path>,
    partitioned: bool,
}

impl Link {
    /// Creates a link with the given redundant paths.
    ///
    /// # Panics
    ///
    /// Panics if `paths` is empty.
    pub fn new(paths: Vec<PathConfig>) -> Self {
        assert!(!paths.is_empty(), "a link needs at least one path");
        Link {
            paths: paths.into_iter().map(|config| Path { config, state: PathState::Up }).collect(),
            partitioned: false,
        }
    }

    /// A single-path link with default parameters.
    pub fn single() -> Self {
        Link::new(vec![PathConfig::default()])
    }

    /// A dual-Ethernet link (two independent default paths), the paper's
    /// recommended configuration.
    pub fn dual() -> Self {
        Link::new(vec![PathConfig::default(), PathConfig::default()])
    }

    /// Number of paths.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// Sets one path up or down.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_path_state(&mut self, index: usize, state: PathState) {
        self.paths[index].state = state;
    }

    /// State of one path.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn path_state(&self, index: usize) -> PathState {
        self.paths[index].state
    }

    /// Retunes latency, jitter, and bandwidth on every path, keeping each
    /// path's loss probability and up/down state. This is the fault layer's
    /// handle for degraded-but-alive media (saturated switch, flow-controlled
    /// NIC): traffic still flows, just slowly.
    pub fn tune_paths(&mut self, base: SimDuration, jitter: SimDuration, bandwidth_bps: u64) {
        for path in &mut self.paths {
            path.config.base_latency = base;
            path.config.jitter = jitter;
            path.config.bandwidth_bps = bandwidth_bps.max(1);
        }
    }

    /// Marks the whole link partitioned (no path passes traffic) or heals it.
    pub fn set_partitioned(&mut self, partitioned: bool) {
        self.partitioned = partitioned;
    }

    /// `true` if the link is administratively partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned
    }

    /// `true` if at least one path is up and the link is not partitioned.
    pub fn is_usable(&self) -> bool {
        !self.partitioned && self.paths.iter().any(|p| p.state == PathState::Up)
    }

    /// Routes one message of `size_bytes`, drawing jitter and loss from
    /// `rng`. The first healthy path carries the message (fail-over between
    /// redundant Ethernets was below the application in the paper's setup,
    /// so it is instantaneous here).
    pub fn route(&self, size_bytes: u64, rng: &mut SimRng) -> RouteOutcome {
        if self.partitioned {
            return RouteOutcome::NoPath;
        }
        let Some(path) = self.paths.iter().find(|p| p.state == PathState::Up) else {
            return RouteOutcome::NoPath;
        };
        if rng.chance(path.config.loss_probability) {
            return RouteOutcome::Lost;
        }
        let jittered = rng.jittered(path.config.base_latency, path.config.jitter);
        let tx_secs = size_bytes as f64 / path.config.bandwidth_bps as f64;
        RouteOutcome::Deliver(jittered + SimDuration::from_secs_f64(tx_secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(1)
    }

    #[test]
    fn healthy_link_delivers_with_latency() {
        let link = Link::single();
        match link.route(128, &mut rng()) {
            RouteOutcome::Deliver(d) => {
                assert!(d >= SimDuration::from_micros(200), "got {d}");
                assert!(d <= SimDuration::from_micros(500), "got {d}");
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn size_dependent_transmission_delay() {
        let link =
            Link::new(vec![PathConfig::default()
                .with_latency(SimDuration::from_micros(100), SimDuration::ZERO)]);
        let small = match link.route(1_000, &mut rng()) {
            RouteOutcome::Deliver(d) => d,
            other => panic!("{other:?}"),
        };
        let big = match link.route(10_000_000, &mut rng()) {
            RouteOutcome::Deliver(d) => d,
            other => panic!("{other:?}"),
        };
        assert!(big > small * 10, "10 MB ({big}) should dwarf 1 KB ({small})");
    }

    #[test]
    fn dual_link_survives_single_path_failure() {
        let mut link = Link::dual();
        link.set_path_state(0, PathState::Down);
        assert!(link.is_usable());
        assert!(matches!(link.route(128, &mut rng()), RouteOutcome::Deliver(_)));
        link.set_path_state(1, PathState::Down);
        assert!(!link.is_usable());
        assert_eq!(link.route(128, &mut rng()), RouteOutcome::NoPath);
    }

    #[test]
    fn partition_blocks_all_paths() {
        let mut link = Link::dual();
        link.set_partitioned(true);
        assert_eq!(link.route(128, &mut rng()), RouteOutcome::NoPath);
        link.set_partitioned(false);
        assert!(matches!(link.route(128, &mut rng()), RouteOutcome::Deliver(_)));
    }

    #[test]
    fn loss_probability_drops_roughly_that_fraction() {
        let link = Link::new(vec![PathConfig::default().with_loss(0.3)]);
        let mut rng = rng();
        let n = 10_000;
        let lost =
            (0..n).filter(|_| matches!(link.route(128, &mut rng), RouteOutcome::Lost)).count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed loss rate {rate}");
    }

    #[test]
    #[should_panic(expected = "at least one path")]
    fn empty_link_rejected() {
        Link::new(vec![]);
    }
}
