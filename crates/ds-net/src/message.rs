//! Messages exchanged between processes.
//!
//! The body of a message is a type-erased payload; layers above (comsim,
//! msgq, oftt) define their own concrete message types and downcast on
//! receipt. Each envelope carries a nominal wire size so links can charge a
//! transmission delay — this is how checkpoint size shows up in switchover
//! latency (experiment E5).

use std::any::Any;
use std::fmt;

use ds_sim::clock::VectorClock;

use crate::endpoint::Endpoint;

/// Default nominal size charged for small control messages, in bytes.
pub const DEFAULT_MSG_BYTES: u64 = 128;

/// A type-erased message body.
pub struct MsgBody(Box<dyn Any + Send>);

impl MsgBody {
    /// Wraps a concrete value.
    pub fn new<T: Any + Send>(value: T) -> Self {
        MsgBody(Box::new(value))
    }

    /// Attempts to take the body as `T`, handing it back on mismatch.
    pub fn downcast<T: Any>(self) -> Result<T, MsgBody> {
        match self.0.downcast::<T>() {
            Ok(b) => Ok(*b),
            Err(b) => Err(MsgBody(b)),
        }
    }

    /// Borrows the body as `T` if it has that type.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.0.downcast_ref::<T>()
    }

    /// `true` if the body is a `T`.
    pub fn is<T: Any>(&self) -> bool {
        self.0.is::<T>()
    }
}

impl fmt::Debug for MsgBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MsgBody(..)")
    }
}

/// A routed message: source, destination, body, and nominal size.
#[derive(Debug)]
pub struct Envelope {
    /// Sender endpoint.
    pub from: Endpoint,
    /// Destination endpoint.
    pub to: Endpoint,
    /// Type-erased payload.
    pub body: MsgBody,
    /// Nominal wire size in bytes (drives transmission delay).
    pub size_bytes: u64,
    /// Sender's vector clock at send time, stamped by the router when
    /// causality recording is on (`None` otherwise).
    pub clock: Option<VectorClock>,
}

impl Envelope {
    /// Creates an envelope with the default control-message size.
    pub fn new<T: Any + Send>(from: Endpoint, to: Endpoint, body: T) -> Self {
        Envelope { from, to, body: MsgBody::new(body), size_bytes: DEFAULT_MSG_BYTES, clock: None }
    }

    /// Creates an envelope with an explicit nominal size.
    pub fn sized(from: Endpoint, to: Endpoint, body: MsgBody, size_bytes: u64) -> Self {
        Envelope { from, to, body, size_bytes, clock: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::NodeId;

    #[derive(Debug, PartialEq)]
    struct Ping(u32);

    #[test]
    fn downcast_round_trip() {
        let body = MsgBody::new(Ping(7));
        assert!(body.is::<Ping>());
        assert_eq!(body.downcast::<Ping>().unwrap(), Ping(7));
    }

    #[test]
    fn downcast_mismatch_returns_body() {
        let body = MsgBody::new(Ping(7));
        let body = body.downcast::<String>().unwrap_err();
        assert_eq!(body.downcast_ref::<Ping>(), Some(&Ping(7)));
    }

    #[test]
    fn envelope_defaults_and_sizing() {
        let a = Endpoint::new(NodeId(1), "a");
        let b = Endpoint::new(NodeId(2), "b");
        let e = Envelope::new(a.clone(), b.clone(), Ping(1));
        assert_eq!(e.size_bytes, DEFAULT_MSG_BYTES);
        let e = Envelope::sized(a, b, MsgBody::new(Ping(1)), 1 << 20);
        assert_eq!(e.size_bytes, 1 << 20);
    }
}
