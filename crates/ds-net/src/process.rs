//! The process model: runtime-neutral actors.
//!
//! Application and middleware components implement [`Process`]. Handlers
//! receive a `&mut dyn ProcessEnv` — in simulation this is backed by the
//! deterministic cluster ([`crate::cluster`]); the live runtime
//! ([`crate::live`]) backs it with real threads and channels, so the same
//! OFTT protocol code runs in both.

use ds_sim::prelude::{AccessKind, SimDuration, SimRng, SimTime, TraceCategory};

use crate::endpoint::{Endpoint, NodeId, ServiceName};
use crate::message::{Envelope, MsgBody};

/// Opaque handle for a pending process timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerHandle(pub(crate) u64);

/// The environment a process runs in: clock, messaging, timers, randomness,
/// tracing, and a small control plane (kill/restart services), which models
/// what the paper's OFTT engine does through the NT service control manager.
pub trait ProcessEnv {
    /// Current time (virtual in simulation, wall-derived in live mode).
    fn now(&self) -> SimTime;

    /// The endpoint this process is registered as.
    fn self_endpoint(&self) -> Endpoint;

    /// Sends a message; delivery is asynchronous and may fail silently if
    /// the destination is down or the network drops it (DCOM offered no
    /// stronger guarantee — reliability is layered on top, see `msgq`).
    fn send(&mut self, to: Endpoint, body: MsgBody, size_bytes: u64);

    /// Arms a one-shot timer; `token` is handed back to
    /// [`Process::on_timer`]. Timers die with the process incarnation.
    fn set_timer(&mut self, after: SimDuration, token: u64) -> TimerHandle;

    /// Cancels a pending timer; no-op if already fired.
    fn cancel_timer(&mut self, handle: TimerHandle);

    /// Deterministic random source (per-process stream).
    fn rng(&mut self) -> &mut SimRng;

    /// Records a trace entry.
    fn record(&mut self, category: TraceCategory, message: String);

    /// Kills a service instance (no notification to the victim — models a
    /// process crash / TerminateProcess).
    fn kill_service(&mut self, node: NodeId, service: &ServiceName);

    /// (Re)starts a service from its registered spec, if its node is up.
    fn restart_service(&mut self, node: NodeId, service: &ServiceName);

    /// Terminates the calling process after the current handler returns.
    fn exit(&mut self);

    /// Annotates a shared-state access for the happens-before auditor.
    /// No-op by default (and always in live mode); the simulated cluster
    /// forwards it to the kernel's causality tracker when recording is on.
    fn observe_access(&mut self, object: &str, kind: AccessKind, detail: &str) {
        let _ = (object, kind, detail);
    }

    /// Annotates a lock acquire (`acquired = true`) or release at a
    /// `parking_lot` site. No-op by default, as above.
    fn observe_lock(&mut self, lock: &str, acquired: bool) {
        let _ = (lock, acquired);
    }

    /// Annotates a middleware API call for the lifecycle linter. No-op by
    /// default, as above.
    fn observe_api(&mut self, call: &str, detail: &str) {
        let _ = (call, detail);
    }
}

/// Convenience extensions over [`ProcessEnv`].
pub trait ProcessEnvExt: ProcessEnv {
    /// Wraps `body` and sends it with the default control-message size.
    fn send_msg<T: std::any::Any + Send>(&mut self, to: Endpoint, body: T) {
        self.send(to, MsgBody::new(body), crate::message::DEFAULT_MSG_BYTES);
    }

    /// Wraps `body` and sends it with an explicit nominal size.
    fn send_sized<T: std::any::Any + Send>(&mut self, to: Endpoint, body: T, size_bytes: u64) {
        self.send(to, MsgBody::new(body), size_bytes);
    }
}

impl<E: ProcessEnv + ?Sized> ProcessEnvExt for E {}

/// A runtime-neutral actor. All handlers default to no-ops so simple
/// processes implement only what they need.
pub trait Process: Send {
    /// Called once when the process (incarnation) starts.
    fn on_start(&mut self, env: &mut dyn ProcessEnv) {
        let _ = env;
    }

    /// Called for each delivered message.
    fn on_message(&mut self, envelope: Envelope, env: &mut dyn ProcessEnv) {
        let _ = (envelope, env);
    }

    /// Called when a timer armed via [`ProcessEnv::set_timer`] fires.
    fn on_timer(&mut self, token: u64, env: &mut dyn ProcessEnv) {
        let _ = (token, env);
    }
}

/// Factory for service incarnations, used at start and on every restart.
pub type ProcessFactory = Box<dyn Fn() -> Box<dyn Process> + Send>;

#[cfg(test)]
mod tests {
    use super::*;

    // A Process impl using only defaults must be constructible — guards the
    // trait's object-safety and default methods.
    struct Nop;
    impl Process for Nop {}

    #[test]
    fn default_handlers_are_noops() {
        let mut p: Box<dyn Process> = Box::new(Nop);
        // We can't easily fabricate a ProcessEnv here; the cluster tests
        // exercise real dispatch. This test just pins object safety.
        let _ = &mut p;
    }

    #[test]
    fn timer_handles_are_comparable() {
        assert_eq!(TimerHandle(1), TimerHandle(1));
        assert_ne!(TimerHandle(1), TimerHandle(2));
    }
}
