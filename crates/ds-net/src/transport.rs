//! Runtime-neutral plumbing shared by the real-time backends.
//!
//! Both the threads-only live runtime ([`crate::live`]) and the TCP wire
//! runtime (`oftt-wire`) host the same [`Process`] actors against real time.
//! This module factors out what they share so the actor loop exists once:
//!
//! - [`NodeRouter`]: the routing surface a hosted actor needs from its
//!   runtime (clock, envelope routing, trace, service control).
//! - [`run_actor`]: the mailbox/timer loop that drives one actor on its own
//!   OS thread, implementing [`ProcessEnv`] over a [`NodeRouter`].
//! - Transport health/event types ([`PeerHealth`], [`TransportReport`],
//!   [`TransportEvent`]) reported by socket-backed routers and rendered by
//!   the OFTT System Monitor. They live here, not in `oftt-wire`, so
//!   middleware crates (msgq, oftt) can react to link events without
//!   depending on the socket backend.

use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError};
use ds_sim::prelude::{SimDuration, SimRng, SimTime, TraceCategory};
use serde::{Deserialize, Serialize};

use crate::endpoint::{Endpoint, NodeId, ServiceName};
use crate::message::{Envelope, MsgBody};
use crate::process::{Process, ProcessEnv, TimerHandle};

/// Control messages delivered to a hosted actor's mailbox.
pub enum Control {
    /// Deliver an application envelope.
    Deliver(Envelope),
    /// Terminate the actor without notification (models a process kill).
    Kill,
}

/// The services an actor-hosting runtime provides to [`run_actor`].
///
/// The live runtime routes envelopes through in-process channels; the wire
/// runtime routes node-local envelopes the same way and encodes the rest
/// onto TCP connections. The actor loop cannot tell the difference.
pub trait NodeRouter: Send + Sync {
    /// Wall-derived time since the runtime started.
    fn now(&self) -> SimTime;

    /// Routes an envelope towards its destination (may drop; delivery is
    /// asynchronous and unacknowledged, like the DCOM layer it models).
    fn route(&self, envelope: Envelope);

    /// Records a trace entry at the current time.
    fn record(&self, category: TraceCategory, message: String);

    /// Kills a service instance, if the runtime can reach it.
    fn kill_service(&self, target: &Endpoint);

    /// (Re)starts a service from its registered spec, if possible.
    fn restart_service(&self, target: &Endpoint);

    /// Called by the actor loop as its final action, so the runtime can
    /// retire the mailbox registration. `generation` is the registration
    /// identity handed to [`run_actor`]; the runtime must ignore the call
    /// if the endpoint has since been re-registered under a newer
    /// generation (a killed actor exiting late must not retire its
    /// successor's mailbox).
    fn actor_exited(&self, endpoint: &Endpoint, generation: u64);
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingTimer {
    deadline: Instant,
    handle: u64,
    token: u64,
}

impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by deadline.
        other.deadline.cmp(&self.deadline).then(other.handle.cmp(&self.handle))
    }
}

impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct RouterEnv {
    router: Arc<dyn NodeRouter>,
    endpoint: Endpoint,
    rng: SimRng,
    timers: BinaryHeap<PendingTimer>,
    cancelled: HashSet<u64>,
    next_timer: u64,
    exit: bool,
}

impl ProcessEnv for RouterEnv {
    fn now(&self) -> SimTime {
        self.router.now()
    }

    fn self_endpoint(&self) -> Endpoint {
        self.endpoint.clone()
    }

    fn send(&mut self, to: Endpoint, body: MsgBody, size_bytes: u64) {
        let envelope = Envelope::sized(self.endpoint.clone(), to, body, size_bytes);
        self.router.route(envelope);
    }

    fn set_timer(&mut self, after: SimDuration, token: u64) -> TimerHandle {
        self.next_timer += 1;
        let handle = self.next_timer;
        let deadline = Instant::now() + Duration::from_micros(after.as_micros());
        self.timers.push(PendingTimer { deadline, handle, token });
        TimerHandle(handle)
    }

    fn cancel_timer(&mut self, handle: TimerHandle) {
        self.cancelled.insert(handle.0);
    }

    fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    fn record(&mut self, category: TraceCategory, message: String) {
        self.router.record(category, message);
    }

    fn kill_service(&mut self, node: NodeId, service: &ServiceName) {
        let target = Endpoint::new(node, service.clone());
        if target == self.endpoint {
            self.exit = true;
        } else {
            self.router.kill_service(&target);
        }
    }

    fn restart_service(&mut self, node: NodeId, service: &ServiceName) {
        let target = Endpoint::new(node, service.clone());
        self.router.restart_service(&target);
    }

    fn exit(&mut self) {
        self.exit = true;
    }
}

/// Drives one actor against real time: fires due timers, then blocks on the
/// mailbox until the next deadline. Runs until the actor exits, is killed,
/// or its mailbox sender side is dropped. Shared verbatim by the live and
/// wire runtimes. `generation` identifies this registration and is echoed
/// in the final [`NodeRouter::actor_exited`] call.
pub fn run_actor(
    mut actor: Box<dyn Process>,
    endpoint: Endpoint,
    router: Arc<dyn NodeRouter>,
    seed: u64,
    generation: u64,
    rx: Receiver<Control>,
) {
    let mut env = RouterEnv {
        router: router.clone(),
        endpoint: endpoint.clone(),
        rng: SimRng::seed_from(seed),
        timers: BinaryHeap::new(),
        cancelled: HashSet::new(),
        next_timer: 0,
        exit: false,
    };
    actor.on_start(&mut env);
    while !env.exit {
        // Fire due timers first.
        let now = Instant::now();
        let mut fired = Vec::new();
        loop {
            match env.timers.peek() {
                Some(top) if top.deadline <= now => {}
                _ => break,
            }
            let Some(t) = env.timers.pop() else { break };
            if !env.cancelled.remove(&t.handle) {
                fired.push(t.token);
            }
        }
        for token in fired {
            actor.on_timer(token, &mut env);
            if env.exit {
                break;
            }
        }
        if env.exit {
            break;
        }
        let wait = env
            .timers
            .peek()
            .map(|t| t.deadline.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(wait) {
            Ok(Control::Deliver(envelope)) => actor.on_message(envelope, &mut env),
            Ok(Control::Kill) => break,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    router.actor_exited(&endpoint, generation);
}

/// Connection state of one peer link, as seen by its supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkState {
    /// No connection yet; a dial attempt is in flight or imminent.
    Connecting,
    /// A handshaken TCP connection is carrying frames.
    Connected,
    /// The last connection failed; waiting out the reconnect backoff.
    Backoff,
}

impl std::fmt::Display for LinkState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LinkState::Connecting => "connecting",
            LinkState::Connected => "connected",
            LinkState::Backoff => "backoff",
        };
        f.write_str(s)
    }
}

/// Health counters for one peer link, published by socket-backed routers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerHealth {
    /// The remote node.
    pub peer: NodeId,
    /// Current connection state.
    pub state: LinkState,
    /// Epoch of the current (or next) connection; bumps on every dial or
    /// accept so stale frames are identifiable.
    pub epoch: u32,
    /// Successful connections beyond the first.
    pub reconnects: u64,
    /// Payload bytes received from this peer.
    pub bytes_in: u64,
    /// Payload bytes written to this peer.
    pub bytes_out: u64,
    /// Frames currently queued for write.
    pub queued: u64,
    /// Heartbeat-class frames shed by backpressure or while disconnected.
    pub dropped_heartbeats: u64,
    /// Data-class frames shed by backpressure (never by teardown).
    pub dropped_frames: u64,
    /// Frames of any class lost because their connection died — queued
    /// or already pulled into a write batch, but never delivered.
    pub purged: u64,
}

/// Periodic transport health snapshot for a node, sent to the System
/// Monitor alongside the per-service `StatusReport`s it already renders.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportReport {
    /// The reporting node.
    pub node: NodeId,
    /// One row per configured peer link.
    pub peers: Vec<PeerHealth>,
    /// Reporting node's clock when the snapshot was taken.
    pub at: SimTime,
}

/// Link lifecycle events delivered to subscribed local services (the msgq
/// manager uses `PeerConnected { reconnect: true }` to retry store-and-
/// forward transfers immediately instead of waiting out its retry timer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransportEvent {
    /// A handshaken connection to `peer` became active.
    PeerConnected {
        /// The remote node.
        peer: NodeId,
        /// Epoch of the new connection.
        epoch: u32,
        /// `true` if this link had been connected before (i.e. a reconnect).
        reconnect: bool,
    },
    /// The connection to `peer` was torn down.
    PeerDown {
        /// The remote node.
        peer: NodeId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_state_renders_lowercase() {
        assert_eq!(LinkState::Connected.to_string(), "connected");
        assert_eq!(LinkState::Backoff.to_string(), "backoff");
    }

    #[test]
    fn transport_types_are_comparable_values() {
        // Marshal round-trips live in oftt-wire's codec tests (ds-net cannot
        // dev-depend on comsim without a cycle); here we pin value semantics.
        let health = PeerHealth {
            peer: NodeId(4),
            state: LinkState::Connected,
            epoch: 7,
            reconnects: 2,
            bytes_in: 1024,
            bytes_out: 2048,
            queued: 1,
            dropped_heartbeats: 5,
            dropped_frames: 0,
            purged: 0,
        };
        let report = TransportReport {
            node: NodeId(3),
            peers: vec![health.clone()],
            at: SimTime::from_millis(12),
        };
        assert_eq!(report, report.clone());
        assert_eq!(report.peers[0], health);

        let event = TransportEvent::PeerConnected { peer: NodeId(9), epoch: 3, reconnect: true };
        assert_ne!(event, TransportEvent::PeerDown { peer: NodeId(9) });
    }
}
