//! Nodes: the simulated PCs.

use ds_sim::prelude::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::endpoint::{NodeId, ServiceName};

/// Availability state of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeStatus {
    /// Running normally.
    Up,
    /// Hard down (paper failure class *a: node failure*); stays down until
    /// repaired by the fault layer.
    Crashed,
    /// OS crash + automatic restart (*b: NT crash / blue screen*); comes
    /// back up at the given time with auto-start services relaunched.
    Rebooting {
        /// When the reboot completes.
        until: SimTime,
    },
}

impl NodeStatus {
    /// `true` when the node can run processes and exchange messages.
    pub fn is_up(&self) -> bool {
        matches!(self, NodeStatus::Up)
    }
}

/// Per-node configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeConfig {
    /// Human-readable name ("Primary", "Backup", "Test and Interface").
    pub name: String,
    /// How long an OS reboot takes. NT 4.0 on period hardware: ~90 s; kept
    /// short by default so tests run fast, overridden by scenarios.
    pub reboot_duration: SimDuration,
    /// Bound on service start delay at boot, modelling the NT startup
    /// non-determinism of paper Section 3.2 (each auto-start service begins
    /// at a uniformly random offset within this bound).
    pub max_start_delay: SimDuration,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            name: String::from("pc"),
            reboot_duration: SimDuration::from_secs(30),
            max_start_delay: SimDuration::from_millis(500),
        }
    }
}

/// A simulated PC: status plus the services configured to start at boot.
#[derive(Debug, Clone)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// Static configuration.
    pub config: NodeConfig,
    /// Availability state.
    pub status: NodeStatus,
    /// Services relaunched automatically after boot (NT auto-start analog).
    pub autostart: Vec<ServiceName>,
    /// Count of boots (initial start included); used by tests and metrics.
    pub boot_count: u32,
}

impl Node {
    /// Creates an up node with no auto-start services.
    pub fn new(id: NodeId, config: NodeConfig) -> Self {
        Node { id, config, status: NodeStatus::Up, autostart: Vec::new(), boot_count: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_predicates() {
        assert!(NodeStatus::Up.is_up());
        assert!(!NodeStatus::Crashed.is_up());
        assert!(!NodeStatus::Rebooting { until: SimTime::from_secs(9) }.is_up());
    }

    #[test]
    fn new_node_is_up() {
        let n = Node::new(NodeId(1), NodeConfig::default());
        assert!(n.status.is_up());
        assert_eq!(n.boot_count, 1);
        assert!(n.autostart.is_empty());
    }
}
