//! # ds-net — the simulated cluster substrate
//!
//! Models the hardware/OS environment the OFTT paper assumes: Windows-NT-era
//! PCs (nodes) running named services (processes), joined by single or dual
//! Ethernet links, with injectable faults covering the paper's four failure
//! classes plus network path failures and partitions.
//!
//! Processes are runtime-neutral actors ([`process::Process`]) programmed
//! against [`process::ProcessEnv`]; the deterministic simulation backend
//! lives in [`cluster`], and a thread-based live backend in [`live`] runs the
//! same actor code in real time.
//!
//! ## Example: a two-node pair with a fault
//!
//! ```
//! use ds_net::prelude::*;
//! use ds_net::fault::{self, Fault};
//!
//! let mut cluster = ClusterSim::new(42);
//! let primary = cluster.add_node(NodeConfig { name: "Primary".into(), ..Default::default() });
//! let backup = cluster.add_node(NodeConfig { name: "Backup".into(), ..Default::default() });
//! cluster.connect(primary, backup, Link::dual());
//! fault::inject(&mut cluster, SimTime::from_secs(5), Fault::CrashNode(primary));
//! cluster.run_until(SimTime::from_secs(10));
//! assert!(!cluster.cluster().node(primary).status.is_up());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod endpoint;
pub mod error;
pub mod fault;
pub mod link;
pub mod live;
pub mod message;
pub mod node;
pub mod process;
pub mod transport;

/// Convenience re-exports of the items nearly every user needs.
pub mod prelude {
    pub use crate::cluster::{ClusterSim, NetCounters};
    pub use crate::endpoint::{Endpoint, NodeId, ProcessId, ServiceName};
    pub use crate::error::NetError;
    pub use crate::fault::{Fault, FaultPlan};
    pub use crate::link::{Link, PathConfig, PathState};
    pub use crate::message::{Envelope, MsgBody};
    pub use crate::node::{NodeConfig, NodeStatus};
    pub use crate::process::{Process, ProcessEnv, ProcessEnvExt, ProcessFactory, TimerHandle};
    pub use crate::transport::{
        LinkState, NodeRouter, PeerHealth, TransportEvent, TransportReport,
    };
    pub use ds_sim::prelude::*;
}

pub use cluster::ClusterSim;
pub use endpoint::{Endpoint, NodeId, ProcessId, ServiceName};
pub use message::{Envelope, MsgBody};
pub use process::{Process, ProcessEnv, ProcessEnvExt};
