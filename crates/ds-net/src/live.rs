//! Live (real-thread) runtime for the same actor code.
//!
//! Runs each service on its own OS thread with a crossbeam channel mailbox
//! and a local timer heap, implementing [`ProcessEnv`] against real time.
//! This backend exists so the runnable examples can drive the OFTT toolkit
//! interactively; it models no network imperfections (all services live in
//! one OS process), so quantitative experiments use the deterministic
//! [`crate::cluster`] backend instead.

use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use ds_sim::prelude::{SimDuration, SimRng, SimTime, Trace, TraceCategory};
use parking_lot::Mutex;

use crate::endpoint::{Endpoint, NodeId, ServiceName};
use crate::message::{Envelope, MsgBody};
use crate::process::{Process, ProcessEnv, ProcessFactory, TimerHandle};

enum Control {
    Deliver(Envelope),
    Kill,
}

#[derive(Clone)]
struct Registry {
    inner: Arc<Mutex<HashMap<Endpoint, Sender<Control>>>>,
    specs: Arc<Mutex<HashMap<Endpoint, ProcessFactory>>>,
    trace: Arc<Mutex<Trace>>,
    epoch: Instant,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    seed: u64,
    counter: Arc<Mutex<u64>>,
}

impl Registry {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    fn send(&self, envelope: Envelope) {
        let target = self.inner.lock().get(&envelope.to).cloned();
        if let Some(tx) = target {
            // A full/disconnected mailbox is equivalent to a drop.
            let _ = tx.send(Control::Deliver(envelope));
        }
    }

    fn kill(&self, endpoint: &Endpoint) {
        if let Some(tx) = self.inner.lock().remove(endpoint) {
            let _ = tx.send(Control::Kill);
        }
    }

    fn spawn(&self, endpoint: Endpoint) {
        let actor = {
            let specs = self.specs.lock();
            let Some(factory) = specs.get(&endpoint) else { return };
            factory()
        };
        let (tx, rx) = unbounded();
        self.inner.lock().insert(endpoint.clone(), tx);
        let registry = self.clone();
        let seed = {
            let mut c = self.counter.lock();
            *c += 1;
            self.seed.wrapping_add(*c)
        };
        let handle = std::thread::spawn(move || run_actor(actor, endpoint, registry, seed, rx));
        self.handles.lock().push(handle);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingTimer {
    deadline: Instant,
    handle: u64,
    token: u64,
}

impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by deadline.
        other.deadline.cmp(&self.deadline).then(other.handle.cmp(&self.handle))
    }
}

impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct LiveEnv {
    registry: Registry,
    endpoint: Endpoint,
    rng: SimRng,
    timers: BinaryHeap<PendingTimer>,
    cancelled: std::collections::HashSet<u64>,
    next_timer: u64,
    exit: bool,
}

impl ProcessEnv for LiveEnv {
    fn now(&self) -> SimTime {
        self.registry.now()
    }

    fn self_endpoint(&self) -> Endpoint {
        self.endpoint.clone()
    }

    fn send(&mut self, to: Endpoint, body: MsgBody, size_bytes: u64) {
        let envelope = Envelope::sized(self.endpoint.clone(), to, body, size_bytes);
        self.registry.send(envelope);
    }

    fn set_timer(&mut self, after: SimDuration, token: u64) -> TimerHandle {
        self.next_timer += 1;
        let handle = self.next_timer;
        let deadline = Instant::now() + Duration::from_micros(after.as_micros());
        self.timers.push(PendingTimer { deadline, handle, token });
        TimerHandle(handle)
    }

    fn cancel_timer(&mut self, handle: TimerHandle) {
        self.cancelled.insert(handle.0);
    }

    fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    fn record(&mut self, category: TraceCategory, message: String) {
        let now = self.registry.now();
        self.registry.trace.lock().record(now, category, message);
    }

    fn kill_service(&mut self, node: NodeId, service: &ServiceName) {
        let target = Endpoint::new(node, service.clone());
        if target == self.endpoint {
            self.exit = true;
        } else {
            self.registry.kill(&target);
        }
    }

    fn restart_service(&mut self, node: NodeId, service: &ServiceName) {
        let target = Endpoint::new(node, service.clone());
        if self.registry.inner.lock().contains_key(&target) {
            return;
        }
        self.registry.spawn(target);
    }

    fn exit(&mut self) {
        self.exit = true;
    }
}

fn run_actor(
    mut actor: Box<dyn Process>,
    endpoint: Endpoint,
    registry: Registry,
    seed: u64,
    rx: Receiver<Control>,
) {
    let mut env = LiveEnv {
        registry: registry.clone(),
        endpoint: endpoint.clone(),
        rng: SimRng::seed_from(seed),
        timers: BinaryHeap::new(),
        cancelled: std::collections::HashSet::new(),
        next_timer: 0,
        exit: false,
    };
    actor.on_start(&mut env);
    while !env.exit {
        // Fire due timers first.
        let now = Instant::now();
        let mut fired = Vec::new();
        loop {
            match env.timers.peek() {
                Some(top) if top.deadline <= now => {}
                _ => break,
            }
            let Some(t) = env.timers.pop() else { break };
            if !env.cancelled.remove(&t.handle) {
                fired.push(t.token);
            }
        }
        for token in fired {
            actor.on_timer(token, &mut env);
            if env.exit {
                break;
            }
        }
        if env.exit {
            break;
        }
        let wait = env
            .timers
            .peek()
            .map(|t| t.deadline.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(wait) {
            Ok(Control::Deliver(envelope)) => actor.on_message(envelope, &mut env),
            Ok(Control::Kill) => break,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    registry.inner.lock().remove(&endpoint);
}

/// A live, thread-backed runtime hosting the same [`Process`] actors as the
/// deterministic simulation.
///
/// # Examples
///
/// ```
/// use ds_net::live::LiveNet;
/// use ds_net::prelude::*;
///
/// struct Greeter;
/// impl Process for Greeter {}
///
/// let mut net = LiveNet::new(1);
/// net.register(Endpoint::new(NodeId(0), "greeter"), Box::new(|| Box::new(Greeter)));
/// net.start(&Endpoint::new(NodeId(0), "greeter"));
/// net.shutdown();
/// ```
pub struct LiveNet {
    registry: Registry,
}

impl LiveNet {
    /// Creates a live runtime; `seed` controls per-process RNG streams.
    pub fn new(seed: u64) -> Self {
        LiveNet {
            registry: Registry {
                inner: Arc::new(Mutex::new(HashMap::new())),
                specs: Arc::new(Mutex::new(HashMap::new())),
                trace: Arc::new(Mutex::new(Trace::new())),
                epoch: Instant::now(),
                handles: Arc::new(Mutex::new(Vec::new())),
                seed,
                counter: Arc::new(Mutex::new(0)),
            },
        }
    }

    /// Registers a service spec (not started yet).
    pub fn register(&mut self, endpoint: Endpoint, factory: ProcessFactory) {
        self.registry.specs.lock().insert(endpoint, factory);
    }

    /// Starts a registered service on its own thread.
    pub fn start(&mut self, endpoint: &Endpoint) {
        self.registry.spawn(endpoint.clone());
    }

    /// Kills a running service (no notification to the victim).
    pub fn kill(&mut self, endpoint: &Endpoint) {
        self.registry.kill(endpoint);
    }

    /// `true` if the service currently has a live mailbox.
    pub fn is_running(&self, endpoint: &Endpoint) -> bool {
        self.registry.inner.lock().contains_key(endpoint)
    }

    /// Injects a message from an external driver.
    pub fn post<T: std::any::Any + Send>(&self, to: Endpoint, body: T) {
        let from = Endpoint::new(to.node, "__external");
        self.registry.send(Envelope::new(from, to, body));
    }

    /// Copies out the trace recorded so far.
    pub fn trace_snapshot(&self) -> Trace {
        self.registry.trace.lock().clone()
    }

    /// Milliseconds since the runtime started (live wall time).
    pub fn now(&self) -> SimTime {
        self.registry.now()
    }

    /// Stops every service and joins all threads.
    pub fn shutdown(&mut self) {
        let endpoints: Vec<Endpoint> = self.registry.inner.lock().keys().cloned().collect();
        for ep in endpoints {
            self.registry.kill(&ep);
        }
        let handles: Vec<JoinHandle<()>> = self.registry.handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for LiveNet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ProcessEnvExt;
    use std::sync::atomic::{AtomicU32, Ordering};

    struct Echo;
    impl Process for Echo {
        fn on_message(&mut self, envelope: Envelope, env: &mut dyn ProcessEnv) {
            let from = envelope.from.clone();
            if let Ok(n) = envelope.body.downcast::<u32>() {
                env.send_msg(from, n + 1);
            }
        }
    }

    struct Counter {
        peer: Endpoint,
        seen: Arc<AtomicU32>,
    }
    impl Process for Counter {
        fn on_start(&mut self, env: &mut dyn ProcessEnv) {
            env.send_msg(self.peer.clone(), 1u32);
        }
        fn on_message(&mut self, envelope: Envelope, _env: &mut dyn ProcessEnv) {
            if let Ok(n) = envelope.body.downcast::<u32>() {
                self.seen.store(n, Ordering::SeqCst);
            }
        }
    }

    fn wait_for(cond: impl Fn() -> bool, timeout: Duration) -> bool {
        let start = Instant::now();
        while start.elapsed() < timeout {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        cond()
    }

    #[test]
    fn live_ping_pong() {
        let mut net = LiveNet::new(1);
        let a = Endpoint::new(NodeId(0), "counter");
        let b = Endpoint::new(NodeId(1), "echo");
        let seen = Arc::new(AtomicU32::new(0));
        let s = seen.clone();
        let peer = b.clone();
        net.register(b.clone(), Box::new(|| Box::new(Echo)));
        net.register(
            a.clone(),
            Box::new(move || Box::new(Counter { peer: peer.clone(), seen: s.clone() })),
        );
        net.start(&b);
        net.start(&a);
        assert!(wait_for(|| seen.load(Ordering::SeqCst) == 2, Duration::from_secs(2)));
        net.shutdown();
    }

    struct Tick {
        fires: Arc<AtomicU32>,
    }
    impl Process for Tick {
        fn on_start(&mut self, env: &mut dyn ProcessEnv) {
            env.set_timer(SimDuration::from_millis(10), 0);
        }
        fn on_timer(&mut self, _token: u64, env: &mut dyn ProcessEnv) {
            self.fires.fetch_add(1, Ordering::SeqCst);
            env.set_timer(SimDuration::from_millis(10), 0);
        }
    }

    #[test]
    fn live_timers_fire() {
        let mut net = LiveNet::new(2);
        let ep = Endpoint::new(NodeId(0), "tick");
        let fires = Arc::new(AtomicU32::new(0));
        let f = fires.clone();
        net.register(ep.clone(), Box::new(move || Box::new(Tick { fires: f.clone() })));
        net.start(&ep);
        assert!(wait_for(|| fires.load(Ordering::SeqCst) >= 3, Duration::from_secs(2)));
        net.kill(&ep);
        assert!(wait_for(|| !net.is_running(&ep), Duration::from_secs(2)));
    }

    #[test]
    fn kill_and_restart_via_registry() {
        let mut net = LiveNet::new(3);
        let ep = Endpoint::new(NodeId(0), "echo");
        net.register(ep.clone(), Box::new(|| Box::new(Echo)));
        net.start(&ep);
        assert!(wait_for(|| net.is_running(&ep), Duration::from_secs(2)));
        net.kill(&ep);
        assert!(wait_for(|| !net.is_running(&ep), Duration::from_secs(2)));
        net.start(&ep);
        assert!(wait_for(|| net.is_running(&ep), Duration::from_secs(2)));
        net.shutdown();
    }
}
