//! Live (real-thread) runtime for the same actor code.
//!
//! Runs each service on its own OS thread with a crossbeam channel mailbox
//! and a local timer heap, implementing [`ProcessEnv`] against real time via
//! the shared [`crate::transport::run_actor`] loop. This backend exists so
//! the runnable examples can drive the OFTT toolkit interactively; it models
//! no network imperfections (all services live in one OS process), so
//! quantitative experiments use the deterministic [`crate::cluster`] backend
//! and machine-to-machine runs use the `oftt-wire` TCP backend instead.
//!
//! [`ProcessEnv`]: crate::process::ProcessEnv

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use ds_sim::prelude::{SimTime, Trace, TraceCategory, WallClock};
use parking_lot::Mutex;

use crate::endpoint::Endpoint;
use crate::message::Envelope;
use crate::process::ProcessFactory;
use crate::transport::{run_actor, Control, NodeRouter};

/// A live mailbox: its sender plus the generation of the spawn that
/// registered it, so a killed actor exiting late cannot retire a
/// successor's registration.
type Mailbox = (Sender<Control>, u64);

#[derive(Clone)]
struct Registry {
    inner: Arc<Mutex<HashMap<Endpoint, Mailbox>>>,
    specs: Arc<Mutex<HashMap<Endpoint, ProcessFactory>>>,
    trace: Arc<Mutex<Trace>>,
    clock: WallClock,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    seed: u64,
    counter: Arc<Mutex<u64>>,
    dropped: Arc<AtomicU64>,
}

impl Registry {
    fn kill(&self, endpoint: &Endpoint) {
        // Bind first so the registry guard is released before the
        // control send — no lock held across channel traffic.
        let removed = self.inner.lock().remove(endpoint);
        if let Some((tx, _)) = removed {
            let _ = tx.send(Control::Kill);
        }
    }

    fn spawn(&self, endpoint: Endpoint) {
        let actor = {
            let specs = self.specs.lock();
            let Some(factory) = specs.get(&endpoint) else { return };
            factory()
        };
        let (tx, rx) = unbounded();
        let generation = {
            let mut c = self.counter.lock();
            *c += 1;
            *c
        };
        self.inner.lock().insert(endpoint.clone(), (tx, generation));
        let router: Arc<dyn NodeRouter> = Arc::new(self.clone());
        let seed = self.seed.wrapping_add(generation);
        let handle =
            std::thread::spawn(move || run_actor(actor, endpoint, router, seed, generation, rx));
        self.handles.lock().push(handle);
    }

    fn note_drop(&self, envelope: &Envelope) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
        let now = self.clock.now();
        self.trace.lock().record(
            now,
            TraceCategory::Net,
            format!("live drop {} -> {}: no live mailbox", envelope.from, envelope.to),
        );
    }
}

impl NodeRouter for Registry {
    fn now(&self) -> SimTime {
        self.clock.now()
    }

    fn route(&self, envelope: Envelope) {
        let target = self.inner.lock().get(&envelope.to).map(|(tx, _)| tx.clone());
        match target {
            Some(tx) => {
                // A disconnected mailbox is equivalent to a drop, but an
                // auditable one: trace it and count it, like the sim does.
                if let Err(err) = tx.send(Control::Deliver(envelope)) {
                    let crossbeam::channel::SendError(control) = err;
                    if let Control::Deliver(envelope) = control {
                        self.note_drop(&envelope);
                    }
                }
            }
            None => self.note_drop(&envelope),
        }
    }

    fn record(&self, category: TraceCategory, message: String) {
        let now = self.clock.now();
        self.trace.lock().record(now, category, message);
    }

    fn kill_service(&self, target: &Endpoint) {
        self.kill(target);
    }

    fn restart_service(&self, target: &Endpoint) {
        if self.inner.lock().contains_key(target) {
            return;
        }
        self.spawn(target.clone());
    }

    fn actor_exited(&self, endpoint: &Endpoint, generation: u64) {
        let mut inner = self.inner.lock();
        if inner.get(endpoint).is_some_and(|(_, g)| *g == generation) {
            inner.remove(endpoint);
        }
    }
}

/// A live, thread-backed runtime hosting the same [`Process`] actors as the
/// deterministic simulation.
///
/// [`Process`]: crate::process::Process
///
/// # Examples
///
/// ```
/// use ds_net::live::LiveNet;
/// use ds_net::prelude::*;
///
/// struct Greeter;
/// impl Process for Greeter {}
///
/// let mut net = LiveNet::new(1);
/// net.register(Endpoint::new(NodeId(0), "greeter"), Box::new(|| Box::new(Greeter)));
/// net.start(&Endpoint::new(NodeId(0), "greeter"));
/// net.shutdown();
/// ```
pub struct LiveNet {
    registry: Registry,
}

impl LiveNet {
    /// Creates a live runtime; `seed` controls per-process RNG streams.
    pub fn new(seed: u64) -> Self {
        LiveNet {
            registry: Registry {
                inner: Arc::new(Mutex::new(HashMap::new())),
                specs: Arc::new(Mutex::new(HashMap::new())),
                trace: Arc::new(Mutex::new(Trace::new())),
                clock: WallClock::new(),
                handles: Arc::new(Mutex::new(Vec::new())),
                seed,
                counter: Arc::new(Mutex::new(0)),
                dropped: Arc::new(AtomicU64::new(0)),
            },
        }
    }

    /// Registers a service spec (not started yet).
    pub fn register(&mut self, endpoint: Endpoint, factory: ProcessFactory) {
        self.registry.specs.lock().insert(endpoint, factory);
    }

    /// Starts a registered service on its own thread.
    pub fn start(&mut self, endpoint: &Endpoint) {
        self.registry.spawn(endpoint.clone());
    }

    /// Kills a running service (no notification to the victim).
    pub fn kill(&mut self, endpoint: &Endpoint) {
        self.registry.kill(endpoint);
    }

    /// `true` if the service currently has a live mailbox.
    pub fn is_running(&self, endpoint: &Endpoint) -> bool {
        self.registry.inner.lock().contains_key(endpoint)
    }

    /// Injects a message from an external driver.
    pub fn post<T: std::any::Any + Send>(&self, to: Endpoint, body: T) {
        let from = Endpoint::new(to.node, "__external");
        self.registry.route(Envelope::new(from, to, body));
    }

    /// Copies out the trace recorded so far.
    pub fn trace_snapshot(&self) -> Trace {
        self.registry.trace.lock().clone()
    }

    /// Envelopes dropped because no live mailbox could accept them.
    pub fn dropped_count(&self) -> u64 {
        self.registry.dropped.load(Ordering::Relaxed)
    }

    /// Milliseconds since the runtime started (live wall time).
    pub fn now(&self) -> SimTime {
        self.registry.now()
    }

    /// Stops every service and joins all threads.
    pub fn shutdown(&mut self) {
        let endpoints: Vec<Endpoint> = self.registry.inner.lock().keys().cloned().collect();
        for ep in endpoints {
            self.registry.kill(&ep);
        }
        let handles: Vec<JoinHandle<()>> = self.registry.handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for LiveNet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::NodeId;
    use crate::process::{Process, ProcessEnv, ProcessEnvExt};
    use ds_sim::prelude::SimDuration;
    use std::sync::atomic::AtomicU32;
    use std::time::{Duration, Instant};

    struct Echo;
    impl Process for Echo {
        fn on_message(&mut self, envelope: Envelope, env: &mut dyn ProcessEnv) {
            let from = envelope.from.clone();
            if let Ok(n) = envelope.body.downcast::<u32>() {
                env.send_msg(from, n + 1);
            }
        }
    }

    struct Counter {
        peer: Endpoint,
        seen: Arc<AtomicU32>,
    }
    impl Process for Counter {
        fn on_start(&mut self, env: &mut dyn ProcessEnv) {
            env.send_msg(self.peer.clone(), 1u32);
        }
        fn on_message(&mut self, envelope: Envelope, _env: &mut dyn ProcessEnv) {
            if let Ok(n) = envelope.body.downcast::<u32>() {
                self.seen.store(n, Ordering::SeqCst);
            }
        }
    }

    fn wait_for(cond: impl Fn() -> bool, timeout: Duration) -> bool {
        let start = Instant::now();
        while start.elapsed() < timeout {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        cond()
    }

    #[test]
    fn live_ping_pong() {
        let mut net = LiveNet::new(1);
        let a = Endpoint::new(NodeId(0), "counter");
        let b = Endpoint::new(NodeId(1), "echo");
        let seen = Arc::new(AtomicU32::new(0));
        let s = seen.clone();
        let peer = b.clone();
        net.register(b.clone(), Box::new(|| Box::new(Echo)));
        net.register(
            a.clone(),
            Box::new(move || Box::new(Counter { peer: peer.clone(), seen: s.clone() })),
        );
        net.start(&b);
        net.start(&a);
        assert!(wait_for(|| seen.load(Ordering::SeqCst) == 2, Duration::from_secs(2)));
        net.shutdown();
    }

    struct Tick {
        fires: Arc<AtomicU32>,
    }
    impl Process for Tick {
        fn on_start(&mut self, env: &mut dyn ProcessEnv) {
            env.set_timer(SimDuration::from_millis(10), 0);
        }
        fn on_timer(&mut self, _token: u64, env: &mut dyn ProcessEnv) {
            self.fires.fetch_add(1, Ordering::SeqCst);
            env.set_timer(SimDuration::from_millis(10), 0);
        }
    }

    #[test]
    fn live_timers_fire() {
        let mut net = LiveNet::new(2);
        let ep = Endpoint::new(NodeId(0), "tick");
        let fires = Arc::new(AtomicU32::new(0));
        let f = fires.clone();
        net.register(ep.clone(), Box::new(move || Box::new(Tick { fires: f.clone() })));
        net.start(&ep);
        assert!(wait_for(|| fires.load(Ordering::SeqCst) >= 3, Duration::from_secs(2)));
        net.kill(&ep);
        assert!(wait_for(|| !net.is_running(&ep), Duration::from_secs(2)));
    }

    #[test]
    fn kill_and_restart_via_registry() {
        let mut net = LiveNet::new(3);
        let ep = Endpoint::new(NodeId(0), "echo");
        net.register(ep.clone(), Box::new(|| Box::new(Echo)));
        net.start(&ep);
        assert!(wait_for(|| net.is_running(&ep), Duration::from_secs(2)));
        net.kill(&ep);
        assert!(wait_for(|| !net.is_running(&ep), Duration::from_secs(2)));
        net.start(&ep);
        assert!(wait_for(|| net.is_running(&ep), Duration::from_secs(2)));
        net.shutdown();
    }

    #[test]
    fn missing_mailbox_drop_is_traced_and_counted() {
        let net = LiveNet::new(4);
        assert_eq!(net.dropped_count(), 0);
        net.post(Endpoint::new(NodeId(0), "nobody"), 42u32);
        assert_eq!(net.dropped_count(), 1);
        let trace = net.trace_snapshot();
        let entry = trace.find("no live mailbox").expect("drop should be traced");
        assert_eq!(entry.category, TraceCategory::Net);
        assert!(entry.message.contains("node0/nobody"));
    }
}
